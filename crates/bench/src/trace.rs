//! Offline analyzer for `emod-telemetry` JSONL streams (the `emod-trace`
//! binary): per-trace span trees, an aggregate flame-style self-time table
//! per span path, and a diff mode that gates on p50 regressions between
//! two runs.
//!
//! Works on any file written via `EMOD_TELEMETRY` — `repro` runs, the
//! server's access/request stream, or several files merged. The span modes
//! (`tree`, `flame`, `diff`) use `"kind":"span"` records; the `quality`
//! mode distills `"kind":"event"` records (`quality.prediction`,
//! `quality.observation`, `serve.quality_warn`) into a model-quality
//! report. Everything else is skipped (and counted, so truncated or mixed
//! files are visible rather than silent).

use emod_serve::json::Json;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// One span close record from a telemetry JSONL stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRec {
    /// Close timestamp, microseconds since the process telemetry epoch.
    pub ts_us: f64,
    /// Open timestamp (absent in pre-trace streams).
    pub start_us: Option<f64>,
    /// Full hierarchical span path (`bench.table3/builder.build/…`).
    pub path: String,
    /// Wall time in microseconds.
    pub dur_us: f64,
    /// Trace id (absent for untraced spans and pre-trace streams).
    pub trace_id: Option<String>,
    /// This span's id.
    pub span_id: Option<String>,
    /// The parent span's id within the trace.
    pub parent_id: Option<String>,
}

/// One structured event record from a telemetry JSONL stream.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRec {
    /// Timestamp, microseconds since the process telemetry epoch.
    pub ts_us: f64,
    /// Emitting subsystem (`serve`, `quality`, …).
    pub subsystem: String,
    /// Event name within the subsystem.
    pub name: String,
    /// The structured payload, verbatim.
    pub fields: Json,
}

impl EventRec {
    /// A numeric payload field, if present.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.fields.get(key).and_then(Json::as_f64)
    }

    /// A string payload field, if present.
    pub fn text(&self, key: &str) -> Option<&str> {
        self.fields.get(key).and_then(Json::as_str)
    }
}

/// Parse outcome: spans and events plus counts of what was skipped.
#[derive(Debug, Default)]
pub struct Parsed {
    /// All span records, in file order (close order).
    pub spans: Vec<SpanRec>,
    /// All structured event records, in file order.
    pub events: Vec<EventRec>,
    /// Non-span telemetry records (events, tables) — expected, only some
    /// modes analyze them.
    pub other_records: usize,
    /// Lines that did not parse as JSON objects.
    pub bad_lines: usize,
}

/// Parses telemetry JSONL text, keeping the span and event records.
pub fn parse_jsonl(text: &str) -> Parsed {
    let mut out = Parsed::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(v) = Json::parse(line) else {
            out.bad_lines += 1;
            continue;
        };
        if v.get("kind").and_then(Json::as_str) != Some("span") {
            out.other_records += 1;
            if v.get("kind").and_then(Json::as_str) == Some("event") {
                if let (Some(subsystem), Some(name)) = (
                    v.get("subsystem").and_then(Json::as_str),
                    v.get("name").and_then(Json::as_str),
                ) {
                    out.events.push(EventRec {
                        ts_us: v.get("ts_us").and_then(Json::as_f64).unwrap_or(0.0),
                        subsystem: subsystem.to_string(),
                        name: name.to_string(),
                        fields: v.get("fields").cloned().unwrap_or(Json::Null),
                    });
                }
            }
            continue;
        }
        let (Some(path), Some(dur_us)) = (
            v.get("name").and_then(Json::as_str),
            v.get("dur_us").and_then(Json::as_f64),
        ) else {
            out.bad_lines += 1;
            continue;
        };
        let s = |key: &str| v.get(key).and_then(Json::as_str).map(String::from);
        out.spans.push(SpanRec {
            ts_us: v.get("ts_us").and_then(Json::as_f64).unwrap_or(0.0),
            start_us: v.get("start_us").and_then(Json::as_f64),
            path: path.to_string(),
            dur_us,
            trace_id: s("trace_id"),
            span_id: s("span_id"),
            parent_id: s("parent_id"),
        });
    }
    out
}

/// Aggregate statistics for one span path across a run.
#[derive(Debug, Clone)]
pub struct PathStats {
    /// Number of span instances at this path.
    pub count: usize,
    /// Summed wall time (µs).
    pub total_us: f64,
    /// Summed self time: wall time minus time spent in direct child
    /// paths (µs, clamped at 0 — cross-thread children can outlive their
    /// parent span).
    pub self_us: f64,
    /// All instance durations, sorted ascending (µs).
    durs: Vec<f64>,
}

impl PathStats {
    /// Exact nearest-rank percentile of instance durations, `q` in [0, 1].
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.durs.len();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).max(1);
        self.durs[rank - 1]
    }
}

/// Aggregates spans by path. Self time is derived from the path hierarchy
/// (`a/b` is a direct child of `a`), so it works even for streams without
/// trace ids.
pub fn aggregate(spans: &[SpanRec]) -> BTreeMap<String, PathStats> {
    let mut stats: BTreeMap<String, PathStats> = BTreeMap::new();
    for s in spans {
        let e = stats.entry(s.path.clone()).or_insert_with(|| PathStats {
            count: 0,
            total_us: 0.0,
            self_us: 0.0,
            durs: Vec::new(),
        });
        e.count += 1;
        e.total_us += s.dur_us;
        e.durs.push(s.dur_us);
    }
    // Self time: total minus the totals of *direct* children.
    let child_totals: HashMap<String, f64> = stats
        .iter()
        .filter_map(|(path, st)| {
            path.rfind('/')
                .map(|cut| (path[..cut].to_string(), st.total_us))
        })
        .fold(HashMap::new(), |mut acc, (parent, total)| {
            *acc.entry(parent).or_insert(0.0) += total;
            acc
        });
    for (path, st) in stats.iter_mut() {
        let children = child_totals.get(path).copied().unwrap_or(0.0);
        st.self_us = (st.total_us - children).max(0.0);
        st.durs.sort_by(f64::total_cmp);
    }
    stats
}

fn fmt_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.3}s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.3}ms", us / 1e3)
    } else {
        format!("{:.1}us", us)
    }
}

/// Renders the flame-style table: one row per span path, sorted by summed
/// self time descending.
pub fn render_flame(stats: &BTreeMap<String, PathStats>) -> String {
    let mut rows: Vec<(&String, &PathStats)> = stats.iter().collect();
    rows.sort_by(|a, b| b.1.self_us.total_cmp(&a.1.self_us));
    let width = rows
        .iter()
        .map(|(p, _)| p.len())
        .max()
        .unwrap_or(4)
        .max("path".len());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<width$}  {:>7}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
        "path",
        "count",
        "self",
        "total",
        "p50",
        "p95",
        "max",
        width = width
    );
    for (path, st) in rows {
        let _ = writeln!(
            out,
            "{:<width$}  {:>7}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
            path,
            st.count,
            fmt_us(st.self_us),
            fmt_us(st.total_us),
            fmt_us(st.quantile(0.50)),
            fmt_us(st.quantile(0.95)),
            fmt_us(st.quantile(1.0)),
            width = width
        );
    }
    out
}

/// One reconstructed trace: its id and the indices of its spans.
struct Trace<'a> {
    id: &'a str,
    spans: Vec<usize>,
}

/// Renders per-trace span trees (up to `limit` traces, in first-seen
/// order): each trace is one unit of work; indentation follows
/// `parent_id` links, and every row shows total and self time.
pub fn render_trees(spans: &[SpanRec], limit: usize) -> String {
    let mut traces: Vec<Trace> = Vec::new();
    let mut by_id: HashMap<&str, usize> = HashMap::new();
    let mut untraced = 0usize;
    for (i, s) in spans.iter().enumerate() {
        let Some(tid) = s.trace_id.as_deref() else {
            untraced += 1;
            continue;
        };
        let ti = *by_id.entry(tid).or_insert_with(|| {
            traces.push(Trace {
                id: tid,
                spans: Vec::new(),
            });
            traces.len() - 1
        });
        traces[ti].spans.push(i);
    }

    let mut out = String::new();
    if traces.is_empty() {
        let _ = writeln!(
            out,
            "no traced spans found ({} untraced span records) — \
             was this file written before trace contexts existed?",
            untraced
        );
        return out;
    }
    let shown = traces.len().min(limit);
    let _ = writeln!(
        out,
        "{} traces ({} shown), {} untraced spans",
        traces.len(),
        shown,
        untraced
    );
    for trace in traces.iter().take(limit) {
        // Parent links. A span whose parent never closed (or is missing
        // from the file) becomes a root.
        let ids: HashMap<&str, usize> = trace
            .spans
            .iter()
            .filter_map(|&i| spans[i].span_id.as_deref().map(|sid| (sid, i)))
            .collect();
        let mut children: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut roots: Vec<usize> = Vec::new();
        for &i in &trace.spans {
            let parent = spans[i]
                .parent_id
                .as_deref()
                .and_then(|p| ids.get(p).copied());
            match parent {
                Some(p) => children.entry(p).or_default().push(i),
                None => roots.push(i),
            }
        }
        let start = |i: usize| {
            spans[i]
                .start_us
                .unwrap_or(spans[i].ts_us - spans[i].dur_us)
        };
        roots.sort_by(|&a, &b| start(a).total_cmp(&start(b)));
        for v in children.values_mut() {
            v.sort_by(|&a, &b| start(a).total_cmp(&start(b)));
        }
        let total: f64 = roots.iter().map(|&i| spans[i].dur_us).sum();
        let _ = writeln!(
            out,
            "\ntrace {} ({} spans, {})",
            trace.id,
            trace.spans.len(),
            fmt_us(total)
        );
        // Depth-first with explicit stack: (index, depth).
        let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 0)).collect();
        while let Some((i, depth)) = stack.pop() {
            let kids = children.get(&i).cloned().unwrap_or_default();
            let child_time: f64 = kids.iter().map(|&k| spans[k].dur_us).sum();
            let self_us = (spans[i].dur_us - child_time).max(0.0);
            // Show the leaf name; the full path is implied by indentation.
            let name = spans[i]
                .path
                .rsplit('/')
                .next()
                .unwrap_or(spans[i].path.as_str());
            let _ = writeln!(
                out,
                "  {:indent$}{:<name_w$}  total {:>10}  self {:>10}",
                "",
                name,
                fmt_us(spans[i].dur_us),
                fmt_us(self_us),
                indent = depth * 2,
                name_w = 40usize.saturating_sub(depth * 2)
            );
            for &k in kids.iter().rev() {
                stack.push((k, depth + 1));
            }
        }
    }
    out
}

/// One span path's p50 comparison between two runs.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// The span path.
    pub path: String,
    /// p50 duration in run A (µs).
    pub p50_a: f64,
    /// p50 duration in run B (µs).
    pub p50_b: f64,
    /// Relative change in percent (`(b-a)/a * 100`).
    pub delta_pct: f64,
    /// Whether the change exceeds the regression threshold.
    pub regressed: bool,
}

/// Compares two runs path-by-path: a path **regresses** when its p50 in
/// run B exceeds run A's by more than `threshold_pct` percent. Paths
/// present in only one run are reported but never gate. Returns the rows
/// (worst regression first) — callers gate on `any(regressed)`.
pub fn diff(
    a: &BTreeMap<String, PathStats>,
    b: &BTreeMap<String, PathStats>,
    threshold_pct: f64,
) -> Vec<DiffRow> {
    let mut rows = Vec::new();
    for (path, sa) in a {
        let Some(sb) = b.get(path) else { continue };
        let (p50_a, p50_b) = (sa.quantile(0.5), sb.quantile(0.5));
        let delta_pct = if p50_a > 0.0 {
            (p50_b - p50_a) / p50_a * 100.0
        } else if p50_b > 0.0 {
            f64::INFINITY
        } else {
            0.0
        };
        rows.push(DiffRow {
            path: path.clone(),
            p50_a,
            p50_b,
            delta_pct,
            regressed: delta_pct > threshold_pct,
        });
    }
    rows.sort_by(|x, y| y.delta_pct.total_cmp(&x.delta_pct));
    rows
}

/// Renders the diff table plus a verdict line; `only_in` names paths that
/// exist in exactly one of the runs (informational).
pub fn render_diff(rows: &[DiffRow], threshold_pct: f64, only_a: usize, only_b: usize) -> String {
    let width = rows
        .iter()
        .map(|r| r.path.len())
        .max()
        .unwrap_or(4)
        .max("path".len());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<width$}  {:>10}  {:>10}  {:>9}  verdict",
        "path",
        "p50(a)",
        "p50(b)",
        "delta",
        width = width
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<width$}  {:>10}  {:>10}  {:>+8.1}%  {}",
            r.path,
            fmt_us(r.p50_a),
            fmt_us(r.p50_b),
            r.delta_pct,
            if r.regressed { "REGRESSED" } else { "ok" },
            width = width
        );
    }
    let regressions = rows.iter().filter(|r| r.regressed).count();
    let _ = writeln!(
        out,
        "\n{} shared paths, {} only in a, {} only in b; {} regression(s) past {:.0}%",
        rows.len(),
        only_a,
        only_b,
        regressions,
        threshold_pct
    );
    out
}

/// Per-model tallies inside a [`QualityReport`].
#[derive(Debug, Default, Clone)]
pub struct ModelQuality {
    /// `quality.prediction` events for this model id.
    pub predictions: usize,
    /// `quality.observation` events for this model id.
    pub observations: usize,
    /// `serve.quality_warn` events for this model id.
    pub warnings: usize,
}

/// A model-quality report distilled from telemetry events: prediction
/// volume, extrapolation/disagreement distributions, threshold breaches,
/// and shadow-accuracy drift.
#[derive(Debug, Default)]
pub struct QualityReport {
    /// Total `quality.prediction` events.
    pub predictions: usize,
    /// Total `quality.observation` events.
    pub observations: usize,
    /// Extrapolation warnings (`serve.quality_warn`, kind=extrapolation).
    pub warn_extrapolation: usize,
    /// Disagreement warnings (`serve.quality_warn`, kind=disagreement).
    pub warn_disagreement: usize,
    /// Extrapolation scores, sorted ascending.
    pub extrapolation: Vec<f64>,
    /// Disagreement spreads, sorted ascending.
    pub disagreement: Vec<f64>,
    /// Per-observation absolute percentage errors, sorted ascending.
    pub ape: Vec<f64>,
    /// The last reported rolling shadow MAPE, if any observation carried
    /// one.
    pub last_shadow_mape: Option<f64>,
    /// Per-model tallies, keyed by model id.
    pub per_model: BTreeMap<String, ModelQuality>,
}

/// Exact nearest-rank quantile of an ascending-sorted slice.
fn sorted_quantile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    Some(sorted[rank - 1])
}

/// Distills the quality-relevant events out of a telemetry stream.
pub fn summarize_quality(events: &[EventRec]) -> QualityReport {
    let mut r = QualityReport::default();
    for e in events {
        match (e.subsystem.as_str(), e.name.as_str()) {
            ("quality", "prediction") => {
                r.predictions += 1;
                if let Some(x) = e.num("extrapolation") {
                    r.extrapolation.push(x);
                }
                if let Some(d) = e.num("disagreement") {
                    r.disagreement.push(d);
                }
                if let Some(model) = e.text("model") {
                    r.per_model
                        .entry(model.to_string())
                        .or_default()
                        .predictions += 1;
                }
            }
            ("quality", "observation") => {
                r.observations += 1;
                if let Some(a) = e.num("ape") {
                    r.ape.push(a);
                }
                if let Some(m) = e.num("shadow_mape") {
                    r.last_shadow_mape = Some(m);
                }
                if let Some(model) = e.text("model") {
                    r.per_model
                        .entry(model.to_string())
                        .or_default()
                        .observations += 1;
                }
            }
            ("serve", "quality_warn") => {
                match e.text("kind") {
                    Some("extrapolation") => r.warn_extrapolation += 1,
                    Some("disagreement") => r.warn_disagreement += 1,
                    _ => {}
                }
                if let Some(model) = e.text("model") {
                    r.per_model.entry(model.to_string()).or_default().warnings += 1;
                }
            }
            _ => {}
        }
    }
    r.extrapolation.sort_by(f64::total_cmp);
    r.disagreement.sort_by(f64::total_cmp);
    r.ape.sort_by(f64::total_cmp);
    r
}

/// Formats a sorted distribution as `p50 … p95 … max …`, or a placeholder
/// when no samples were recorded.
fn dist_line(sorted: &[f64]) -> String {
    match (
        sorted_quantile(sorted, 0.50),
        sorted_quantile(sorted, 0.95),
        sorted.last(),
    ) {
        (Some(p50), Some(p95), Some(max)) => {
            format!("p50 {:.3}  p95 {:.3}  max {:.3}", p50, p95, max)
        }
        _ => "no samples".to_string(),
    }
}

/// Renders the quality report as the `emod-trace quality` text output.
pub fn render_quality(r: &QualityReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "model-quality summary");
    let _ = writeln!(
        out,
        "  predictions:   {} ({} scored for extrapolation, {} with disagreement)",
        r.predictions,
        r.extrapolation.len(),
        r.disagreement.len()
    );
    let _ = writeln!(
        out,
        "  extrapolation: {}  [{} warning(s)]",
        dist_line(&r.extrapolation),
        r.warn_extrapolation
    );
    let _ = writeln!(
        out,
        "  disagreement:  {}  [{} warning(s)]",
        dist_line(&r.disagreement),
        r.warn_disagreement
    );
    let mape = r
        .last_shadow_mape
        .map(|m| format!("rolling MAPE {:.2}%", m))
        .unwrap_or_else(|| "no rolling MAPE yet".to_string());
    let _ = writeln!(
        out,
        "  observations:  {} ({}; per-obs APE {})",
        r.observations,
        mape,
        dist_line(&r.ape)
    );
    if !r.per_model.is_empty() {
        let width = r
            .per_model
            .keys()
            .map(String::len)
            .max()
            .unwrap_or(5)
            .max("model".len());
        let _ = writeln!(
            out,
            "\n  {:<width$}  {:>6}  {:>4}  {:>5}",
            "model",
            "preds",
            "obs",
            "warns",
            width = width
        );
        for (model, mq) in &r.per_model {
            let _ = writeln!(
                out,
                "  {:<width$}  {:>6}  {:>4}  {:>5}",
                model,
                mq.predictions,
                mq.observations,
                mq.warnings,
                width = width
            );
        }
    }
    out
}

/// Per-workload measurement tallies inside a [`TierReport`]:
/// `[surrogate, sampled, detailed]`.
pub type TierCounts = [usize; 3];

/// A tiered-measurement report distilled from telemetry events: how often
/// each tier answered, the error bounds tier-0 quoted, and the SMARTS
/// confidence intervals of the runs that did simulate.
#[derive(Debug, Default)]
pub struct TierReport {
    /// `core.tier0_hit` events — measurements answered by the surrogate.
    pub tier0_hits: usize,
    /// SMARTS-sampled simulations (`core.measurement` with tier `smarts`,
    /// or with no tier tag — pre-tiering streams).
    pub sampled: usize,
    /// Full detailed simulations (`core.measurement` with tier `detailed`)
    /// — tier-2 promotions.
    pub detailed: usize,
    /// Error bounds quoted on tier-0 hits, sorted ascending.
    pub bounds: Vec<f64>,
    /// SMARTS `rel_error` of sampled runs, sorted ascending.
    pub rel_error: Vec<f64>,
    /// Per-workload `[surrogate, sampled, detailed]` tallies.
    pub per_workload: BTreeMap<String, TierCounts>,
}

impl TierReport {
    /// Total measurements seen across all tiers.
    pub fn total(&self) -> usize {
        self.tier0_hits + self.sampled + self.detailed
    }
}

/// Distills per-tier hit/promotion events out of a telemetry stream.
pub fn summarize_tiers(events: &[EventRec]) -> TierReport {
    let mut r = TierReport::default();
    for e in events {
        match (e.subsystem.as_str(), e.name.as_str()) {
            ("core", "tier0_hit") => {
                r.tier0_hits += 1;
                if let Some(b) = e.num("bound") {
                    r.bounds.push(b);
                }
                if let Some(w) = e.text("workload") {
                    r.per_workload.entry(w.to_string()).or_default()[0] += 1;
                }
            }
            ("core", "measurement") => {
                let tier = match e.text("tier") {
                    Some("detailed") => 2,
                    _ => 1, // untagged streams predate tiering: sampled
                };
                if tier == 2 {
                    r.detailed += 1;
                } else {
                    r.sampled += 1;
                    if let Some(err) = e.num("rel_error") {
                        r.rel_error.push(err);
                    }
                }
                if let Some(w) = e.text("workload") {
                    r.per_workload.entry(w.to_string()).or_default()[tier] += 1;
                }
            }
            _ => {}
        }
    }
    r.bounds.sort_by(f64::total_cmp);
    r.rel_error.sort_by(f64::total_cmp);
    r
}

/// Renders the tier report as the `emod-trace tiers` text output.
pub fn render_tiers(r: &TierReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "tiered measurement summary");
    let total = r.total();
    let pct = |n: usize| {
        if total == 0 {
            0.0
        } else {
            100.0 * n as f64 / total as f64
        }
    };
    let _ = writeln!(
        out,
        "  tier 0 surrogate: {:>6} ({:.1}%)  bound {}",
        r.tier0_hits,
        pct(r.tier0_hits),
        dist_line(&r.bounds)
    );
    let _ = writeln!(
        out,
        "  tier 1 smarts:    {:>6} ({:.1}%)  rel_error {}",
        r.sampled,
        pct(r.sampled),
        dist_line(&r.rel_error)
    );
    let _ = writeln!(
        out,
        "  tier 2 detailed:  {:>6} ({:.1}%)  [promotions past the bound]",
        r.detailed,
        pct(r.detailed)
    );
    if !r.per_workload.is_empty() {
        let width = r
            .per_workload
            .keys()
            .map(String::len)
            .max()
            .unwrap_or(8)
            .max("workload".len());
        let _ = writeln!(
            out,
            "\n  {:<width$}  {:>6}  {:>6}  {:>8}",
            "workload",
            "tier0",
            "smarts",
            "detailed",
            width = width
        );
        for (w, counts) in &r.per_workload {
            let _ = writeln!(
                out,
                "  {:<width$}  {:>6}  {:>6}  {:>8}",
                w,
                counts[0],
                counts[1],
                counts[2],
                width = width
            );
        }
    }
    out
}

/// One lifecycle event on the timeline of a [`RolloutReport`].
#[derive(Debug, Clone)]
pub struct RolloutEventRow {
    /// Timestamp, microseconds since the telemetry epoch.
    pub ts_us: f64,
    /// Event name (`candidate_published`, `canary_started`, `promoted`,
    /// `rolled_back`).
    pub name: String,
    /// Base artifact id the rollout belongs to.
    pub base: String,
    /// Version the event concerns (0 when unknown).
    pub version: u64,
    /// Free-form detail: rollback reason, canary fraction, test MAPE.
    pub detail: String,
}

/// A closed-loop rollout report distilled from telemetry events: refresh
/// enqueues, candidates published, canaries started, and how each rollout
/// ended (promoted or rolled back), with the full lifecycle timeline.
#[derive(Debug, Default)]
pub struct RolloutReport {
    /// `rollout.refresh_enqueued` events — design points fed to the loop.
    pub enqueued: usize,
    /// `rollout.candidate_published` events.
    pub candidates: usize,
    /// `rollout.canary_started` events.
    pub canaries: usize,
    /// `rollout.promoted` events.
    pub promotions: usize,
    /// `rollout.rolled_back` events.
    pub rollbacks: usize,
    /// Lifecycle events in stream order (enqueues are counted, not listed).
    pub timeline: Vec<RolloutEventRow>,
}

/// Distills the rollout lifecycle out of a telemetry stream.
pub fn summarize_rollout(events: &[EventRec]) -> RolloutReport {
    let mut r = RolloutReport::default();
    for e in events.iter().filter(|e| e.subsystem == "rollout") {
        match e.name.as_str() {
            "refresh_enqueued" => {
                r.enqueued += 1;
                continue;
            }
            "candidate_published" => r.candidates += 1,
            "canary_started" => r.canaries += 1,
            "promoted" => r.promotions += 1,
            "rolled_back" => r.rollbacks += 1,
            _ => continue,
        }
        let reason = e.text("reason").unwrap_or("");
        let detail = match (e.text("stage"), e.name.as_str()) {
            (Some(stage), _) => format!("{}: {}", stage, reason),
            (None, "canary_started") => e
                .num("fraction")
                .map(|f| format!("fraction={}", f))
                .unwrap_or_else(|| reason.to_string()),
            (None, "candidate_published") => e
                .num("test_mape")
                .map(|m| format!("test mape {:.2}%", m))
                .unwrap_or_else(|| reason.to_string()),
            _ => reason.to_string(),
        };
        r.timeline.push(RolloutEventRow {
            ts_us: e.ts_us,
            name: e.name.clone(),
            base: e.text("base").unwrap_or("?").to_string(),
            version: e.num("version").unwrap_or(0.0) as u64,
            detail,
        });
    }
    r
}

/// Renders the rollout report as the `emod-trace rollout` text output.
pub fn render_rollout(r: &RolloutReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "rollout summary");
    let _ = writeln!(
        out,
        "  enqueued: {}  candidates: {}  canaries: {}  promoted: {}  rolled back: {}",
        r.enqueued, r.candidates, r.canaries, r.promotions, r.rollbacks
    );
    if r.timeline.is_empty() {
        let _ = writeln!(out, "  no rollout lifecycle events in this stream");
        return out;
    }
    let t0 = r.timeline.first().map(|e| e.ts_us).unwrap_or(0.0);
    let _ = writeln!(
        out,
        "\n  {:>9}  {:<20}  {:<28}  detail",
        "t", "event", "artifact"
    );
    for row in &r.timeline {
        let _ = writeln!(
            out,
            "  {:>8.3}s  {:<20}  {:<28}  {}",
            (row.ts_us - t0) / 1e6,
            row.name,
            format!("{}@v{}", row.base, row.version),
            row.detail
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic two-trace stream: trace 1 is `req → work → ga` nested,
    /// trace 2 a lone request; plus one untraced span and an event line.
    fn fixture() -> String {
        [
            r#"{"ts_us":5,"kind":"event","subsystem":"t","name":"noise","fields":{}}"#,
            r#"{"ts_us":90,"kind":"span","name":"req/work/ga","start_us":20,"dur_us":70,"trace_id":"aaaa000000000001","span_id":"bbbb000000000003","parent_id":"bbbb000000000002"}"#,
            r#"{"ts_us":95,"kind":"span","name":"req/work","start_us":10,"dur_us":85,"trace_id":"aaaa000000000001","span_id":"bbbb000000000002","parent_id":"bbbb000000000001"}"#,
            r#"{"ts_us":100,"kind":"span","name":"req","start_us":0,"dur_us":100,"trace_id":"aaaa000000000001","span_id":"bbbb000000000001"}"#,
            r#"{"ts_us":150,"kind":"span","name":"req","start_us":110,"dur_us":40,"trace_id":"aaaa000000000002","span_id":"bbbb000000000004"}"#,
            r#"{"ts_us":160,"kind":"span","name":"loose","dur_us":5}"#,
            "not json at all",
        ]
        .join("\n")
    }

    #[test]
    fn parses_spans_and_counts_noise() {
        let p = parse_jsonl(&fixture());
        assert_eq!(p.spans.len(), 5);
        assert_eq!(p.other_records, 1);
        assert_eq!(p.bad_lines, 1);
        assert_eq!(p.spans[0].path, "req/work/ga");
        assert_eq!(p.spans[0].parent_id.as_deref(), Some("bbbb000000000002"));
        assert_eq!(p.spans[4].trace_id, None);
    }

    #[test]
    fn aggregate_computes_self_time_from_path_hierarchy() {
        let p = parse_jsonl(&fixture());
        let stats = aggregate(&p.spans);
        // Two "req" instances: 100 + 40 total; direct child "req/work"
        // accounts for 85, so self = 55.
        let req = &stats["req"];
        assert_eq!(req.count, 2);
        assert!((req.total_us - 140.0).abs() < 1e-9);
        assert!((req.self_us - 55.0).abs() < 1e-9);
        // work: 85 total, ga child 70 → 15 self.
        assert!((stats["req/work"].self_us - 15.0).abs() < 1e-9);
        // Leaf: self == total.
        assert!((stats["req/work/ga"].self_us - 70.0).abs() < 1e-9);
        // Percentiles: req durs are [40, 100].
        assert_eq!(req.quantile(0.5), 40.0);
        assert_eq!(req.quantile(1.0), 100.0);

        let flame = render_flame(&stats);
        assert!(flame.contains("req/work/ga"), "{}", flame);
        assert!(flame.lines().count() >= 5, "{}", flame);
    }

    #[test]
    fn tree_groups_by_trace_and_nests_by_parent() {
        let p = parse_jsonl(&fixture());
        let out = render_trees(&p.spans, 10);
        assert!(out.contains("2 traces"), "{}", out);
        assert!(out.contains("1 untraced"), "{}", out);
        assert!(out.contains("trace aaaa000000000001"), "{}", out);
        // Nesting: ga sits two levels under req.
        let ga_line = out.lines().find(|l| l.contains("ga ")).unwrap();
        assert!(ga_line.starts_with("      "), "{:?}", ga_line);
        // Self time of req = 100 - 85 = 15.
        let squash = |l: &str| l.split_whitespace().collect::<Vec<_>>().join(" ");
        let req_line = out
            .lines()
            .map(squash)
            .find(|l| l.starts_with("req ") && l.contains("total 100.0us"))
            .unwrap();
        assert!(req_line.contains("self 15.0us"), "{:?}", req_line);
    }

    /// Shifts every duration in the fixture by `factor` — a synthetic
    /// "slower run".
    fn scaled_fixture(factor: f64) -> String {
        let p = parse_jsonl(&fixture());
        p.spans
            .iter()
            .map(|s| {
                format!(
                    r#"{{"ts_us":{},"kind":"span","name":"{}","dur_us":{}}}"#,
                    s.ts_us,
                    s.path,
                    s.dur_us * factor
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn diff_flags_p50_regressions_past_threshold() {
        let a = aggregate(&parse_jsonl(&fixture()).spans);
        let same = diff(&a, &a, 20.0);
        assert!(!same.is_empty());
        assert!(same.iter().all(|r| !r.regressed), "{:?}", same);

        // 2x slower: every path's p50 doubled → +100% > 20%.
        let b = aggregate(&parse_jsonl(&scaled_fixture(2.0)).spans);
        let rows = diff(&a, &b, 20.0);
        assert!(rows.iter().all(|r| r.regressed), "{:?}", rows);
        assert!((rows[0].delta_pct - 100.0).abs() < 1e-9);

        // 10% slower with a 20% gate: not a regression; with a 5% gate it
        // is.
        let c = aggregate(&parse_jsonl(&scaled_fixture(1.1)).spans);
        assert!(diff(&a, &c, 20.0).iter().all(|r| !r.regressed));
        assert!(diff(&a, &c, 5.0).iter().any(|r| r.regressed));

        let report = render_diff(&rows, 20.0, 0, 0);
        assert!(report.contains("REGRESSED"), "{}", report);
        assert!(report.contains("regression(s) past 20%"), "{}", report);
    }

    #[test]
    fn events_are_parsed_alongside_spans() {
        let p = parse_jsonl(&fixture());
        assert_eq!(p.events.len(), 1);
        assert_eq!(p.events[0].subsystem, "t");
        assert_eq!(p.events[0].name, "noise");
    }

    /// A synthetic quality stream: two predictions (one past the
    /// extrapolation threshold), one warning, and two observations.
    fn quality_fixture() -> String {
        [
            r#"{"ts_us":1,"kind":"event","subsystem":"quality","name":"prediction","fields":{"model":"m1","prediction":5000.0,"extrapolation":0.8,"disagreement":0.05}}"#,
            r#"{"ts_us":2,"kind":"event","subsystem":"serve","name":"quality_warn","fields":{"kind":"extrapolation","model":"m1","value":4.2,"threshold":3.0}}"#,
            r#"{"ts_us":3,"kind":"event","subsystem":"quality","name":"prediction","fields":{"model":"m1","prediction":9000.0,"extrapolation":4.2,"warn":"extrapolation"}}"#,
            r#"{"ts_us":4,"kind":"event","subsystem":"quality","name":"observation","fields":{"model":"m1","predicted":5000.0,"measured":5250.0,"ape":4.761904761904762,"shadow_mape":4.76}}"#,
            r#"{"ts_us":5,"kind":"event","subsystem":"quality","name":"observation","fields":{"model":"m2","predicted":100.0,"measured":110.0,"ape":9.090909090909092,"shadow_mape":6.93}}"#,
            r#"{"ts_us":6,"kind":"event","subsystem":"serve","name":"access","fields":{"cmd":"predict"}}"#,
        ]
        .join("\n")
    }

    #[test]
    fn quality_summary_distills_events() {
        let p = parse_jsonl(&quality_fixture());
        let r = summarize_quality(&p.events);
        assert_eq!(r.predictions, 2);
        assert_eq!(r.observations, 2);
        assert_eq!(r.warn_extrapolation, 1);
        assert_eq!(r.warn_disagreement, 0);
        assert_eq!(r.extrapolation, vec![0.8, 4.2]);
        assert_eq!(r.disagreement, vec![0.05]);
        assert_eq!(r.last_shadow_mape, Some(6.93));
        assert_eq!(r.per_model["m1"].predictions, 2);
        assert_eq!(r.per_model["m1"].observations, 1);
        assert_eq!(r.per_model["m1"].warnings, 1);
        assert_eq!(r.per_model["m2"].observations, 1);

        let text = render_quality(&r);
        assert!(text.contains("model-quality summary"), "{}", text);
        assert!(text.contains("rolling MAPE 6.93%"), "{}", text);
        assert!(text.contains("[1 warning(s)]"), "{}", text);
        assert!(text.contains("m1"), "{}", text);
    }

    #[test]
    fn quality_summary_of_empty_stream_is_calm() {
        let r = summarize_quality(&[]);
        let text = render_quality(&r);
        assert!(text.contains("no samples"), "{}", text);
        assert!(text.contains("no rolling MAPE yet"), "{}", text);
    }

    fn tier_fixture() -> String {
        [
            r#"{"ts_us":1,"kind":"event","subsystem":"core","name":"tier0_hit","fields":{"workload":"164.gzip-graphic","estimate":123456.0,"bound":0.08}}"#,
            r#"{"ts_us":2,"kind":"event","subsystem":"core","name":"tier0_hit","fields":{"workload":"164.gzip-graphic","estimate":98765.0,"bound":0.03}}"#,
            r#"{"ts_us":3,"kind":"event","subsystem":"core","name":"measurement","fields":{"workload":"164.gzip-graphic","metric":"cycles","rel_error":0.05,"tier":"smarts"}}"#,
            r#"{"ts_us":4,"kind":"event","subsystem":"core","name":"measurement","fields":{"workload":"181.mcf","metric":"cycles","rel_error":0.0,"tier":"detailed"}}"#,
            r#"{"ts_us":5,"kind":"event","subsystem":"core","name":"measurement","fields":{"workload":"181.mcf","metric":"cycles","rel_error":0.09}}"#,
            r#"{"ts_us":6,"kind":"event","subsystem":"quality","name":"prediction","fields":{"model":"m1"}}"#,
        ]
        .join("\n")
    }

    #[test]
    fn tier_summary_distills_events() {
        let p = parse_jsonl(&tier_fixture());
        let r = summarize_tiers(&p.events);
        assert_eq!(r.tier0_hits, 2);
        assert_eq!(r.sampled, 2); // the untagged line counts as sampled
        assert_eq!(r.detailed, 1);
        assert_eq!(r.total(), 5);
        assert_eq!(r.bounds, vec![0.03, 0.08]);
        assert_eq!(r.rel_error, vec![0.05, 0.09]);
        assert_eq!(r.per_workload["164.gzip-graphic"], [2, 1, 0]);
        assert_eq!(r.per_workload["181.mcf"], [0, 1, 1]);

        let text = render_tiers(&r);
        assert!(text.contains("tiered measurement summary"), "{}", text);
        assert!(
            text.contains("tier 0 surrogate:      2 (40.0%)"),
            "{}",
            text
        );
        assert!(text.contains("181.mcf"), "{}", text);
    }

    #[test]
    fn tier_summary_of_empty_stream_is_calm() {
        let r = summarize_tiers(&[]);
        let text = render_tiers(&r);
        assert!(text.contains("no samples"), "{}", text);
        assert!(text.contains("(0.0%)"), "{}", text);
    }

    #[test]
    fn rollout_summary_distills_lifecycle_events() {
        let stream = [
            r#"{"ts_us":10,"kind":"event","subsystem":"rollout","name":"refresh_enqueued","fields":{"base":"m","extrapolation":2.5,"pending":1}}"#,
            r#"{"ts_us":20,"kind":"event","subsystem":"rollout","name":"candidate_published","fields":{"base":"m","version":1,"measured":3,"train_size":83,"test_mape":4.2}}"#,
            r#"{"ts_us":30,"kind":"event","subsystem":"rollout","name":"canary_started","fields":{"base":"m","version":1,"fraction":0.2}}"#,
            r#"{"ts_us":40,"kind":"event","subsystem":"rollout","name":"rolled_back","fields":{"base":"m","version":1,"stage":"retrain","reason":"injected fault"}}"#,
            r#"{"ts_us":50,"kind":"event","subsystem":"rollout","name":"promoted","fields":{"base":"m","version":2,"reason":"shadow mape improved"}}"#,
            r#"{"ts_us":60,"kind":"event","subsystem":"quality","name":"prediction","fields":{"model":"m"}}"#,
        ]
        .join("\n");
        let p = parse_jsonl(&stream);
        let r = summarize_rollout(&p.events);
        assert_eq!(r.enqueued, 1);
        assert_eq!(r.candidates, 1);
        assert_eq!(r.canaries, 1);
        assert_eq!(r.rollbacks, 1);
        assert_eq!(r.promotions, 1);
        // Enqueues are counted but kept off the timeline.
        assert_eq!(r.timeline.len(), 4);
        assert_eq!(r.timeline[2].detail, "retrain: injected fault");
        assert_eq!(r.timeline[3].version, 2);

        let text = render_rollout(&r);
        assert!(text.contains("rolled back: 1"), "{}", text);
        assert!(text.contains("m@v1"), "{}", text);
        assert!(text.contains("retrain: injected fault"), "{}", text);

        let empty = render_rollout(&summarize_rollout(&[]));
        assert!(empty.contains("no rollout lifecycle events"), "{}", empty);
    }
}
