//! `emod-trace` — offline analyzer for `emod-telemetry` JSONL streams.
//!
//! ```text
//! emod-trace tree    <file.jsonl>...  [--limit N]      per-trace span trees
//! emod-trace flame   <file.jsonl>...                   self-time table per span path
//! emod-trace diff    <a.jsonl> <b.jsonl> [--threshold PCT]
//! emod-trace quality <file.jsonl>...                   model-quality summary
//! emod-trace tiers   <file.jsonl>...                   tiered-measurement summary
//! emod-trace rollout <file.jsonl>...                   canary-rollout lifecycle report
//! emod-trace bench   <BENCH_HISTORY.jsonl>... [--window N] [--threshold PCT] [--warn-only]
//! ```
//!
//! `tree` reconstructs each trace (one unit of work: a server request, a
//! bench experiment) from `trace_id`/`parent_id` links and prints the span
//! hierarchy with total and self wall time. `flame` aggregates every span
//! path across the run — where did the time actually go. `diff` compares
//! two runs and **exits 1** when any span path's p50 regressed by more
//! than the threshold (default 20%), so CI can gate on it. `quality`
//! distills the server's `quality.prediction`/`quality.observation`/
//! `quality_warn` events into extrapolation, disagreement, and
//! accuracy-drift summaries per model. `tiers` distills the measurer's
//! `tier0_hit`/`measurement` events into per-tier hit and promotion
//! counts — how much work the tier-0 surrogate actually absorbed.
//! `rollout` distills the server's `rollout.*` lifecycle events (refresh
//! enqueues, candidates, canary starts, promotions, rollbacks) into a
//! timeline — the post-mortem view of a closed-loop model refresh. `bench`
//! reads `BENCH_HISTORY.jsonl` run history, prints per-metric trendlines,
//! and **exits 1** when a windowed mean-shift finds a step regression in
//! any judged metric (throughput down, p99/wall time up) — the CI gate
//! over committed bench baselines; `--warn-only` reports without failing.
//!
//! Exit codes: 0 clean, 1 diff/bench found a regression, 2 usage/I/O
//! error.

use emod_bench::{history, trace};
use std::process::ExitCode;

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {}", err);
    }
    eprintln!("usage: emod-trace tree    <file.jsonl>... [--limit N]");
    eprintln!("       emod-trace flame   <file.jsonl>...");
    eprintln!("       emod-trace diff    <a.jsonl> <b.jsonl> [--threshold PCT]");
    eprintln!("       emod-trace quality <file.jsonl>...");
    eprintln!("       emod-trace tiers   <file.jsonl>...");
    eprintln!("       emod-trace rollout <file.jsonl>...");
    eprintln!(
        "       emod-trace bench   <BENCH_HISTORY.jsonl>... [--window N] [--threshold PCT] [--warn-only]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

/// Prints a report, ignoring EPIPE so `emod-trace … | head` exits quietly
/// instead of panicking when the reader closes early.
fn emit(report: &str) {
    use std::io::Write;
    let _ = std::io::stdout().write_all(report.as_bytes());
}

fn read_spans(path: &str) -> Result<trace::Parsed, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {}", path, e))?;
    let parsed = trace::parse_jsonl(&text);
    if parsed.bad_lines > 0 {
        eprintln!(
            "warning: {}: {} unparseable line(s) skipped",
            path, parsed.bad_lines
        );
    }
    Ok(parsed)
}

/// Reads and merges several JSONL files into one span list.
fn read_all(paths: &[String]) -> Result<Vec<trace::SpanRec>, String> {
    let mut spans = Vec::new();
    for p in paths {
        spans.extend(read_spans(p)?.spans);
    }
    Ok(spans)
}

/// Reads and merges several JSONL files into one event list.
fn read_all_events(paths: &[String]) -> Result<Vec<trace::EventRec>, String> {
    let mut events = Vec::new();
    for p in paths {
        events.extend(read_spans(p)?.events);
    }
    Ok(events)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first().map(String::as_str) else {
        return usage("missing mode");
    };
    if mode == "--help" || mode == "-h" {
        return usage("");
    }

    // Split trailing options from file operands.
    let mut files: Vec<String> = Vec::new();
    let mut limit = 20usize;
    let mut threshold = if mode == "bench" {
        history::DEFAULT_THRESHOLD_PCT
    } else {
        20.0
    };
    let mut window = history::DEFAULT_WINDOW;
    let mut warn_only = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--limit" => match args.get(i + 1).and_then(|v| v.parse().ok()) {
                Some(n) => {
                    limit = n;
                    i += 1;
                }
                None => return usage("--limit needs a positive integer"),
            },
            "--threshold" => match args.get(i + 1).and_then(|v| v.parse().ok()) {
                Some(t) => {
                    threshold = t;
                    i += 1;
                }
                None => return usage("--threshold needs a number (percent)"),
            },
            "--window" => match args.get(i + 1).and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => {
                    window = n;
                    i += 1;
                }
                _ => return usage("--window needs a positive integer"),
            },
            "--warn-only" => warn_only = true,
            opt if opt.starts_with("--") => return usage(&format!("unknown option {}", opt)),
            file => files.push(file.to_string()),
        }
        i += 1;
    }

    match mode {
        "tree" => {
            if files.is_empty() {
                return usage("tree needs at least one JSONL file");
            }
            match read_all(&files) {
                Ok(spans) => {
                    emit(&trace::render_trees(&spans, limit));
                    ExitCode::SUCCESS
                }
                Err(e) => usage(&e),
            }
        }
        "flame" => {
            if files.is_empty() {
                return usage("flame needs at least one JSONL file");
            }
            match read_all(&files) {
                Ok(spans) => {
                    if spans.is_empty() {
                        eprintln!("error: no span records found");
                        return ExitCode::from(2);
                    }
                    emit(&trace::render_flame(&trace::aggregate(&spans)));
                    ExitCode::SUCCESS
                }
                Err(e) => usage(&e),
            }
        }
        "diff" => {
            if files.len() != 2 {
                return usage("diff needs exactly two JSONL files");
            }
            let (a, b) = match (read_all(&files[..1]), read_all(&files[1..])) {
                (Ok(a), Ok(b)) => (trace::aggregate(&a), trace::aggregate(&b)),
                (Err(e), _) | (_, Err(e)) => return usage(&e),
            };
            let rows = trace::diff(&a, &b, threshold);
            let only_a = a.keys().filter(|k| !b.contains_key(*k)).count();
            let only_b = b.keys().filter(|k| !a.contains_key(*k)).count();
            emit(&trace::render_diff(&rows, threshold, only_a, only_b));
            if rows.iter().any(|r| r.regressed) {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        "quality" => {
            if files.is_empty() {
                return usage("quality needs at least one JSONL file");
            }
            match read_all_events(&files) {
                Ok(events) => {
                    emit(&trace::render_quality(&trace::summarize_quality(&events)));
                    ExitCode::SUCCESS
                }
                Err(e) => usage(&e),
            }
        }
        "rollout" => {
            if files.is_empty() {
                return usage("rollout needs at least one JSONL file");
            }
            match read_all_events(&files) {
                Ok(events) => {
                    emit(&trace::render_rollout(&trace::summarize_rollout(&events)));
                    ExitCode::SUCCESS
                }
                Err(e) => usage(&e),
            }
        }
        "tiers" => {
            if files.is_empty() {
                return usage("tiers needs at least one JSONL file");
            }
            match read_all_events(&files) {
                Ok(events) => {
                    emit(&trace::render_tiers(&trace::summarize_tiers(&events)));
                    ExitCode::SUCCESS
                }
                Err(e) => usage(&e),
            }
        }
        "bench" => {
            if files.is_empty() {
                return usage("bench needs at least one BENCH_HISTORY.jsonl file");
            }
            let mut text = String::new();
            for path in &files {
                match std::fs::read_to_string(path) {
                    Ok(t) => text.push_str(&t),
                    Err(e) => return usage(&format!("cannot read {}: {}", path, e)),
                }
            }
            let h = history::parse_history(&text);
            let verdicts = history::judge_history(&h, window, threshold);
            emit(&history::render_bench_report(
                &h, &verdicts, window, threshold,
            ));
            if verdicts.iter().any(|v| v.regressed) && !warn_only {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        other => usage(&format!("unknown mode {:?}", other)),
    }
}
