//! `bench` — the parallel-speedup benchmark harness.
//!
//! Times the three hot paths that `emod-par` fans out — measurement
//! campaigns, model training (RBF + MARS + GA tuning) and batch
//! prediction — at `EMOD_THREADS=1` versus a parallel worker count, and
//! writes one JSON report per phase (`BENCH_measure.json`,
//! `BENCH_train.json`, `BENCH_serve.json`) so every future change has a
//! performance trajectory to move. Each report records the median-of-N
//! wall time for both worker counts, the speedup, throughput (Minst/s for
//! measurement, predictions/s for serving) and an `identical` flag
//! asserting the parallel run produced bit-identical results. Every
//! report opens with a schema-versioned metadata prefix (schema, bench
//! phase, mode, reps, host/worker thread counts) in a stable field order;
//! `--history FILE` additionally appends each report as one flat JSON
//! line — the `BENCH_HISTORY.jsonl` feed that `emod-trace bench` judges
//! for step regressions.
//!
//! A fourth phase (`BENCH_tier0.json`) times the same campaign untiered
//! versus with tiered measurement enabled, recording the simulation-count
//! reduction and the holdout-MAPE cost of accepting surrogate answers.
//! A fifth phase (`BENCH_canary.json`) drives an in-process server through
//! a live canary rollout — asserting the content-hash router assigns
//! identical lanes at 1 worker and `--threads` workers, timing predict
//! throughput during the split, and counting observations until the
//! shadow gate auto-promotes the canary.
//!
//! ```text
//! cargo run --release -p emod-bench --bin bench -- --quick
//! cargo run --release -p emod-bench --bin bench -- --threads 8 --out bench-out
//! cargo run --release -p emod-bench --bin bench -- --quick --check-speedup 1.5
//! cargo run --release -p emod-bench --bin bench -- --quick --phase canary
//! ```
//!
//! `--phase NAME` (repeatable) restricts the run to the named phases
//! (`measure`, `train`, `serve`, `tier0`, `canary`) — the CI canary-smoke
//! job benches only the rollout path this way.
//!
//! `--check-speedup X` exits non-zero if the measurement-campaign speedup
//! falls below `X` — but only when the host has at least 4 cores and the
//! parallel worker count is at least 4; on smaller hosts (including
//! single-core CI runners) the gate prints a skip note instead, because no
//! scheduler can conjure parallel speedup out of one core.

use emod_compiler::OptConfig;
use emod_core::builder::BuildConfig;
use emod_core::measure::{Measurer, Metric};
use emod_core::model::{ModelFamily, SurrogateModel};
use emod_core::tune::search_flags_surrogate;
use emod_core::vars::{design_space, encode_point};
use emod_core::Tier0Config;
use emod_doe::lhs;
use emod_models::{Dataset, Regressor};
use emod_uarch::UarchConfig;
use emod_workloads::{InputSet, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::time::Instant;

const BENCH_SEED: u64 = 4242;

/// Report metadata schema. Bump when field names/semantics change so
/// `emod-trace bench` and history consumers can tell ages apart.
/// Matches `emod_load::report::HISTORY_SCHEMA` — both feed the same
/// `BENCH_HISTORY.jsonl`.
const REPORT_SCHEMA: u64 = 2;

/// Phase names accepted by `--phase`, in run order.
const PHASES: [&str; 5] = ["measure", "train", "serve", "tier0", "canary"];

struct Args {
    quick: bool,
    reps: usize,
    threads: usize,
    out: PathBuf,
    history: Option<PathBuf>,
    check_speedup: Option<f64>,
    /// Phases to run (`--phase`, repeatable); empty = all of them.
    phases: Vec<String>,
}

impl Args {
    /// Whether `--phase` selection (empty = everything) includes `name`.
    fn phase_enabled(&self, name: &str) -> bool {
        self.phases.is_empty() || self.phases.iter().any(|p| p == name)
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        reps: 0, // resolved after --quick is known
        threads: emod_par::available_parallelism(),
        out: PathBuf::from("."),
        history: None,
        check_speedup: None,
        phases: Vec::new(),
    };
    let mut reps_set = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{} needs a value", name)))
        };
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--reps" => {
                args.reps = parse_num(&value("--reps"), "--reps");
                reps_set = true;
            }
            "--threads" => args.threads = parse_num(&value("--threads"), "--threads"),
            "--out" => args.out = PathBuf::from(value("--out")),
            "--history" => args.history = Some(PathBuf::from(value("--history"))),
            "--check-speedup" => {
                let v = value("--check-speedup");
                args.check_speedup = Some(
                    v.parse()
                        .unwrap_or_else(|_| die("--check-speedup needs a number")),
                )
            }
            "--phase" => {
                let v = value("--phase");
                if !PHASES.contains(&v.as_str()) {
                    die(&format!(
                        "unknown phase {:?} (one of: {})",
                        v,
                        PHASES.join(", ")
                    ));
                }
                args.phases.push(v);
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench [--quick] [--reps N] [--threads N] [--out DIR] \
                     [--history FILE] [--check-speedup X] [--phase NAME]..."
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {:?} (try --help)", other)),
        }
    }
    if !reps_set {
        args.reps = if args.quick { 3 } else { 5 };
    }
    args.threads = args.threads.max(1);
    args.reps = args.reps.max(1);
    args
}

fn die(msg: &str) -> ! {
    eprintln!("bench: {}", msg);
    std::process::exit(2);
}

fn parse_num(s: &str, name: &str) -> usize {
    s.parse()
        .unwrap_or_else(|_| die(&format!("{} needs a positive integer", name)))
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Runs `work` `reps` times and returns (median wall seconds, last result).
fn timed<T>(reps: usize, mut work: impl FnMut() -> T) -> (f64, T) {
    let mut walls = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        last = Some(work());
        walls.push(start.elapsed().as_secs_f64());
    }
    (median(&mut walls), last.expect("reps >= 1"))
}

/// Formats an f64 as JSON (shortest round-trip form; non-finite → null).
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{}", v)
    } else {
        "null".to_string()
    }
}

/// Writes `BENCH_{phase}.json` (pretty, one field per line, stable order)
/// and — when `--history` was given — appends the same fields as one flat
/// JSON line to the history file.
fn write_report(args: &Args, phase: &str, fields: &[(&str, String)]) {
    let dir: &Path = &args.out;
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("  \"{}\": {}", k, v))
        .collect();
    let path = dir.join(format!("BENCH_{}.json", phase));
    let json = format!("{{\n{}\n}}\n", body.join(",\n"));
    std::fs::write(&path, json).unwrap_or_else(|e| die(&format!("cannot write {:?}: {}", path, e)));
    println!("  wrote {}", path.display());
    if let Some(history) = &args.history {
        use std::io::Write;
        let flat: Vec<String> = fields
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", k, v))
            .collect();
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(history)
            .unwrap_or_else(|e| die(&format!("cannot open {:?}: {}", history, e)));
        writeln!(f, "{{{}}}", flat.join(","))
            .unwrap_or_else(|e| die(&format!("cannot append {:?}: {}", history, e)));
        println!("  appended to {}", history.display());
    }
}

/// The schema-versioned metadata prefix every report starts with:
/// schema, bench phase, mode, reps, host thread count, worker count — in
/// that order, always, so reports diff cleanly across runs.
fn common_fields(args: &Args, reps: usize, phase: &str) -> Vec<(&'static str, String)> {
    vec![
        ("schema", REPORT_SCHEMA.to_string()),
        ("bench", format!("\"{}\"", phase)),
        (
            "mode",
            format!("\"{}\"", if args.quick { "quick" } else { "full" }),
        ),
        ("reps", reps.to_string()),
        (
            "host_threads",
            emod_par::available_parallelism().to_string(),
        ),
        ("threads", args.threads.to_string()),
    ]
}

/// Phase 1: a cold measurement campaign (compile + SMARTS-simulate a fresh
/// LHS design) at 1 worker vs `threads` workers.
fn bench_measure(args: &Args) -> f64 {
    println!("== measure: campaign fan-out ==");
    let workload = Workload::by_name("gzip").expect("bundled workload");
    let sample = BuildConfig::quick(BENCH_SEED).sample;
    let space = design_space();
    let n_points = if args.quick { 16 } else { 48 };
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    let points = lhs(&space, n_points, &mut rng);

    let campaign = |threads: usize| {
        let mut m = Measurer::new(workload, InputSet::Train, sample);
        m.set_threads(threads);
        let values = m.measure_metric_batch(&points, Metric::Cycles);
        let bits: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        (bits, m.instructions_simulated())
    };
    let (wall_seq, (bits_seq, instructions)) = timed(args.reps, || campaign(1));
    let (wall_par, (bits_par, _)) = timed(args.reps, || campaign(args.threads));
    let speedup = wall_seq / wall_par.max(1e-9);
    let identical = bits_seq == bits_par;
    let minst_seq = instructions as f64 / 1e6 / wall_seq.max(1e-9);
    let minst_par = instructions as f64 / 1e6 / wall_par.max(1e-9);
    println!(
        "  {} points  seq {:.3}s ({:.1} Minst/s)  par×{} {:.3}s ({:.1} Minst/s)  speedup {:.2}x  identical {}",
        n_points, wall_seq, minst_seq, args.threads, wall_par, minst_par, speedup, identical
    );
    assert!(identical, "parallel campaign diverged from sequential");

    let mut fields = common_fields(args, args.reps, "measure");
    fields.extend([
        ("workload", format!("\"{}\"", workload.name())),
        ("points", n_points.to_string()),
        ("instructions", instructions.to_string()),
        ("wall_s_seq", jnum(wall_seq)),
        ("wall_s_par", jnum(wall_par)),
        ("minst_per_sec_seq", jnum(minst_seq)),
        ("minst_per_sec_par", jnum(minst_par)),
        ("speedup", jnum(speedup)),
        ("identical", identical.to_string()),
    ]);
    write_report(args, "measure", &fields);
    speedup
}

fn model_bytes(model: &SurrogateModel) -> Vec<u8> {
    let mut w = emod_models::Writer::new();
    model.encode(&mut w);
    w.into_bytes()
}

/// Phase 2: RBF fit + MARS fit + GA tuning on a measured dataset, with the
/// training fan-outs steered through the `EMOD_THREADS` env knob.
/// `report` is false when the phase only runs to feed `serve` its dataset
/// (a `--phase serve` selection that excluded `train`).
fn bench_train(args: &Args, report: bool) -> Dataset {
    println!("== train: RBF + MARS + GA fan-out ==");
    let workload = Workload::by_name("gzip").expect("bundled workload");
    let sample = BuildConfig::quick(BENCH_SEED).sample;
    let space = design_space();
    let n_points = if args.quick { 30 } else { 80 };
    let mut rng = StdRng::seed_from_u64(BENCH_SEED + 1);
    let points = lhs(&space, n_points, &mut rng);
    let mut m = Measurer::new(workload, InputSet::Train, sample);
    m.set_threads(args.threads);
    let ys = m.measure_metric_batch(&points, Metric::Cycles);
    let xs: Vec<Vec<f64>> = points.iter().map(|p| space.encode(p)).collect();
    let data = Dataset::new(xs, ys).expect("measured dataset is well-formed");
    if !report {
        // Only here to supply `serve` its dataset — skip the timed passes.
        return data;
    }

    let train_all = |threads: usize| {
        std::env::set_var(emod_par::THREADS_ENV, threads.to_string());
        let rbf = SurrogateModel::fit(&data, ModelFamily::Rbf).expect("rbf fit");
        let mars = SurrogateModel::fit(&data, ModelFamily::Mars).expect("mars fit");
        let tuned = search_flags_surrogate(&space, &rbf, &UarchConfig::typical(), BENCH_SEED);
        (model_bytes(&rbf), model_bytes(&mars), tuned.point)
    };
    let (wall_seq, out_seq) = timed(args.reps, || train_all(1));
    let (wall_par, out_par) = timed(args.reps, || train_all(args.threads));
    std::env::remove_var(emod_par::THREADS_ENV);
    let speedup = wall_seq / wall_par.max(1e-9);
    let identical = out_seq == out_par;
    println!(
        "  n={}  seq {:.3}s  par×{} {:.3}s  speedup {:.2}x  identical {}",
        data.len(),
        wall_seq,
        args.threads,
        wall_par,
        speedup,
        identical
    );
    assert!(identical, "parallel training diverged from sequential");

    let mut fields = common_fields(args, args.reps, "train");
    fields.extend([
        ("workload", format!("\"{}\"", workload.name())),
        ("train_size", data.len().to_string()),
        ("wall_s_seq", jnum(wall_seq)),
        ("wall_s_par", jnum(wall_par)),
        ("speedup", jnum(speedup)),
        ("identical", identical.to_string()),
    ]);
    write_report(args, "train", &fields);
    data
}

/// Phase 3: batch prediction sharding — the same pool fan-out
/// `emod-serve` uses for `predict_batch` — over a large random batch.
fn bench_serve(args: &Args, data: &Dataset) {
    println!("== serve: predict_batch sharding ==");
    let space = design_space();
    std::env::set_var(emod_par::THREADS_ENV, "1");
    let model = SurrogateModel::fit(data, ModelFamily::Rbf).expect("rbf fit");
    std::env::remove_var(emod_par::THREADS_ENV);
    let n_points = if args.quick { 2_000 } else { 20_000 };
    let mut rng = StdRng::seed_from_u64(BENCH_SEED + 2);
    let batch: Vec<Vec<f64>> = (0..n_points)
        .map(|_| space.encode(&space.random_point(&mut rng)))
        .collect();

    let predict_all = |threads: usize| {
        let pool = emod_par::Pool::new(threads);
        let preds = pool.map(&batch, |_i, x| model.predict(x));
        preds.iter().map(|p| p.to_bits()).collect::<Vec<u64>>()
    };
    let (wall_seq, bits_seq) = timed(args.reps, || predict_all(1));
    let (wall_par, bits_par) = timed(args.reps, || predict_all(args.threads));
    let speedup = wall_seq / wall_par.max(1e-9);
    let identical = bits_seq == bits_par;
    let rate_seq = n_points as f64 / wall_seq.max(1e-9);
    let rate_par = n_points as f64 / wall_par.max(1e-9);
    println!(
        "  {} predictions  seq {:.3}s ({:.0}/s)  par×{} {:.3}s ({:.0}/s)  speedup {:.2}x  identical {}",
        n_points, wall_seq, rate_seq, args.threads, wall_par, rate_par, speedup, identical
    );
    assert!(identical, "parallel prediction diverged from sequential");

    let mut fields = common_fields(args, args.reps, "serve");
    fields.extend([
        ("points", n_points.to_string()),
        ("wall_s_seq", jnum(wall_seq)),
        ("wall_s_par", jnum(wall_par)),
        ("predictions_per_sec_seq", jnum(rate_seq)),
        ("predictions_per_sec_par", jnum(rate_par)),
        ("speedup", jnum(speedup)),
        ("identical", identical.to_string()),
    ]);
    fields.extend(bench_fronts(args));
    write_report(args, "serve", &fields);
}

/// The serve phase's second half: threads-vs-reactor connection-front A/B
/// under the `emod-load` open-loop generator at a connection count far
/// beyond the worker pool. The threads front parks one worker per live
/// connection, so at 256 connections on 8 workers all but 8 drivers
/// starve and their requests surface as transport errors after the client
/// timeout; the reactor front multiplexes every connection onto the same
/// 8 workers. Reported: sustained ok-rate and open-loop p99 per front,
/// plus the reactor/threads rate ratio — the number the roadmap's
/// "thousands of connections" item is judged by.
fn bench_fronts(args: &Args) -> Vec<(&'static str, String)> {
    use emod_load::{build_schedule, quantiles_ms, Arrival, CommandMix, LoadConfig, Tally};
    use emod_serve::artifact::{ArtifactMeta, ModelArtifact};
    use emod_serve::coalesce::CoalesceCfg;
    use emod_serve::registry::ModelRegistry;
    use emod_serve::server::{Front, Server};
    use std::sync::Arc;
    use std::time::Duration;

    println!("== serve: threads vs reactor front under open-loop load ==");
    // A cheap linear artifact behind the "gzip" workload selector, so the
    // per-request cost is the protocol, not the model.
    let space = design_space();
    let mut rng = StdRng::seed_from_u64(BENCH_SEED + 5);
    let raw = lhs(&space, 40, &mut rng);
    let xs: Vec<Vec<f64>> = raw.iter().map(|p| space.encode(p)).collect();
    let ys: Vec<f64> = xs.iter().map(|x| 5000.0 + x.iter().sum::<f64>()).collect();
    let train = Dataset::new(xs.clone(), ys.clone()).expect("fronts train set");
    std::env::set_var(emod_par::THREADS_ENV, "1");
    let model = SurrogateModel::fit(&train, ModelFamily::Linear).expect("linear fit");
    std::env::remove_var(emod_par::THREADS_ENV);
    let art = ModelArtifact {
        meta: ArtifactMeta {
            workload: "gzip".into(),
            input_set: "train".into(),
            metric: "cycles".into(),
            family: ModelFamily::Linear,
            scale: "quick".into(),
            seed: BENCH_SEED,
            train_mape: 0.1,
            test_mape: 0.2,
            train_size: xs.len(),
            test_size: 10,
        },
        space: design_space(),
        model,
        quality: emod_quality::DesignSummary::from_design(&train),
        train: train.clone(),
        test: Dataset::new(xs[..10].to_vec(), ys[..10].to_vec()).expect("fronts test set"),
        history: vec![(xs.len(), 0.2)],
    };
    let dir = args.out.join("bench-fronts-registry");
    let _ = std::fs::remove_dir_all(&dir);
    {
        let registry =
            ModelRegistry::open(&dir).unwrap_or_else(|e| die(&format!("registry: {}", e)));
        registry
            .store(&art)
            .unwrap_or_else(|e| die(&format!("store artifact: {}", e)));
    }

    let connections = 256usize;
    let workers = 8usize;
    let rate = if args.quick { 800.0 } else { 1200.0 };
    let duration_s = if args.quick { 1.5 } else { 3.0 };

    // (sustained ok/s, open-loop p99 ms, ok count, scheduled requests)
    let run_front = |front: Front| -> (f64, f64, u64, usize) {
        let registry = Arc::new(
            ModelRegistry::open(&dir).unwrap_or_else(|e| die(&format!("registry: {}", e))),
        );
        let mut server = Server::bind(Arc::clone(&registry), "127.0.0.1:0", workers)
            .unwrap_or_else(|e| die(&format!("bind: {}", e)))
            .with_front(front);
        if matches!(front, Front::Reactor) {
            server = server.with_coalesce(Some(CoalesceCfg {
                window: Duration::from_micros(500),
                max_batch: 64,
            }));
        }
        let addr = server
            .local_addr()
            .unwrap_or_else(|e| die(&format!("local_addr: {}", e)));
        let stop = server.shutdown_handle();
        let handle = std::thread::spawn(move || server.run());
        let cfg = LoadConfig {
            addr: addr.to_string(),
            rate,
            duration_s,
            connections,
            seed: BENCH_SEED,
            arrival: Arrival::Fixed,
            mix: CommandMix::default(), // pure single-point predict
            workload: "gzip".to_string(),
            batch: 8,
            // Starved connections must fail fast, not wedge the run.
            timeout_s: 0.25,
            bench_label: "serve_fronts".to_string(),
        };
        let schedule = build_schedule(&cfg);
        let result = emod_load::run(&cfg, &schedule);
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        handle
            .join()
            .expect("server thread")
            .unwrap_or_else(|e| die(&format!("server run: {}", e)));
        let tally = Tally::of(&result.samples);
        let latency: Vec<f64> = result.samples.iter().map(|s| s.latency_us).collect();
        let p99 = quantiles_ms(&latency).map(|q| q.p99).unwrap_or(f64::NAN);
        let ok_rate = tally.ok as f64 / result.wall_s.max(1e-9);
        (ok_rate, p99, tally.ok, schedule.len())
    };

    let (threads_rate, threads_p99, threads_ok, scheduled) = run_front(Front::Threads);
    let (reactor_rate, reactor_p99, reactor_ok, _) = run_front(Front::Reactor);
    let improvement = reactor_rate / threads_rate.max(1e-9);
    println!(
        "  {} conns on {} workers, {} scheduled  threads {:.0} ok/s (p99 {:.1}ms, {}/{} ok)  \
         reactor {:.0} ok/s (p99 {:.1}ms, {}/{} ok)  rate improvement {:.1}x",
        connections,
        workers,
        scheduled,
        threads_rate,
        threads_p99,
        threads_ok,
        scheduled,
        reactor_rate,
        reactor_p99,
        reactor_ok,
        scheduled,
        improvement
    );
    vec![
        ("fronts_connections", connections.to_string()),
        ("fronts_workers", workers.to_string()),
        ("fronts_scheduled", scheduled.to_string()),
        ("threads_front_ok", threads_ok.to_string()),
        ("threads_front_ok_per_sec", jnum(threads_rate)),
        ("threads_front_p99_ms", jnum(threads_p99)),
        ("reactor_front_ok", reactor_ok.to_string()),
        ("reactor_front_ok_per_sec", jnum(reactor_rate)),
        ("reactor_front_p99_ms", jnum(reactor_p99)),
        ("fronts_rate_improvement", jnum(improvement)),
    ]
}

/// Design points sweeping three machine axes around the paper's "typical"
/// configuration at -O2, interleaved so consecutive points jump around the
/// grid — the shape of campaign the tier-0 surrogate is built for.
fn uarch_sweep_points() -> Vec<Vec<f64>> {
    let space = design_space();
    let base = encode_point(&OptConfig::o2(), &UarchConfig::typical());
    let axes = ["issue-width", "ruu-size", "memory-latency"]
        .map(|n| space.index_of(n).expect("machine axis"));
    let mut pool = Vec::new();
    for a in space.parameters()[axes[0]].levels() {
        for b in space.parameters()[axes[1]].levels() {
            for c in space.parameters()[axes[2]].levels() {
                let mut p = base.clone();
                p[axes[0]] = a;
                p[axes[1]] = b;
                p[axes[2]] = c;
                pool.push(p);
            }
        }
    }
    let n = pool.len();
    let stride = [37usize, 41, 43, 47]
        .into_iter()
        .find(|s| {
            let (mut x, mut y) = (*s, n);
            while y != 0 {
                (x, y) = (y, x % y);
            }
            x == 1
        })
        .expect("coprime stride");
    (0..n).map(|i| pool[(i * stride) % n].clone()).collect()
}

/// Phase 4: tiered measurement. The same multi-round campaign runs untiered
/// (every point SMARTS-sampled) and tiered (surrogate answers once the
/// router's error bound clears the operating point); the report records the
/// simulation-count reduction, wall-time speedup, and how far the tiered
/// dataset moves a fitted RBF model's holdout MAPE. The bench uses a 15%
/// operating point so the router engages within a bench-sized campaign; the
/// production default (1%, `EMOD_TIER0_ERR_BOUND`) needs campaign-scale
/// training data.
fn bench_tier0(args: &Args) {
    println!("== tier0: tiered measurement routing ==");
    let workload = Workload::by_name("gzip").expect("bundled workload");
    // Denser sampling than the other phases: tier-2 escalation fires when a
    // SMARTS confidence interval exceeds the operating point, so the bench
    // needs CIs that normally sit under the bound (1 in 100 windows
    // measured rather than the quick preset's sparse plan).
    let sample = emod_uarch::SampleConfig {
        window: 500,
        interval: 20,
        warmup: 1000,
        fuel: u64::MAX,
    };
    let space = design_space();
    let pool = uarch_sweep_points();
    let n_campaign = (if args.quick { 96 } else { 156 }).min(pool.len() - 12);
    let round = 6;
    let campaign = &pool[..n_campaign];
    let holdout = &pool[n_campaign..n_campaign + 12];
    let cfg = Tier0Config {
        err_bound: 0.15,
        min_train: 16,
        ..Tier0Config::default()
    };

    let run = |tiered: bool| {
        let mut m = Measurer::new(workload, InputSet::Train, sample);
        m.set_tier0(tiered.then(|| cfg.clone()));
        m.set_threads(1);
        let mut ys = Vec::with_capacity(campaign.len());
        for chunk in campaign.chunks(round) {
            ys.extend(m.measure_metric_batch(chunk, Metric::Cycles));
        }
        (ys, m.measurement_count(), m.tier_counts())
    };
    let (wall_untiered, (ys_untiered, sims_untiered, _)) = timed(args.reps, || run(false));
    let (wall_tiered, (ys_tiered, sims_tiered, tiers)) = timed(args.reps, || run(true));
    let speedup = wall_untiered / wall_tiered.max(1e-9);
    let sim_reduction = sims_untiered as f64 / (sims_tiered.max(1)) as f64;

    // Model-quality cost: fit the same family on each campaign's dataset
    // and score both on untiered SMARTS truth at held-out points.
    let mut truth_m = Measurer::new(workload, InputSet::Train, sample);
    truth_m.set_threads(1);
    let truth: Vec<f64> = holdout
        .iter()
        .map(|p| truth_m.measure_metric(p, Metric::Cycles))
        .collect();
    let mape_of = |ys: &[f64]| {
        let xs: Vec<Vec<f64>> = campaign.iter().map(|p| space.encode(p)).collect();
        let data = Dataset::new(xs, ys.to_vec()).expect("campaign dataset");
        std::env::set_var(emod_par::THREADS_ENV, "1");
        let model = SurrogateModel::fit(&data, ModelFamily::Rbf).expect("rbf fit");
        std::env::remove_var(emod_par::THREADS_ENV);
        let sum: f64 = holdout
            .iter()
            .zip(&truth)
            .map(|(p, y)| (model.predict(&space.encode(p)) - y).abs() / y.abs().max(1e-9))
            .sum();
        100.0 * sum / truth.len() as f64
    };
    let mape_untiered = mape_of(&ys_untiered);
    let mape_tiered = mape_of(&ys_tiered);
    let mape_delta_abs = (mape_tiered - mape_untiered).abs();
    println!(
        "  {} points  untiered {:.3}s / {} sims  tiered {:.3}s / {} sims (tier0 {} / smarts {} / detailed {})",
        n_campaign, wall_untiered, sims_untiered, wall_tiered, sims_tiered, tiers[0], tiers[1], tiers[2]
    );
    println!(
        "  sim reduction {:.2}x  speedup {:.2}x  holdout MAPE untiered {:.2}% tiered {:.2}% (|Δ| {:.2} pts)",
        sim_reduction, speedup, mape_untiered, mape_tiered, mape_delta_abs
    );

    let mut fields = common_fields(args, args.reps, "tier0");
    fields.extend([
        ("workload", format!("\"{}\"", workload.name())),
        ("points", n_campaign.to_string()),
        ("err_bound", jnum(cfg.err_bound)),
        ("sims_untiered", sims_untiered.to_string()),
        ("sims_tiered", sims_tiered.to_string()),
        ("sim_reduction", jnum(sim_reduction)),
        ("tier0_hits", tiers[0].to_string()),
        ("smarts_runs", tiers[1].to_string()),
        ("detailed_promotions", tiers[2].to_string()),
        ("wall_s_untiered", jnum(wall_untiered)),
        ("wall_s_tiered", jnum(wall_tiered)),
        ("speedup", jnum(speedup)),
        ("mape_untiered", jnum(mape_untiered)),
        ("mape_tiered", jnum(mape_tiered)),
        ("mape_delta_abs", jnum(mape_delta_abs)),
    ]);
    write_report(args, "tier0", &fields);
}

/// Phase 5: closed-loop canary rollout over an in-process server. An
/// active model fit on a warped response surface and a candidate version
/// fit on the exact surface serve behind the canary router at 30%
/// traffic; the bench drives the same predict stream through
/// `handle_request` at 1 worker and `--threads` workers, asserting the
/// lane assignment and every prediction are bit-identical (the routing
/// hash is over request content, never scheduling), then feeds ground
/// truth to `observe` until the shadow gate auto-promotes the canary.
/// Records the canary share, predict throughput while the rollout is
/// live, and observations-to-promotion — the serving-continuity numbers
/// for the closed refresh loop.
fn bench_canary(args: &Args) {
    use emod_core::vars::COMPILER_PARAMS;
    use emod_serve::artifact::{ArtifactMeta, ModelArtifact};
    use emod_serve::json::Json;
    use emod_serve::registry::ModelRegistry;
    use emod_serve::rollout::{
        route_hash, routes_to_canary, RolloutConfig, RolloutPhase, RolloutState,
    };
    use emod_serve::server::{handle_request, ServerState};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    println!("== canary: shadow-gated rollout routing ==");
    let space = design_space();
    let mut rng = StdRng::seed_from_u64(BENCH_SEED + 3);
    let train_raw = lhs(&space, 80, &mut rng);
    let xs: Vec<Vec<f64>> = train_raw.iter().map(|p| space.encode(p)).collect();
    let truth = |x: &[f64]| {
        let compiler: f64 = x[..COMPILER_PARAMS].iter().sum();
        let machine: f64 = x[COMPILER_PARAMS..].iter().sum();
        5000.0 + 100.0 * compiler - 10.0 * machine
    };
    let ys_exact: Vec<f64> = xs.iter().map(|x| truth(x)).collect();
    // The active model learned a warped surface; the canary learned the
    // real one, so its shadow MAPE is strictly lower and the gate promotes.
    let ys_warped: Vec<f64> = ys_exact
        .iter()
        .enumerate()
        .map(|(i, y)| y * (1.0 + 0.08 * ((i as f64) * 0.7).sin()))
        .collect();
    let fit_artifact = |ys: &[f64], test_mape: f64| -> ModelArtifact {
        let train = Dataset::new(xs.clone(), ys.to_vec()).expect("canary train set");
        std::env::set_var(emod_par::THREADS_ENV, "1");
        let model = SurrogateModel::fit(&train, ModelFamily::Linear).expect("linear fit");
        std::env::remove_var(emod_par::THREADS_ENV);
        ModelArtifact {
            meta: ArtifactMeta {
                workload: "gzip".into(),
                input_set: "train".into(),
                metric: "cycles".into(),
                family: ModelFamily::Linear,
                scale: "quick".into(),
                seed: BENCH_SEED,
                train_mape: 0.1,
                test_mape,
                train_size: xs.len(),
                test_size: 20,
            },
            space: design_space(),
            model,
            quality: emod_quality::DesignSummary::from_design(&train),
            train: train.clone(),
            test: Dataset::new(xs[..20].to_vec(), ys[..20].to_vec()).expect("canary test set"),
            history: vec![(xs.len(), test_mape)],
        }
    };
    let active = fit_artifact(&ys_warped, 0.2);
    let candidate = fit_artifact(&ys_exact, 0.05);
    let base = active.id();

    let dir = args.out.join("bench-canary-registry");
    let _ = std::fs::remove_dir_all(&dir);
    let registry =
        Arc::new(ModelRegistry::open(&dir).unwrap_or_else(|e| die(&format!("registry: {}", e))));
    registry
        .store(&active)
        .unwrap_or_else(|e| die(&format!("store active: {}", e)));
    registry
        .store_version(&candidate, 1)
        .unwrap_or_else(|e| die(&format!("store canary: {}", e)));
    let mut roll = RolloutState::steady(&base);
    roll.phase = RolloutPhase::Canary;
    roll.canary = Some(1);
    roll.fraction = 0.3;
    roll.record("canary_started", 1, "bench");
    registry
        .save_rollout(&roll)
        .unwrap_or_else(|e| die(&format!("save rollout: {}", e)));
    let cfg = RolloutConfig {
        fraction: roll.fraction,
        seed: BENCH_SEED,
        min_obs: 32,
        improve_margin: 0.0,
        regress_margin: 0.5,
        max_burn: f64::INFINITY,
    };

    let n_requests = if args.quick { 192 } else { 512 };
    let queries = lhs(&space, n_requests, &mut rng);
    let bodies: Vec<String> = queries
        .iter()
        .map(|p| {
            let pt: Vec<String> = p.iter().map(|v| jnum(*v)).collect();
            format!(
                "{{\"cmd\":\"predict\",\"model\":\"{}\",\"point\":[{}]}}",
                base,
                pt.join(",")
            )
        })
        .collect();

    // Predicts don't mutate rollout state, so each pass gets a fresh
    // in-process server over the same on-disk registry.
    let shutdown = Arc::new(AtomicBool::new(false));
    let run_pass = |threads: usize| -> Vec<(String, u64)> {
        std::env::set_var(emod_par::THREADS_ENV, threads.to_string());
        let state = ServerState::new(Arc::clone(&registry), Arc::clone(&shutdown))
            .with_rollout_cfg(cfg.clone());
        let out = bodies
            .iter()
            .map(|body| {
                let (resp, _) = handle_request(&state, body);
                assert_eq!(
                    resp.get("ok"),
                    Some(&Json::Bool(true)),
                    "predict failed during canary: {}",
                    resp
                );
                let lane = resp
                    .get("serving")
                    .and_then(Json::as_str)
                    .expect("canary-tracked predict carries a serving lane")
                    .to_string();
                let bits = resp
                    .get("prediction")
                    .and_then(Json::as_f64)
                    .expect("numeric prediction")
                    .to_bits();
                (lane, bits)
            })
            .collect();
        std::env::remove_var(emod_par::THREADS_ENV);
        out
    };
    let (wall_seq, lanes_seq) = timed(args.reps, || run_pass(1));
    let (wall_par, lanes_par) = timed(args.reps, || run_pass(args.threads));
    let identical = lanes_seq == lanes_par;
    assert!(identical, "canary routing diverged across worker counts");
    // The served lanes must agree with the pure routing function — the
    // determinism contract clients and replays rely on.
    for (q, (lane, _)) in queries.iter().zip(&lanes_seq) {
        let expect = routes_to_canary(
            route_hash(cfg.seed, &base, std::slice::from_ref(q)),
            roll.fraction,
        );
        assert_eq!(lane == "canary", expect, "router disagrees with route_hash");
    }
    let canary_requests = lanes_seq.iter().filter(|(l, _)| l == "canary").count();
    let canary_share = canary_requests as f64 / n_requests as f64;
    let rate = n_requests as f64 / wall_seq.max(1e-9);

    // Shadow gating: feed exact ground truth until the gate promotes.
    let state = ServerState::new(Arc::clone(&registry), Arc::clone(&shutdown))
        .with_rollout_cfg(cfg.clone());
    let mut observes = 0usize;
    let mut promoted = false;
    let gate_start = Instant::now();
    'gate: while observes < 20 * cfg.min_obs {
        for q in &queries {
            let measured = truth(&space.encode(q));
            let pt: Vec<String> = q.iter().map(|v| jnum(*v)).collect();
            let body = format!(
                "{{\"cmd\":\"observe\",\"model\":\"{}\",\"point\":[{}],\"measured\":{}}}",
                base,
                pt.join(","),
                jnum(measured)
            );
            let (resp, _) = handle_request(&state, &body);
            assert_eq!(
                resp.get("ok"),
                Some(&Json::Bool(true)),
                "observe failed during canary: {}",
                resp
            );
            observes += 1;
            let verdict = resp
                .get("rollout")
                .and_then(|r| r.get("verdict"))
                .and_then(Json::as_str);
            match verdict {
                Some("promote") => {
                    promoted = true;
                    break 'gate;
                }
                Some("rollback") => die("shadow gate rolled the bench canary back"),
                _ => {}
            }
        }
    }
    let gate_wall = gate_start.elapsed().as_secs_f64();
    assert!(promoted, "shadow gate never promoted the bench canary");
    let final_state = registry
        .load_rollout(&base)
        .ok()
        .flatten()
        .expect("rollout state persisted");
    assert_eq!(final_state.phase, RolloutPhase::Steady);
    assert_eq!(final_state.active, 1, "promotion made v1 active");

    println!(
        "  {} predicts  canary share {:.1}%  seq {:.3}s ({:.0}/s)  par×{} {:.3}s  identical {}",
        n_requests,
        100.0 * canary_share,
        wall_seq,
        rate,
        args.threads,
        wall_par,
        identical
    );
    println!(
        "  promoted after {} observations in {:.3}s (min_obs {})",
        observes, gate_wall, cfg.min_obs
    );

    let mut fields = common_fields(args, args.reps, "canary");
    fields.extend([
        ("requests", n_requests.to_string()),
        ("canary_fraction", jnum(roll.fraction)),
        ("canary_share", jnum(canary_share)),
        ("wall_s_seq", jnum(wall_seq)),
        ("wall_s_par", jnum(wall_par)),
        ("predictions_per_sec", jnum(rate)),
        ("observes_to_promote", observes.to_string()),
        ("gate_wall_s", jnum(gate_wall)),
        ("identical", identical.to_string()),
        ("promoted", promoted.to_string()),
    ]);
    write_report(args, "canary", &fields);
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let args = parse_args();
    // Bench hygiene: a leftover checkpoint would turn the second campaign
    // into a cache replay, and an installed fault plan would make wall
    // times meaningless.
    std::env::remove_var("EMOD_CHECKPOINT");
    std::env::remove_var("EMOD_FAULTS");
    std::fs::create_dir_all(&args.out)
        .unwrap_or_else(|e| die(&format!("cannot create {:?}: {}", args.out, e)));
    println!(
        "bench: mode={} reps={} threads={} (host has {})",
        if args.quick { "quick" } else { "full" },
        args.reps,
        args.threads,
        emod_par::available_parallelism()
    );

    let measure_speedup = args.phase_enabled("measure").then(|| bench_measure(&args));
    if args.phase_enabled("serve") {
        // serve needs train's measured dataset even when train itself was
        // filtered out of the report.
        let data = bench_train(&args, args.phase_enabled("train"));
        bench_serve(&args, &data);
    } else if args.phase_enabled("train") {
        bench_train(&args, true);
    }
    if args.phase_enabled("tier0") {
        bench_tier0(&args);
    }
    if args.phase_enabled("canary") {
        bench_canary(&args);
    }

    if let (Some(min), Some(measure_speedup)) = (args.check_speedup, measure_speedup) {
        let cores = emod_par::available_parallelism();
        if cores >= 4 && args.threads >= 4 {
            if measure_speedup < min {
                eprintln!(
                    "bench: FAIL measurement speedup {:.2}x < required {:.2}x at {} threads",
                    measure_speedup, min, args.threads
                );
                std::process::exit(1);
            }
            println!(
                "bench: speedup gate passed ({:.2}x >= {:.2}x)",
                measure_speedup, min
            );
        } else {
            println!(
                "bench: speedup gate skipped (host has {} core(s), {} worker(s) requested; need >= 4 of each)",
                cores, args.threads
            );
        }
    }
}
