//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--stats] table1 | table2 | table3 | table4 | table5 | table6 | table7
//!       fig3 | fig5 | fig6 | fig7
//!       metrics | ablation-design | ablation-search | publish | all
//! ```
//!
//! Scale is selected with `EMOD_SCALE` = `quick` | `reduced` (default) |
//! `paper`. When `EMOD_REGISTRY` is set, trained models are persisted there
//! and reused by later runs; `repro publish` trains and persists every
//! workload × family explicitly (default registry `./registry`) so
//! `emod-serve` can answer predictions without retraining.
//!
//! Telemetry: set `EMOD_TELEMETRY=<path>` (or `-`/`stderr`) to stream
//! structured JSONL events from every pipeline layer, and/or pass `--stats`
//! to print a human-readable statistics appendix (cache hit rates, branch
//! mispredict rates, per-round model MAPE trajectory, span timings) after
//! the experiments finish.

use emod_bench::{experiments, Session};
use emod_telemetry as telemetry;
use std::time::Instant;

/// An experiment runner from [`EXPERIMENTS`].
type Runner = fn(&mut Session);

/// One experiment: its CLI name and its runner. The single table drives the
/// per-name dispatch, the `all` arm (which runs entries in this order) and
/// the usage string.
const EXPERIMENTS: &[(&str, Runner)] = &[
    ("table1", |_| experiments::table1()),
    ("table2", |_| experiments::table2()),
    ("fig3", |_| {
        experiments::fig3();
    }),
    ("table3", |s| {
        experiments::table3(s);
    }),
    ("fig5", |s| {
        experiments::fig5(s);
    }),
    ("fig6", |s| {
        experiments::fig6(s);
    }),
    ("table4", |s| {
        experiments::table4(s);
    }),
    ("table5", |_| experiments::table5()),
    ("table6", |s| {
        experiments::table6(s);
    }),
    ("fig7", |s| {
        experiments::fig7(s);
    }),
    ("table7", |s| {
        experiments::table7(s);
    }),
    ("metrics", experiments::ext_metrics),
    ("ablation-design", experiments::ablation_design),
    ("ablation-search", experiments::ablation_search),
];

fn runner_for(name: &str) -> Option<Runner> {
    if name == "publish" {
        return Some(experiments::publish);
    }
    EXPERIMENTS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, run)| run)
}

fn usage() -> String {
    let names: Vec<&str> = EXPERIMENTS.iter().map(|&(n, _)| n).collect();
    format!("usage: repro [--stats] <{}|publish|all> …", names.join("|"))
}

fn run_one(name: &str, run: fn(&mut Session), session: &mut Session) {
    let t0 = Instant::now();
    // Each experiment is one trace: spans opened inside (model training,
    // GA generations) link back to it, so `emod-trace tree` shows one tree
    // per experiment.
    let span = telemetry::trace_root(&format!("bench.{}", name));
    run(session);
    drop(span);
    let wall = t0.elapsed();
    telemetry::counter_add("bench.experiments", 1);
    telemetry::event(
        "bench",
        "experiment",
        &[
            ("experiment", telemetry::Value::from(name)),
            ("wall_s", telemetry::Value::from(wall.as_secs_f64())),
        ],
    );
    println!("# {} done in {:?}\n", name, wall);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let stats = args.iter().any(|a| a == "--stats");
    args.retain(|a| a != "--stats");
    if args.is_empty() {
        eprintln!("{}", usage());
        std::process::exit(2);
    }
    telemetry::init_from_env();
    if stats {
        telemetry::enable();
    }
    match emod_faults::init_from_env() {
        Ok(true) => eprintln!("# fault injection active ({} set)", emod_faults::FAULTS_ENV),
        Ok(false) => {}
        Err(e) => {
            eprintln!("error: {}: {}", emod_faults::FAULTS_ENV, e);
            std::process::exit(2);
        }
    }
    let mut session = Session::from_env();
    println!(
        "# scale: {} (set EMOD_SCALE=quick|reduced|paper)",
        session.scale().name()
    );
    for arg in &args {
        match arg.as_str() {
            "all" => {
                for &(name, run) in EXPERIMENTS {
                    run_one(name, run, &mut session);
                }
            }
            name => match runner_for(name) {
                Some(run) => run_one(name, run, &mut session),
                None => {
                    eprintln!("unknown experiment `{}`\n{}", name, usage());
                    std::process::exit(2);
                }
            },
        }
    }
    if stats {
        println!("{}", telemetry::summary());
    }
    telemetry::flush();
}
