//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--stats] table1 | table2 | table3 | table4 | table5 | table6 | table7
//!       fig3 | fig5 | fig6 | fig7
//!       metrics | ablation-design | ablation-search | all
//! ```
//!
//! Scale is selected with `EMOD_SCALE` = `quick` | `reduced` (default) |
//! `paper`.
//!
//! Telemetry: set `EMOD_TELEMETRY=<path>` (or `-`/`stderr`) to stream
//! structured JSONL events from every pipeline layer, and/or pass `--stats`
//! to print a human-readable statistics appendix (cache hit rates, branch
//! mispredict rates, per-round model MAPE trajectory, span timings) after
//! the experiments finish.

use emod_bench::{experiments, Scale, Session};
use emod_telemetry as telemetry;
use std::time::Instant;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let stats = args.iter().any(|a| a == "--stats");
    args.retain(|a| a != "--stats");
    if args.is_empty() {
        eprintln!(
            "usage: repro [--stats] \
             <table1..table7|fig3|fig5|fig6|fig7|metrics|ablation-design|ablation-search|all> …"
        );
        std::process::exit(2);
    }
    telemetry::init_from_env();
    if stats {
        telemetry::enable();
    }
    let scale = Scale::from_env();
    println!("# scale: {:?} (set EMOD_SCALE=quick|reduced|paper)", scale);
    let mut session = Session::new(scale);
    for arg in &args {
        let t0 = Instant::now();
        let span = telemetry::span(&format!("bench.{}", arg));
        match arg.as_str() {
            "table1" => experiments::table1(),
            "table2" => experiments::table2(),
            "table3" => {
                experiments::table3(&mut session);
            }
            "table4" => {
                experiments::table4(&mut session);
            }
            "table5" => experiments::table5(),
            "table6" => {
                experiments::table6(&mut session);
            }
            "table7" => {
                experiments::table7(&mut session);
            }
            "fig3" => {
                experiments::fig3();
            }
            "fig5" => {
                experiments::fig5(&mut session);
            }
            "fig6" => {
                experiments::fig6(&mut session);
            }
            "fig7" => {
                experiments::fig7(&mut session);
            }
            "metrics" => experiments::ext_metrics(&mut session),
            "ablation-design" => experiments::ablation_design(&mut session),
            "ablation-search" => experiments::ablation_search(&mut session),
            "all" => {
                experiments::table1();
                experiments::table2();
                experiments::fig3();
                experiments::table3(&mut session);
                experiments::fig5(&mut session);
                experiments::fig6(&mut session);
                experiments::table4(&mut session);
                experiments::table5();
                experiments::table6(&mut session);
                experiments::fig7(&mut session);
                experiments::table7(&mut session);
                experiments::ext_metrics(&mut session);
                experiments::ablation_design(&mut session);
                experiments::ablation_search(&mut session);
            }
            other => {
                eprintln!("unknown experiment `{}`", other);
                std::process::exit(2);
            }
        }
        drop(span);
        let wall = t0.elapsed();
        telemetry::counter_add("bench.experiments", 1);
        telemetry::event(
            "bench",
            "experiment",
            &[
                ("experiment", telemetry::Value::from(arg.as_str())),
                ("wall_s", telemetry::Value::from(wall.as_secs_f64())),
            ],
        );
        println!("# {} done in {:?}\n", arg, wall);
    }
    if stats {
        println!("{}", telemetry::summary());
    }
    telemetry::flush();
}
