//! A reproduction session: caches built models and measurers so that
//! experiments sharing infrastructure (Tables 3, 4, 6; Figures 5–7) reuse
//! measurements within one `repro` invocation.
//!
//! When backed by a [`ModelRegistry`] (see [`Session::with_registry`] /
//! [`Session::from_env`]), trained models are also persisted as artifacts
//! and reloaded on later runs at the same scale/seed, so repeated `repro`
//! invocations skip the measurement + fitting cost entirely.

use crate::Scale;
use emod_core::builder::{BuiltModel, ModelBuilder};
use emod_core::model::ModelFamily;
use emod_core::Metric;
use emod_models::ModelError;
use emod_serve::artifact::{family_slug, ArtifactError, ModelArtifact};
use emod_serve::registry::{ModelRegistry, REGISTRY_ENV};
use emod_telemetry as telemetry;
use emod_workloads::{InputSet, Workload};
use std::collections::HashMap;
use std::sync::Arc;

/// The RNG seed every session derives its designs and fits from.
pub const SESSION_SEED: u64 = 9001;

/// Shared state across experiments.
pub struct Session {
    scale: Scale,
    registry: Option<Arc<ModelRegistry>>,
    builders: HashMap<(&'static str, InputSet), ModelBuilder>,
    built: HashMap<(&'static str, InputSet, ModelFamily), BuiltModel>,
}

impl Session {
    /// Creates an in-memory session at the given scale (no persistence).
    pub fn new(scale: Scale) -> Self {
        Session {
            scale,
            registry: None,
            builders: HashMap::new(),
            built: HashMap::new(),
        }
    }

    /// Creates a session whose models are loaded from and stored into
    /// `registry`.
    pub fn with_registry(scale: Scale, registry: Arc<ModelRegistry>) -> Self {
        Session {
            registry: Some(registry),
            ..Session::new(scale)
        }
    }

    /// Creates a session from the environment: scale from `EMOD_SCALE`, and
    /// registry-backed iff `EMOD_REGISTRY` is set (so plain runs stay
    /// side-effect free).
    pub fn from_env() -> Self {
        let scale = Scale::from_env();
        if std::env::var(REGISTRY_ENV).is_err() {
            return Session::new(scale);
        }
        match ModelRegistry::open_env() {
            Ok(reg) => Session::with_registry(scale, Arc::new(reg)),
            Err(e) => {
                eprintln!("warning: {} (continuing without a registry)", e);
                Session::new(scale)
            }
        }
    }

    /// The session's scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The backing registry, if any.
    pub fn registry(&self) -> Option<&Arc<ModelRegistry>> {
        self.registry.as_ref()
    }

    /// Attaches the `EMOD_REGISTRY` (default `./registry`) registry if the
    /// session does not have one yet, and returns it.
    ///
    /// # Errors
    ///
    /// Returns an [`ArtifactError::Io`] if the directory cannot be created.
    pub fn ensure_registry(&mut self) -> Result<&Arc<ModelRegistry>, ArtifactError> {
        if self.registry.is_none() {
            self.registry = Some(Arc::new(ModelRegistry::open_env()?));
        }
        Ok(self.registry.as_ref().expect("just attached"))
    }

    /// The registry id a model built by this session persists under.
    pub fn artifact_id(&self, w: &Workload, set: InputSet, family: ModelFamily) -> String {
        format!(
            "{}__{}__{}__{}__{}__s{}",
            w.name(),
            set.name(),
            Metric::Cycles.name(),
            family_slug(family),
            self.scale.name(),
            SESSION_SEED
        )
    }

    /// The model builder for a workload/input pair (created on first use;
    /// keeps the response cache).
    pub fn builder(&mut self, w: &'static Workload, set: InputSet) -> &mut ModelBuilder {
        let scale = self.scale;
        self.builders
            .entry((w.name(), set))
            .or_insert_with(|| ModelBuilder::new(w, set, scale.build_config(SESSION_SEED)))
    }

    /// Builds (or fetches) a model for a workload/input/family triple,
    /// consulting the registry first when one is attached and persisting
    /// freshly trained models back to it.
    ///
    /// # Errors
    ///
    /// Returns the [`ModelError`] when fitting fails; the failure is logged
    /// as a telemetry event and later experiments can keep using the
    /// session.
    pub fn model(
        &mut self,
        w: &'static Workload,
        set: InputSet,
        family: ModelFamily,
    ) -> Result<&BuiltModel, ModelError> {
        let key = (w.name(), set, family);
        if !self.built.contains_key(&key) {
            let _span = telemetry::span("session.model");
            let built = match self.load_from_registry(w, set, family) {
                Some(b) => b,
                None => self.train_and_store(w, set, family)?,
            };
            self.built.insert(key, built);
        }
        Ok(&self.built[&key])
    }

    fn load_from_registry(
        &self,
        w: &'static Workload,
        set: InputSet,
        family: ModelFamily,
    ) -> Option<BuiltModel> {
        let reg = self.registry.as_ref()?;
        let id = self.artifact_id(w, set, family);
        if !reg.contains(&id) {
            return None;
        }
        match reg.load(&id).and_then(|a| a.to_built()) {
            Ok(built) => {
                telemetry::counter_add("bench.session.registry_hits", 1);
                Some(built)
            }
            Err(e) => {
                telemetry::event(
                    "bench",
                    "artifact_load_failed",
                    &[
                        ("id", telemetry::Value::from(id.as_str())),
                        ("error", telemetry::Value::from(e.to_string())),
                    ],
                );
                eprintln!("warning: artifact {} unusable ({}); retraining", id, e);
                None
            }
        }
    }

    fn train_and_store(
        &mut self,
        w: &'static Workload,
        set: InputSet,
        family: ModelFamily,
    ) -> Result<BuiltModel, ModelError> {
        let built = match self.builder(w, set).build(family) {
            Ok(b) => b,
            Err(e) => {
                telemetry::event(
                    "bench",
                    "model_fit_failed",
                    &[
                        ("workload", telemetry::Value::from(w.name())),
                        ("family", telemetry::Value::from(format!("{:?}", family))),
                        ("error", telemetry::Value::from(e.to_string())),
                    ],
                );
                return Err(e);
            }
        };
        if let Some(reg) = &self.registry {
            let art = ModelArtifact::from_built(
                &built,
                set,
                Metric::Cycles,
                self.scale.name(),
                SESSION_SEED,
            );
            if let Err(e) = reg.store(&art) {
                eprintln!("warning: could not persist {}: {}", art.id(), e);
            }
        }
        Ok(built)
    }

    /// Trains (or fetches) the model and persists it, returning its
    /// registry id and test MAPE. Unlike [`Session::model`], this stores
    /// even when the model was already cached in memory.
    ///
    /// # Errors
    ///
    /// Returns the [`ModelError`] when fitting fails.
    pub fn publish_model(
        &mut self,
        w: &'static Workload,
        set: InputSet,
        family: ModelFamily,
    ) -> Result<(String, f64), ModelError> {
        self.model(w, set, family)?;
        let built = &self.built[&(w.name(), set, family)];
        let art =
            ModelArtifact::from_built(built, set, Metric::Cycles, self.scale.name(), SESSION_SEED);
        let id = art.id();
        if let Some(reg) = &self.registry {
            if let Err(e) = reg.store(&art) {
                eprintln!("warning: could not persist {}: {}", id, e);
            }
        }
        Ok((id, built.test_mape))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emod_models::Regressor;
    use std::path::PathBuf;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("emod-session-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn session_caches_models() {
        let mut s = Session::new(Scale::Quick);
        let w = Workload::by_name("bzip2").unwrap();
        let a = s
            .model(w, InputSet::Train, ModelFamily::Rbf)
            .unwrap()
            .test_mape;
        let b = s
            .model(w, InputSet::Train, ModelFamily::Rbf)
            .unwrap()
            .test_mape;
        assert_eq!(a, b);
    }

    #[test]
    fn registry_backed_session_reuses_persisted_models() {
        let root = temp_root("reuse");
        let w = Workload::by_name("181.mcf").unwrap();
        let reg = Arc::new(ModelRegistry::open(&root).unwrap());
        let mut first = Session::with_registry(Scale::Quick, reg);
        let built = first
            .model(w, InputSet::Train, ModelFamily::Linear)
            .unwrap();
        let probe: Vec<Vec<f64>> = built.test.points().to_vec();
        let expected: Vec<u64> = probe
            .iter()
            .map(|p| built.model.predict(p).to_bits())
            .collect();
        let id = first.artifact_id(w, InputSet::Train, ModelFamily::Linear);
        drop(first);

        // A fresh session over the same directory must load, not retrain —
        // observable because predictions are bit-identical and no builder
        // cache exists yet.
        let reg2 = Arc::new(ModelRegistry::open(&root).unwrap());
        assert!(reg2.contains(&id));
        let mut second = Session::with_registry(Scale::Quick, reg2);
        let reloaded = second
            .model(w, InputSet::Train, ModelFamily::Linear)
            .unwrap();
        let got: Vec<u64> = probe
            .iter()
            .map(|p| reloaded.model.predict(p).to_bits())
            .collect();
        assert_eq!(expected, got);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn publish_model_stores_even_cached_models() {
        let root = temp_root("publish");
        let w = Workload::by_name("bzip2").unwrap();
        let mut s = Session::new(Scale::Quick);
        // Build first with no registry attached, then publish.
        s.model(w, InputSet::Train, ModelFamily::Linear).unwrap();
        assert!(s.registry().is_none());
        std::env::set_var(REGISTRY_ENV, &root);
        let attached = s.ensure_registry().is_ok();
        std::env::remove_var(REGISTRY_ENV);
        assert!(attached);
        let (id, mape) = s
            .publish_model(w, InputSet::Train, ModelFamily::Linear)
            .unwrap();
        assert!(mape.is_finite());
        assert!(s.registry().unwrap().contains(&id));
        let _ = std::fs::remove_dir_all(root);
    }
}
