//! A reproduction session: caches built models and measurers so that
//! experiments sharing infrastructure (Tables 3, 4, 6; Figures 5–7) reuse
//! measurements within one `repro` invocation.

use crate::Scale;
use emod_core::builder::{BuiltModel, ModelBuilder};
use emod_core::model::ModelFamily;
use emod_workloads::{InputSet, Workload};
use std::collections::HashMap;

/// Shared state across experiments.
pub struct Session {
    scale: Scale,
    builders: HashMap<(&'static str, InputSet), ModelBuilder>,
    built: HashMap<(&'static str, InputSet, ModelFamily), BuiltModel>,
}

impl Session {
    /// Creates a session at the given scale.
    pub fn new(scale: Scale) -> Self {
        Session {
            scale,
            builders: HashMap::new(),
            built: HashMap::new(),
        }
    }

    /// The session's scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The model builder for a workload/input pair (created on first use;
    /// keeps the response cache).
    pub fn builder(&mut self, w: &'static Workload, set: InputSet) -> &mut ModelBuilder {
        let scale = self.scale;
        self.builders
            .entry((w.name(), set))
            .or_insert_with(|| ModelBuilder::new(w, set, scale.build_config(9001)))
    }

    /// Builds (or fetches) a model for a workload/input/family triple.
    pub fn model(
        &mut self,
        w: &'static Workload,
        set: InputSet,
        family: ModelFamily,
    ) -> &BuiltModel {
        if !self.built.contains_key(&(w.name(), set, family)) {
            let built = self
                .builder(w, set)
                .build(family)
                .expect("model fitting should not fail on measured designs");
            self.built.insert((w.name(), set, family), built);
        }
        &self.built[&(w.name(), set, family)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_caches_models() {
        let mut s = Session::new(Scale::Quick);
        let w = Workload::by_name("bzip2").unwrap();
        let a = s.model(w, InputSet::Train, ModelFamily::Rbf).test_mape;
        let b = s.model(w, InputSet::Train, ModelFamily::Rbf).test_mape;
        assert_eq!(a, b);
    }
}
