//! Reproduction harness: one regeneration routine per table and figure of
//! the paper's evaluation (see DESIGN.md §5 for the index).
//!
//! The `repro` binary drives these routines:
//!
//! ```text
//! cargo run --release -p emod-bench --bin repro -- table3
//! EMOD_SCALE=paper cargo run --release -p emod-bench --bin repro -- all
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod history;
pub mod scale;
pub mod session;
pub mod trace;

pub use scale::Scale;
pub use session::Session;
