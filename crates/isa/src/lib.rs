//! The target instruction set architecture for the emod stack.
//!
//! The paper compiles SPEC programs for the Alpha ISA and simulates them on
//! SimpleScalar. This crate plays the Alpha's role: a 64-bit load/store RISC
//! with 32 integer and 32 floating-point registers, fixed 4-byte instruction
//! encoding (for instruction-cache modeling) and a software `prefetch`
//! instruction (the target of `-fprefetch-loop-arrays`).
//!
//! * [`Inst`] — the instruction set, with dataflow metadata ([`Inst::defs`],
//!   [`Inst::uses`], [`Inst::kind`]) shared by the compiler's scheduler and
//!   the cycle-accurate simulator,
//! * [`Program`] — an executable image: instructions, entry point, data
//!   segment,
//! * [`Memory`] — sparse paged byte-addressable memory,
//! * [`Emulator`] — the functional core that executes programs and streams
//!   [`Retired`] instruction records to timing consumers.
//!
//! # Examples
//!
//! ```
//! use emod_isa::{AluOp, Emulator, Inst, Program, Reg};
//!
//! // return 2 + 3
//! let prog = Program::from_insts(vec![
//!     Inst::LoadImm { rd: Reg(1), imm: 2 },
//!     Inst::LoadImm { rd: Reg(2), imm: 3 },
//!     Inst::Alu { op: AluOp::Add, rd: Reg(1), rs: Reg(1), rt: Reg(2) },
//!     Inst::Halt,
//! ]);
//! let mut emu = Emulator::new(&prog);
//! let exit = emu.run(10_000)?;
//! assert_eq!(exit, 5);
//! # Ok::<(), emod_isa::EmuError>(())
//! ```

mod emu;
pub mod encode;
mod inst;
mod mem;
mod program;

pub use emu::{EmuError, Emulator, Retired};
pub use inst::{AluOp, BranchCond, FCmpOp, FReg, Inst, InstKind, Reg, RegRef};
pub use mem::Memory;
pub use program::{BuildError, Program, ProgramBuilder};

/// Size of one encoded instruction in bytes; instruction addresses are
/// `pc * INST_BYTES`.
///
/// The encoding is deliberately wide (16 bytes rather than the Alpha's 4):
/// the synthetic workloads are one-to-two orders of magnitude smaller than
/// gcc-compiled SPEC binaries, and a wide encoding restores a realistic
/// ratio of hot-code footprint to the Table 2 instruction-cache sizes
/// (8–128 KiB). See DESIGN.md's substitution notes.
pub const INST_BYTES: u64 = 16;

/// Base virtual address of the global data segment.
pub const DATA_BASE: u64 = 0x1000_0000;

/// Initial stack pointer (stack grows down).
pub const STACK_BASE: u64 = 0x7fff_f000;

/// Register index conventions used by the compiler and emulator.
pub mod abi {
    use super::Reg;

    /// Hardwired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Return-value register.
    pub const RV: Reg = Reg(1);
    /// First argument register (arguments use `a0..a5` = `r2..r7`).
    pub const A0: Reg = Reg(2);
    /// Number of integer argument registers.
    pub const ARG_COUNT: u8 = 6;
    /// Stack pointer.
    pub const SP: Reg = Reg(29);
    /// Frame pointer (freed for allocation by `-fomit-frame-pointer`).
    pub const FP: Reg = Reg(30);
    /// Return-address register (written by `call`).
    pub const RA: Reg = Reg(31);
}
