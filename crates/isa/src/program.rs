//! Executable program images and a label-resolving builder.

use crate::inst::{BranchCond, Inst, Reg};
use std::collections::HashMap;
use std::fmt;

/// An executable image: instruction stream, entry point and initial data.
///
/// Instruction indices are program counters; the byte address of instruction
/// `pc` is `pc * INST_BYTES`, which is what the instruction cache sees.
#[derive(Debug, Clone, Default)]
pub struct Program {
    insts: Vec<Inst>,
    entry: u32,
    data: Vec<(u64, Vec<u8>)>,
    symbols: HashMap<String, u32>,
}

impl Program {
    /// Creates a program from a raw instruction list with entry point 0 and
    /// no initial data.
    pub fn from_insts(insts: Vec<Inst>) -> Self {
        Program {
            insts,
            entry: 0,
            data: Vec::new(),
            symbols: HashMap::new(),
        }
    }

    /// The instruction stream.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// The instruction at `pc`, if in range.
    pub fn fetch(&self, pc: u32) -> Option<Inst> {
        self.insts.get(pc as usize).copied()
    }

    /// Number of instructions (static code size, the quantity inlining and
    /// unrolling heuristics bound).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Entry program counter.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Sets the entry program counter.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is out of range.
    pub fn set_entry(&mut self, entry: u32) {
        assert!((entry as usize) < self.insts.len(), "entry out of range");
        self.entry = entry;
    }

    /// Initial data segments as `(base address, bytes)` pairs.
    pub fn data_segments(&self) -> &[(u64, Vec<u8>)] {
        &self.data
    }

    /// Adds an initial data segment.
    pub fn add_data(&mut self, base: u64, bytes: Vec<u8>) {
        self.data.push((base, bytes));
    }

    /// Looks up a named code symbol (function entry).
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// All symbols, for diagnostics.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u32)> {
        self.symbols.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Registers a named code symbol.
    pub fn add_symbol(&mut self, name: impl Into<String>, pc: u32) {
        self.symbols.insert(name.into(), pc);
    }

    /// Validates that every static control-flow target is in range.
    ///
    /// # Errors
    ///
    /// Returns the offending `(pc, target)` pair on failure.
    pub fn validate(&self) -> Result<(), (u32, u32)> {
        for (pc, inst) in self.insts.iter().enumerate() {
            if let Some(t) = inst.static_target() {
                if t as usize >= self.insts.len() {
                    return Err((pc as u32, t));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; entry @{}", self.entry)?;
        for (pc, inst) in self.insts.iter().enumerate() {
            writeln!(f, "{:>6}: {}", pc, inst)?;
        }
        Ok(())
    }
}

/// Errors from [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A control-flow instruction referenced a label never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UndefinedLabel(l) => write!(f, "undefined label `{}`", l),
            BuildError::DuplicateLabel(l) => write!(f, "duplicate label `{}`", l),
        }
    }
}

impl std::error::Error for BuildError {}

/// Incremental assembler with symbolic labels.
///
/// # Examples
///
/// ```
/// use emod_isa::{abi, Inst, ProgramBuilder, Reg};
/// use emod_isa::Emulator;
///
/// // Sum 1..=5 with a loop.
/// let mut b = ProgramBuilder::new();
/// b.push(Inst::LoadImm { rd: Reg(1), imm: 0 });  // acc
/// b.push(Inst::LoadImm { rd: Reg(2), imm: 1 });  // i
/// b.push(Inst::LoadImm { rd: Reg(3), imm: 6 });  // bound
/// b.label("loop");
/// b.push(Inst::Alu { op: emod_isa::Inst::add_op(), rd: Reg(1), rs: Reg(1), rt: Reg(2) });
/// b.push(Inst::AluImm { op: emod_isa::Inst::add_op(), rd: Reg(2), rs: Reg(2), imm: 1 });
/// b.branch_to(emod_isa::Inst::blt_cond(), Reg(2), Reg(3), "loop");
/// b.push(Inst::Halt);
/// let prog = b.build()?;
/// assert_eq!(Emulator::new(&prog).run(1000).unwrap(), 15);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    labels: HashMap<String, u32>,
    fixups: Vec<(usize, String)>,
    data: Vec<(u64, Vec<u8>)>,
    symbols: Vec<(String, usize)>,
    entry_label: Option<String>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Current instruction index (the pc the next pushed instruction gets).
    pub fn here(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Appends an instruction with already-resolved targets.
    pub fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    /// Defines `label` at the current position.
    pub fn label(&mut self, label: impl Into<String>) {
        let label = label.into();
        let here = self.here();
        // First definition wins; redefinitions are ignored.
        self.labels.entry(label.clone()).or_insert(here);
        self.symbols.push((label, self.insts.len()));
    }

    /// Appends a conditional branch to `label`.
    pub fn branch_to(&mut self, cond: BranchCond, rs: Reg, rt: Reg, label: impl Into<String>) {
        self.fixups.push((self.insts.len(), label.into()));
        self.insts.push(Inst::Branch {
            cond,
            rs,
            rt,
            target: u32::MAX,
        });
    }

    /// Appends an unconditional jump to `label`.
    pub fn jump_to(&mut self, label: impl Into<String>) {
        self.fixups.push((self.insts.len(), label.into()));
        self.insts.push(Inst::Jump { target: u32::MAX });
    }

    /// Appends a call to `label`.
    pub fn call_to(&mut self, label: impl Into<String>) {
        self.fixups.push((self.insts.len(), label.into()));
        self.insts.push(Inst::Call { target: u32::MAX });
    }

    /// Adds an initial data segment.
    pub fn data(&mut self, base: u64, bytes: Vec<u8>) {
        self.data.push((base, bytes));
    }

    /// Selects the entry label (defaults to pc 0).
    pub fn entry(&mut self, label: impl Into<String>) {
        self.entry_label = Some(label.into());
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UndefinedLabel`] if a referenced or entry label
    /// is missing.
    pub fn build(self) -> Result<Program, BuildError> {
        let mut insts = self.insts;
        for (idx, label) in &self.fixups {
            let target = *self
                .labels
                .get(label)
                .ok_or_else(|| BuildError::UndefinedLabel(label.clone()))?;
            insts[*idx] = insts[*idx].with_target(target);
        }
        let entry = match &self.entry_label {
            Some(l) => *self
                .labels
                .get(l)
                .ok_or_else(|| BuildError::UndefinedLabel(l.clone()))?,
            None => 0,
        };
        let mut symbols = HashMap::new();
        for (name, pc) in self.symbols {
            symbols.insert(name, pc as u32);
        }
        Ok(Program {
            insts,
            entry,
            data: self.data,
            symbols,
        })
    }
}

impl Inst {
    /// Convenience: the `Add` ALU opcode (keeps doc examples dependency-free).
    pub fn add_op() -> crate::inst::AluOp {
        crate::inst::AluOp::Add
    }

    /// Convenience: the signed less-than branch condition.
    pub fn blt_cond() -> BranchCond {
        BranchCond::Lt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::AluOp;

    #[test]
    fn builder_resolves_forward_and_backward_labels() {
        let mut b = ProgramBuilder::new();
        b.jump_to("fwd"); // forward reference
        b.label("back");
        b.push(Inst::Nop);
        b.label("fwd");
        b.branch_to(BranchCond::Eq, Reg(0), Reg(0), "back"); // backward
        b.push(Inst::Halt);
        let p = b.build().unwrap();
        assert_eq!(p.fetch(0).unwrap().static_target(), Some(2));
        assert_eq!(p.fetch(2).unwrap().static_target(), Some(1));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn undefined_label_errors() {
        let mut b = ProgramBuilder::new();
        b.jump_to("nowhere");
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn entry_label_selects_start() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Nop);
        b.label("main");
        b.push(Inst::Halt);
        b.entry("main");
        let p = b.build().unwrap();
        assert_eq!(p.entry(), 1);
        assert_eq!(p.symbol("main"), Some(1));
    }

    #[test]
    fn validate_catches_out_of_range_target() {
        let p = Program::from_insts(vec![Inst::Jump { target: 99 }]);
        assert_eq!(p.validate(), Err((0, 99)));
    }

    #[test]
    fn data_segments_preserved() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Halt);
        b.data(0x1000_0000, vec![1, 2, 3]);
        let p = b.build().unwrap();
        assert_eq!(p.data_segments(), &[(0x1000_0000u64, vec![1u8, 2, 3])]);
    }

    #[test]
    fn display_lists_instructions() {
        let p = Program::from_insts(vec![
            Inst::LoadImm { rd: Reg(1), imm: 7 },
            Inst::Alu {
                op: AluOp::Add,
                rd: Reg(1),
                rs: Reg(1),
                rt: Reg(1),
            },
            Inst::Halt,
        ]);
        let s = p.to_string();
        assert!(s.contains("li r1, 7"));
        assert!(s.contains("halt"));
    }
}
