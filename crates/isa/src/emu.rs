//! Functional emulator: architectural execution and retired-instruction
//! records for timing consumers.

use crate::inst::{AluOp, BranchCond, FCmpOp, Inst};
use crate::{abi, Memory, Program, INST_BYTES, STACK_BASE};
use std::error::Error;
use std::fmt;

/// A retired (architecturally executed) instruction record.
///
/// This is the interface between functional and timing simulation: the
/// out-of-order core consumes the exact dynamic instruction stream,
/// annotated with effective addresses and branch outcomes, SimpleScalar
/// style.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Retired {
    /// Program counter of the instruction (instruction index).
    pub pc: u32,
    /// The instruction itself.
    pub inst: Inst,
    /// Effective byte address for memory operations.
    pub mem_addr: Option<u64>,
    /// Next program counter actually taken.
    pub next_pc: u32,
    /// For control instructions: whether the control transfer was taken
    /// (conditional branches may fall through).
    pub taken: bool,
}

impl Retired {
    /// Byte address of the instruction itself (for icache modeling).
    pub fn fetch_addr(&self) -> u64 {
        self.pc as u64 * INST_BYTES
    }
}

/// Errors raised by architectural execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// Program counter left the instruction stream.
    PcOutOfRange(u32),
    /// Signed division or remainder by zero.
    DivideByZero(u32),
    /// The instruction budget ran out before `halt`.
    OutOfFuel,
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::PcOutOfRange(pc) => write!(f, "pc {} out of range", pc),
            EmuError::DivideByZero(pc) => write!(f, "division by zero at pc {}", pc),
            EmuError::OutOfFuel => write!(f, "instruction budget exhausted before halt"),
        }
    }
}

impl Error for EmuError {}

/// The functional core: executes a [`Program`] instruction by instruction.
///
/// # Examples
///
/// ```
/// use emod_isa::{Emulator, Inst, Program, Reg};
///
/// let prog = Program::from_insts(vec![
///     Inst::LoadImm { rd: Reg(1), imm: 41 },
///     Inst::AluImm { op: emod_isa::Inst::add_op(), rd: Reg(1), rs: Reg(1), imm: 1 },
///     Inst::Halt,
/// ]);
/// let mut emu = Emulator::new(&prog);
/// assert_eq!(emu.run(100)?, 42);
/// # Ok::<(), emod_isa::EmuError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Emulator {
    program: Program,
    regs: [i64; 32],
    fregs: [f64; 32],
    pc: u32,
    mem: Memory,
    halted: bool,
    retired_count: u64,
}

impl Emulator {
    /// Creates an emulator with the program loaded: data segments copied to
    /// memory, stack pointer initialized, pc at the entry point.
    pub fn new(program: &Program) -> Self {
        let mut mem = Memory::new();
        for (base, bytes) in program.data_segments() {
            mem.write_bytes(*base, bytes);
        }
        let mut regs = [0i64; 32];
        regs[abi::SP.0 as usize] = STACK_BASE as i64;
        regs[abi::FP.0 as usize] = STACK_BASE as i64;
        // A sentinel return address: returning from the entry function jumps
        // to a halt-like out-of-range pc; programs are expected to halt
        // explicitly instead.
        regs[abi::RA.0 as usize] = program.len() as i64;
        Emulator {
            pc: program.entry(),
            program: program.clone(),
            regs,
            fregs: [0.0; 32],
            mem,
            halted: false,
            retired_count: 0,
        }
    }

    /// Whether the program has executed `halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions retired so far.
    pub fn retired_count(&self) -> u64 {
        self.retired_count
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Reads an integer register.
    pub fn reg(&self, r: crate::Reg) -> i64 {
        self.regs[r.0 as usize]
    }

    /// Reads a floating-point register.
    pub fn freg(&self, f: crate::FReg) -> f64 {
        self.fregs[f.0 as usize]
    }

    /// The exit value (ABI return register), meaningful once halted.
    pub fn exit_value(&self) -> i64 {
        self.regs[abi::RV.0 as usize]
    }

    /// Borrows data memory (e.g. to inspect results in tests).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutably borrows data memory (e.g. to patch inputs).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Executes one instruction, returning its retirement record, or `None`
    /// if the program has already halted.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::PcOutOfRange`] or [`EmuError::DivideByZero`] on
    /// architectural faults.
    pub fn step(&mut self) -> Result<Option<Retired>, EmuError> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        let inst = self.program.fetch(pc).ok_or(EmuError::PcOutOfRange(pc))?;
        let mut mem_addr = None;
        let mut next_pc = pc + 1;
        let mut taken = false;

        macro_rules! r {
            ($r:expr) => {
                self.regs[$r.0 as usize]
            };
        }
        macro_rules! fr {
            ($r:expr) => {
                self.fregs[$r.0 as usize]
            };
        }
        macro_rules! setr {
            ($r:expr, $v:expr) => {
                if $r.0 != 0 {
                    self.regs[$r.0 as usize] = $v;
                }
            };
        }

        match inst {
            Inst::Alu { op, rd, rs, rt } => {
                let v = alu(op, r!(rs), r!(rt));
                setr!(rd, v);
            }
            Inst::AluImm { op, rd, rs, imm } => {
                let v = alu(op, r!(rs), imm);
                setr!(rd, v);
            }
            Inst::LoadImm { rd, imm } => setr!(rd, imm),
            Inst::Mul { rd, rs, rt } => setr!(rd, r!(rs).wrapping_mul(r!(rt))),
            Inst::Div { rd, rs, rt } => {
                let d = r!(rt);
                if d == 0 {
                    return Err(EmuError::DivideByZero(pc));
                }
                setr!(rd, r!(rs).wrapping_div(d));
            }
            Inst::Rem { rd, rs, rt } => {
                let d = r!(rt);
                if d == 0 {
                    return Err(EmuError::DivideByZero(pc));
                }
                setr!(rd, r!(rs).wrapping_rem(d));
            }
            Inst::FAdd { fd, fs, ft } => fr!(fd) = fr!(fs) + fr!(ft),
            Inst::FSub { fd, fs, ft } => fr!(fd) = fr!(fs) - fr!(ft),
            Inst::FMul { fd, fs, ft } => fr!(fd) = fr!(fs) * fr!(ft),
            Inst::FDiv { fd, fs, ft } => fr!(fd) = fr!(fs) / fr!(ft),
            Inst::FCmp { op, rd, fs, ft } => {
                let c = match op {
                    FCmpOp::Lt => fr!(fs) < fr!(ft),
                    FCmpOp::Le => fr!(fs) <= fr!(ft),
                    FCmpOp::Eq => fr!(fs) == fr!(ft),
                };
                setr!(rd, c as i64);
            }
            Inst::CvtIf { fd, rs } => fr!(fd) = r!(rs) as f64,
            Inst::CvtFi { rd, fs } => setr!(rd, fr!(fs) as i64),
            Inst::FLoadImm { fd, imm } => fr!(fd) = imm,
            Inst::Load { rd, rs, offset } => {
                let addr = (r!(rs) as u64).wrapping_add(offset as u64);
                mem_addr = Some(addr);
                let v = self.mem.read_i64(addr);
                setr!(rd, v);
            }
            Inst::Store { rt, rs, offset } => {
                let addr = (r!(rs) as u64).wrapping_add(offset as u64);
                mem_addr = Some(addr);
                self.mem.write_i64(addr, r!(rt));
            }
            Inst::LoadByte { rd, rs, offset } => {
                let addr = (r!(rs) as u64).wrapping_add(offset as u64);
                mem_addr = Some(addr);
                let v = self.mem.read_u8(addr) as i64;
                setr!(rd, v);
            }
            Inst::StoreByte { rt, rs, offset } => {
                let addr = (r!(rs) as u64).wrapping_add(offset as u64);
                mem_addr = Some(addr);
                self.mem.write_u8(addr, r!(rt) as u8);
            }
            Inst::FLoad { fd, rs, offset } => {
                let addr = (r!(rs) as u64).wrapping_add(offset as u64);
                mem_addr = Some(addr);
                fr!(fd) = self.mem.read_f64(addr);
            }
            Inst::FStore { ft, rs, offset } => {
                let addr = (r!(rs) as u64).wrapping_add(offset as u64);
                mem_addr = Some(addr);
                self.mem.write_f64(addr, fr!(ft));
            }
            Inst::Prefetch { rs, offset } => {
                mem_addr = Some((r!(rs) as u64).wrapping_add(offset as u64));
            }
            Inst::Branch {
                cond,
                rs,
                rt,
                target,
            } => {
                let c = match cond {
                    BranchCond::Eq => r!(rs) == r!(rt),
                    BranchCond::Ne => r!(rs) != r!(rt),
                    BranchCond::Lt => r!(rs) < r!(rt),
                    BranchCond::Ge => r!(rs) >= r!(rt),
                };
                if c {
                    next_pc = target;
                    taken = true;
                }
            }
            Inst::Jump { target } => {
                next_pc = target;
                taken = true;
            }
            Inst::Call { target } => {
                setr!(abi::RA, (pc + 1) as i64);
                next_pc = target;
                taken = true;
            }
            Inst::JumpReg { rs } => {
                next_pc = r!(rs) as u32;
                taken = true;
            }
            Inst::Nop => {}
            Inst::Halt => {
                self.halted = true;
                next_pc = pc;
            }
        }

        self.pc = next_pc;
        self.retired_count += 1;
        Ok(Some(Retired {
            pc,
            inst,
            mem_addr,
            next_pc,
            taken,
        }))
    }

    /// Runs until `halt` or `fuel` instructions, returning the exit value.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::OutOfFuel`] if the budget expires first, or any
    /// architectural fault from [`Emulator::step`].
    pub fn run(&mut self, fuel: u64) -> Result<i64, EmuError> {
        for _ in 0..fuel {
            if self.step()?.is_none() {
                return Ok(self.exit_value());
            }
            if self.halted {
                return Ok(self.exit_value());
            }
        }
        if self.halted {
            Ok(self.exit_value())
        } else {
            Err(EmuError::OutOfFuel)
        }
    }

    /// Runs to completion, invoking `consumer` for every retired instruction.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Emulator::run`].
    pub fn run_with<F: FnMut(&Retired)>(
        &mut self,
        fuel: u64,
        mut consumer: F,
    ) -> Result<i64, EmuError> {
        for _ in 0..fuel {
            match self.step()? {
                Some(retired) => {
                    consumer(&retired);
                    if self.halted {
                        return Ok(self.exit_value());
                    }
                }
                None => return Ok(self.exit_value()),
            }
        }
        Err(EmuError::OutOfFuel)
    }
}

fn alu(op: AluOp, a: i64, b: i64) -> i64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl((b & 63) as u32),
        AluOp::Shr => a.wrapping_shr((b & 63) as u32),
        AluOp::Slt => (a < b) as i64,
        AluOp::Seq => (a == b) as i64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, FCmpOp, InstKind};
    use crate::{FReg, ProgramBuilder, Reg};

    fn run_insts(insts: Vec<Inst>) -> i64 {
        let prog = Program::from_insts(insts);
        Emulator::new(&prog).run(1_000_000).unwrap()
    }

    #[test]
    fn arithmetic_and_halt() {
        let v = run_insts(vec![
            Inst::LoadImm {
                rd: Reg(1),
                imm: 10,
            },
            Inst::AluImm {
                op: AluOp::Sub,
                rd: Reg(1),
                rs: Reg(1),
                imm: 3,
            },
            Inst::Halt,
        ]);
        assert_eq!(v, 7);
    }

    #[test]
    fn all_alu_ops() {
        let cases = [
            (AluOp::Add, 7, 3, 10),
            (AluOp::Sub, 7, 3, 4),
            (AluOp::And, 6, 3, 2),
            (AluOp::Or, 6, 3, 7),
            (AluOp::Xor, 6, 3, 5),
            (AluOp::Shl, 3, 2, 12),
            (AluOp::Shr, 12, 2, 3),
            (AluOp::Slt, 2, 3, 1),
            (AluOp::Slt, 3, 2, 0),
            (AluOp::Seq, 5, 5, 1),
        ];
        for (op, a, b, want) in cases {
            let v = run_insts(vec![
                Inst::LoadImm { rd: Reg(2), imm: a },
                Inst::LoadImm { rd: Reg(3), imm: b },
                Inst::Alu {
                    op,
                    rd: Reg(1),
                    rs: Reg(2),
                    rt: Reg(3),
                },
                Inst::Halt,
            ]);
            assert_eq!(v, want, "{:?} {} {}", op, a, b);
        }
    }

    #[test]
    fn negative_shr_is_arithmetic() {
        let v = run_insts(vec![
            Inst::LoadImm {
                rd: Reg(2),
                imm: -8,
            },
            Inst::AluImm {
                op: AluOp::Shr,
                rd: Reg(1),
                rs: Reg(2),
                imm: 1,
            },
            Inst::Halt,
        ]);
        assert_eq!(v, -4);
    }

    #[test]
    fn mul_div_rem() {
        let v = run_insts(vec![
            Inst::LoadImm {
                rd: Reg(2),
                imm: 17,
            },
            Inst::LoadImm { rd: Reg(3), imm: 5 },
            Inst::Div {
                rd: Reg(4),
                rs: Reg(2),
                rt: Reg(3),
            },
            Inst::Rem {
                rd: Reg(5),
                rs: Reg(2),
                rt: Reg(3),
            },
            Inst::Mul {
                rd: Reg(1),
                rs: Reg(4),
                rt: Reg(5),
            },
            Inst::Halt,
        ]);
        assert_eq!(v, 3 * 2);
    }

    #[test]
    fn divide_by_zero_faults() {
        let prog = Program::from_insts(vec![
            Inst::Div {
                rd: Reg(1),
                rs: Reg(0),
                rt: Reg(0),
            },
            Inst::Halt,
        ]);
        assert_eq!(
            Emulator::new(&prog).run(10).unwrap_err(),
            EmuError::DivideByZero(0)
        );
    }

    #[test]
    fn zero_register_is_immutable() {
        let v = run_insts(vec![
            Inst::LoadImm {
                rd: Reg(0),
                imm: 99,
            },
            Inst::Alu {
                op: AluOp::Add,
                rd: Reg(1),
                rs: Reg(0),
                rt: Reg(0),
            },
            Inst::Halt,
        ]);
        assert_eq!(v, 0);
    }

    #[test]
    fn float_pipeline() {
        let v = {
            let prog = Program::from_insts(vec![
                Inst::FLoadImm {
                    fd: FReg(1),
                    imm: 1.5,
                },
                Inst::FLoadImm {
                    fd: FReg(2),
                    imm: 2.0,
                },
                Inst::FMul {
                    fd: FReg(3),
                    fs: FReg(1),
                    ft: FReg(2),
                },
                Inst::CvtFi {
                    rd: Reg(1),
                    fs: FReg(3),
                },
                Inst::Halt,
            ]);
            Emulator::new(&prog).run(100).unwrap()
        };
        assert_eq!(v, 3);
    }

    #[test]
    fn fcmp_results() {
        for (op, a, b, want) in [
            (FCmpOp::Lt, 1.0, 2.0, 1),
            (FCmpOp::Lt, 2.0, 1.0, 0),
            (FCmpOp::Le, 2.0, 2.0, 1),
            (FCmpOp::Eq, 2.0, 2.0, 1),
            (FCmpOp::Eq, 2.0, 2.5, 0),
        ] {
            let prog = Program::from_insts(vec![
                Inst::FLoadImm {
                    fd: FReg(1),
                    imm: a,
                },
                Inst::FLoadImm {
                    fd: FReg(2),
                    imm: b,
                },
                Inst::FCmp {
                    op,
                    rd: Reg(1),
                    fs: FReg(1),
                    ft: FReg(2),
                },
                Inst::Halt,
            ]);
            assert_eq!(Emulator::new(&prog).run(100).unwrap(), want);
        }
    }

    #[test]
    fn memory_roundtrip_and_effective_addresses() {
        let prog = Program::from_insts(vec![
            Inst::LoadImm {
                rd: Reg(2),
                imm: 0x1000_0000,
            },
            Inst::LoadImm {
                rd: Reg(3),
                imm: 77,
            },
            Inst::Store {
                rt: Reg(3),
                rs: Reg(2),
                offset: 16,
            },
            Inst::Load {
                rd: Reg(1),
                rs: Reg(2),
                offset: 16,
            },
            Inst::Halt,
        ]);
        let mut emu = Emulator::new(&prog);
        let mut addrs = Vec::new();
        let v = emu
            .run_with(100, |r| {
                if let Some(a) = r.mem_addr {
                    addrs.push(a);
                }
            })
            .unwrap();
        assert_eq!(v, 77);
        assert_eq!(addrs, vec![0x1000_0010, 0x1000_0010]);
    }

    #[test]
    fn loop_with_builder_and_branch_records() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::LoadImm { rd: Reg(1), imm: 0 });
        b.push(Inst::LoadImm { rd: Reg(2), imm: 0 });
        b.push(Inst::LoadImm {
            rd: Reg(3),
            imm: 10,
        });
        b.label("loop");
        b.push(Inst::AluImm {
            op: AluOp::Add,
            rd: Reg(1),
            rs: Reg(1),
            imm: 2,
        });
        b.push(Inst::AluImm {
            op: AluOp::Add,
            rd: Reg(2),
            rs: Reg(2),
            imm: 1,
        });
        b.branch_to(BranchCond::Lt, Reg(2), Reg(3), "loop");
        b.push(Inst::Halt);
        let prog = b.build().unwrap();
        let mut emu = Emulator::new(&prog);
        let mut takens = 0;
        let mut not_takens = 0;
        let v = emu
            .run_with(10_000, |r| {
                if matches!(r.inst.kind(), InstKind::Branch) {
                    if r.taken {
                        takens += 1;
                    } else {
                        not_takens += 1;
                    }
                }
            })
            .unwrap();
        assert_eq!(v, 20);
        assert_eq!(takens, 9);
        assert_eq!(not_takens, 1);
    }

    #[test]
    fn call_and_return() {
        let mut b = ProgramBuilder::new();
        // main: call f; halt. f: rv = 123; ret.
        b.call_to("f");
        b.push(Inst::Halt);
        b.label("f");
        b.push(Inst::LoadImm {
            rd: Reg(1),
            imm: 123,
        });
        b.push(Inst::JumpReg { rs: abi::RA });
        let prog = b.build().unwrap();
        assert_eq!(Emulator::new(&prog).run(100).unwrap(), 123);
    }

    #[test]
    fn data_segment_loaded() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::LoadImm {
            rd: Reg(2),
            imm: crate::DATA_BASE as i64,
        });
        b.push(Inst::Load {
            rd: Reg(1),
            rs: Reg(2),
            offset: 0,
        });
        b.push(Inst::Halt);
        b.data(crate::DATA_BASE, 55i64.to_le_bytes().to_vec());
        let prog = b.build().unwrap();
        assert_eq!(Emulator::new(&prog).run(100).unwrap(), 55);
    }

    #[test]
    fn out_of_fuel() {
        let mut b = ProgramBuilder::new();
        b.label("spin");
        b.jump_to("spin");
        let prog = b.build().unwrap();
        assert_eq!(
            Emulator::new(&prog).run(100).unwrap_err(),
            EmuError::OutOfFuel
        );
    }

    #[test]
    fn pc_out_of_range_faults() {
        let prog = Program::from_insts(vec![Inst::Nop]);
        let mut emu = Emulator::new(&prog);
        emu.step().unwrap();
        assert_eq!(emu.step().unwrap_err(), EmuError::PcOutOfRange(1));
    }

    #[test]
    fn prefetch_never_faults_and_reports_address() {
        let prog = Program::from_insts(vec![
            Inst::Prefetch {
                rs: Reg(0),
                offset: 0x7777_0000,
            },
            Inst::Halt,
        ]);
        let mut emu = Emulator::new(&prog);
        let r = emu.step().unwrap().unwrap();
        assert_eq!(r.mem_addr, Some(0x7777_0000));
    }
}
