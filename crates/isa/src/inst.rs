//! Instruction definitions and dataflow metadata.

use std::fmt;

/// An integer register index (`r0`–`r31`; `r0` is hardwired to zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

/// A floating-point register index (`f0`–`f31`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(pub u8);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A reference to either register file, used in dataflow metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegRef {
    /// Integer register.
    Int(Reg),
    /// Floating-point register.
    Fp(FReg),
}

/// Functional classes driving latency and functional-unit selection, shared
/// between the compiler's list scheduler and the out-of-order core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstKind {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Pipelined integer multiply.
    IntMul,
    /// Unpipelined integer divide.
    IntDiv,
    /// Floating-point add/sub/compare/convert.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Unpipelined floating-point divide.
    FpDiv,
    /// Memory load (int or fp).
    Load,
    /// Memory store (int or fp).
    Store,
    /// Software prefetch (memory port, no destination).
    Prefetch,
    /// Conditional branch.
    Branch,
    /// Unconditional jump.
    Jump,
    /// Function call (writes the return-address register).
    Call,
    /// Indirect jump through a register (function return).
    Ret,
    /// No-op and program halt.
    Other,
}

/// Binary integer ALU operations sharing one instruction form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
    /// Set-less-than (signed): `rd = (rs < rt) as i64`.
    Slt,
    /// Set-equal: `rd = (rs == rt) as i64`.
    Seq,
}

/// Floating-point compare predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FCmpOp {
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Equality.
    Eq,
}

/// Branch conditions comparing two integer registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// `rs == rt`
    Eq,
    /// `rs != rt`
    Ne,
    /// `rs < rt` (signed)
    Lt,
    /// `rs >= rt` (signed)
    Ge,
}

/// One machine instruction.
///
/// Branch and jump targets are resolved instruction indices (the program
/// counter is an instruction index; byte addresses are `pc * INST_BYTES`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Inst {
    /// `rd = rs <op> rt`
    Alu {
        op: AluOp,
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    /// `rd = rs <op> imm`
    AluImm {
        op: AluOp,
        rd: Reg,
        rs: Reg,
        imm: i64,
    },
    /// `rd = imm` (64-bit immediate load)
    LoadImm { rd: Reg, imm: i64 },
    /// `rd = rs * rt`
    Mul { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs / rt` (signed; traps on zero)
    Div { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs % rt` (signed; traps on zero)
    Rem { rd: Reg, rs: Reg, rt: Reg },
    /// `fd = fs + ft`
    FAdd { fd: FReg, fs: FReg, ft: FReg },
    /// `fd = fs - ft`
    FSub { fd: FReg, fs: FReg, ft: FReg },
    /// `fd = fs * ft`
    FMul { fd: FReg, fs: FReg, ft: FReg },
    /// `fd = fs / ft`
    FDiv { fd: FReg, fs: FReg, ft: FReg },
    /// `rd = (fs <op> ft) as i64`
    FCmp {
        op: FCmpOp,
        rd: Reg,
        fs: FReg,
        ft: FReg,
    },
    /// `fd = rs as f64` (int to float convert)
    CvtIf { fd: FReg, rs: Reg },
    /// `rd = fs as i64` (float to int convert, truncating)
    CvtFi { rd: Reg, fs: FReg },
    /// `fd = imm`
    FLoadImm { fd: FReg, imm: f64 },
    /// `rd = mem64[rs + offset]`
    Load { rd: Reg, rs: Reg, offset: i64 },
    /// `mem64[rs + offset] = rt`
    Store { rt: Reg, rs: Reg, offset: i64 },
    /// `rd = mem8[rs + offset]` (zero-extended)
    LoadByte { rd: Reg, rs: Reg, offset: i64 },
    /// `mem8[rs + offset] = rt & 0xff`
    StoreByte { rt: Reg, rs: Reg, offset: i64 },
    /// `fd = fmem64[rs + offset]`
    FLoad { fd: FReg, rs: Reg, offset: i64 },
    /// `fmem64[rs + offset] = ft`
    FStore { ft: FReg, rs: Reg, offset: i64 },
    /// Software prefetch of `mem[rs + offset]`; never faults.
    Prefetch { rs: Reg, offset: i64 },
    /// Conditional branch to instruction index `target`.
    Branch {
        cond: BranchCond,
        rs: Reg,
        rt: Reg,
        target: u32,
    },
    /// Unconditional jump to instruction index `target`.
    Jump { target: u32 },
    /// Call: `ra = pc + 1; pc = target`.
    Call { target: u32 },
    /// Indirect jump: `pc = rs` (used for returns).
    JumpReg { rs: Reg },
    /// No operation.
    Nop,
    /// Stop execution; the exit value is read from the ABI return register.
    Halt,
}

impl Inst {
    /// The functional class of the instruction.
    pub fn kind(&self) -> InstKind {
        match self {
            Inst::Alu { .. } | Inst::AluImm { .. } | Inst::LoadImm { .. } => InstKind::IntAlu,
            Inst::Mul { .. } => InstKind::IntMul,
            Inst::Div { .. } | Inst::Rem { .. } => InstKind::IntDiv,
            Inst::FAdd { .. }
            | Inst::FSub { .. }
            | Inst::FCmp { .. }
            | Inst::CvtIf { .. }
            | Inst::CvtFi { .. }
            | Inst::FLoadImm { .. } => InstKind::FpAdd,
            Inst::FMul { .. } => InstKind::FpMul,
            Inst::FDiv { .. } => InstKind::FpDiv,
            Inst::Load { .. } | Inst::LoadByte { .. } | Inst::FLoad { .. } => InstKind::Load,
            Inst::Store { .. } | Inst::StoreByte { .. } | Inst::FStore { .. } => InstKind::Store,
            Inst::Prefetch { .. } => InstKind::Prefetch,
            Inst::Branch { .. } => InstKind::Branch,
            Inst::Jump { .. } => InstKind::Jump,
            Inst::Call { .. } => InstKind::Call,
            Inst::JumpReg { .. } => InstKind::Ret,
            Inst::Nop | Inst::Halt => InstKind::Other,
        }
    }

    /// Calls `f` for every register the instruction writes — the
    /// allocation-free fast path used by the cycle simulator.
    pub fn visit_defs(&self, mut f: impl FnMut(RegRef)) {
        use RegRef::{Fp, Int};
        match *self {
            Inst::Alu { rd, .. }
            | Inst::AluImm { rd, .. }
            | Inst::LoadImm { rd, .. }
            | Inst::Mul { rd, .. }
            | Inst::Div { rd, .. }
            | Inst::Rem { rd, .. }
            | Inst::FCmp { rd, .. }
            | Inst::CvtFi { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::LoadByte { rd, .. }
                // Writes to the hardwired zero register are discarded.
                if rd != crate::abi::ZERO => {
                    f(Int(rd));
                }
            Inst::FAdd { fd, .. }
            | Inst::FSub { fd, .. }
            | Inst::FMul { fd, .. }
            | Inst::FDiv { fd, .. }
            | Inst::CvtIf { fd, .. }
            | Inst::FLoadImm { fd, .. }
            | Inst::FLoad { fd, .. } => f(Fp(fd)),
            Inst::Call { .. } => f(Int(crate::abi::RA)),
            _ => {}
        }
    }

    /// Calls `f` for every register the instruction reads.
    pub fn visit_uses(&self, mut f: impl FnMut(RegRef)) {
        use RegRef::{Fp, Int};
        match *self {
            Inst::Alu { rs, rt, .. } => {
                f(Int(rs));
                f(Int(rt));
            }
            Inst::AluImm { rs, .. } => f(Int(rs)),
            Inst::LoadImm { .. } | Inst::FLoadImm { .. } => {}
            Inst::Mul { rs, rt, .. } | Inst::Div { rs, rt, .. } | Inst::Rem { rs, rt, .. } => {
                f(Int(rs));
                f(Int(rt));
            }
            Inst::FAdd { fs, ft, .. }
            | Inst::FSub { fs, ft, .. }
            | Inst::FMul { fs, ft, .. }
            | Inst::FDiv { fs, ft, .. }
            | Inst::FCmp { fs, ft, .. } => {
                f(Fp(fs));
                f(Fp(ft));
            }
            Inst::CvtIf { rs, .. } => f(Int(rs)),
            Inst::CvtFi { fs, .. } => f(Fp(fs)),
            Inst::Load { rs, .. } | Inst::LoadByte { rs, .. } | Inst::FLoad { rs, .. } => {
                f(Int(rs))
            }
            Inst::Store { rt, rs, .. } | Inst::StoreByte { rt, rs, .. } => {
                f(Int(rt));
                f(Int(rs));
            }
            Inst::FStore { ft, rs, .. } => {
                f(Fp(ft));
                f(Int(rs));
            }
            Inst::Prefetch { rs, .. } => f(Int(rs)),
            Inst::Branch { rs, rt, .. } => {
                f(Int(rs));
                f(Int(rt));
            }
            Inst::JumpReg { rs } => f(Int(rs)),
            Inst::Jump { .. } | Inst::Call { .. } | Inst::Nop | Inst::Halt => {}
        }
    }

    /// Registers written by the instruction (collecting convenience over
    /// [`Inst::visit_defs`]).
    pub fn defs(&self) -> Vec<RegRef> {
        let mut out = Vec::with_capacity(1);
        self.visit_defs(|r| out.push(r));
        out
    }

    /// Registers read by the instruction (collecting convenience over
    /// [`Inst::visit_uses`]).
    pub fn uses(&self) -> Vec<RegRef> {
        let mut out = Vec::with_capacity(2);
        self.visit_uses(|r| out.push(r));
        out
    }

    /// Whether this instruction may redirect control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self.kind(),
            InstKind::Branch | InstKind::Jump | InstKind::Call | InstKind::Ret
        )
    }

    /// Whether this instruction touches memory (including prefetch).
    pub fn is_mem(&self) -> bool {
        matches!(
            self.kind(),
            InstKind::Load | InstKind::Store | InstKind::Prefetch
        )
    }

    /// Static branch/jump target, if the instruction has one.
    pub fn static_target(&self) -> Option<u32> {
        match *self {
            Inst::Branch { target, .. } | Inst::Jump { target } | Inst::Call { target } => {
                Some(target)
            }
            _ => None,
        }
    }

    /// Rewrites the static control-flow target (used by program linkers).
    ///
    /// # Panics
    ///
    /// Panics if the instruction has no static target.
    pub fn with_target(self, new_target: u32) -> Inst {
        match self {
            Inst::Branch { cond, rs, rt, .. } => Inst::Branch {
                cond,
                rs,
                rt,
                target: new_target,
            },
            Inst::Jump { .. } => Inst::Jump { target: new_target },
            Inst::Call { .. } => Inst::Call { target: new_target },
            other => panic!("{:?} has no static target", other),
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Alu { op, rd, rs, rt } => write!(f, "{:?} {}, {}, {}", op, rd, rs, rt),
            Inst::AluImm { op, rd, rs, imm } => write!(f, "{:?}i {}, {}, {}", op, rd, rs, imm),
            Inst::LoadImm { rd, imm } => write!(f, "li {}, {}", rd, imm),
            Inst::Mul { rd, rs, rt } => write!(f, "mul {}, {}, {}", rd, rs, rt),
            Inst::Div { rd, rs, rt } => write!(f, "div {}, {}, {}", rd, rs, rt),
            Inst::Rem { rd, rs, rt } => write!(f, "rem {}, {}, {}", rd, rs, rt),
            Inst::FAdd { fd, fs, ft } => write!(f, "fadd {}, {}, {}", fd, fs, ft),
            Inst::FSub { fd, fs, ft } => write!(f, "fsub {}, {}, {}", fd, fs, ft),
            Inst::FMul { fd, fs, ft } => write!(f, "fmul {}, {}, {}", fd, fs, ft),
            Inst::FDiv { fd, fs, ft } => write!(f, "fdiv {}, {}, {}", fd, fs, ft),
            Inst::FCmp { op, rd, fs, ft } => write!(f, "fcmp.{:?} {}, {}, {}", op, rd, fs, ft),
            Inst::CvtIf { fd, rs } => write!(f, "cvt.if {}, {}", fd, rs),
            Inst::CvtFi { rd, fs } => write!(f, "cvt.fi {}, {}", rd, fs),
            Inst::FLoadImm { fd, imm } => write!(f, "fli {}, {}", fd, imm),
            Inst::Load { rd, rs, offset } => write!(f, "ld {}, {}({})", rd, offset, rs),
            Inst::Store { rt, rs, offset } => write!(f, "st {}, {}({})", rt, offset, rs),
            Inst::LoadByte { rd, rs, offset } => write!(f, "ldb {}, {}({})", rd, offset, rs),
            Inst::StoreByte { rt, rs, offset } => write!(f, "stb {}, {}({})", rt, offset, rs),
            Inst::FLoad { fd, rs, offset } => write!(f, "fld {}, {}({})", fd, offset, rs),
            Inst::FStore { ft, rs, offset } => write!(f, "fst {}, {}({})", ft, offset, rs),
            Inst::Prefetch { rs, offset } => write!(f, "prefetch {}({})", offset, rs),
            Inst::Branch {
                cond,
                rs,
                rt,
                target,
            } => write!(f, "b{:?} {}, {}, @{}", cond, rs, rt, target),
            Inst::Jump { target } => write!(f, "j @{}", target),
            Inst::Call { target } => write!(f, "call @{}", target),
            Inst::JumpReg { rs } => write!(f, "jr {}", rs),
            Inst::Nop => write!(f, "nop"),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_classified() {
        assert_eq!(
            Inst::Alu {
                op: AluOp::Add,
                rd: Reg(1),
                rs: Reg(2),
                rt: Reg(3)
            }
            .kind(),
            InstKind::IntAlu
        );
        assert_eq!(
            Inst::FMul {
                fd: FReg(0),
                fs: FReg(1),
                ft: FReg(2)
            }
            .kind(),
            InstKind::FpMul
        );
        assert_eq!(
            Inst::Prefetch {
                rs: Reg(1),
                offset: 0
            }
            .kind(),
            InstKind::Prefetch
        );
        assert_eq!(Inst::Halt.kind(), InstKind::Other);
    }

    #[test]
    fn defs_and_uses() {
        let i = Inst::Alu {
            op: AluOp::Add,
            rd: Reg(1),
            rs: Reg(2),
            rt: Reg(3),
        };
        assert_eq!(i.defs(), vec![RegRef::Int(Reg(1))]);
        assert_eq!(i.uses(), vec![RegRef::Int(Reg(2)), RegRef::Int(Reg(3))]);
    }

    #[test]
    fn zero_register_writes_are_discarded() {
        let i = Inst::LoadImm {
            rd: Reg(0),
            imm: 42,
        };
        assert!(i.defs().is_empty());
    }

    #[test]
    fn call_defines_ra() {
        let i = Inst::Call { target: 7 };
        assert_eq!(i.defs(), vec![RegRef::Int(crate::abi::RA)]);
        assert!(i.is_control());
    }

    #[test]
    fn store_uses_both_registers() {
        let i = Inst::Store {
            rt: Reg(4),
            rs: Reg(5),
            offset: 8,
        };
        assert!(i.defs().is_empty());
        assert_eq!(i.uses().len(), 2);
        assert!(i.is_mem());
    }

    #[test]
    fn with_target_rewrites() {
        let b = Inst::Branch {
            cond: BranchCond::Lt,
            rs: Reg(1),
            rt: Reg(2),
            target: 3,
        };
        assert_eq!(b.static_target(), Some(3));
        assert_eq!(b.with_target(9).static_target(), Some(9));
    }

    #[test]
    #[should_panic(expected = "no static target")]
    fn with_target_panics_on_nop() {
        let _ = Inst::Nop.with_target(1);
    }

    #[test]
    fn display_is_nonempty() {
        for i in [
            Inst::Nop,
            Inst::Halt,
            Inst::Jump { target: 1 },
            Inst::FLoadImm {
                fd: FReg(3),
                imm: 1.5,
            },
        ] {
            assert!(!i.to_string().is_empty());
        }
    }
}
