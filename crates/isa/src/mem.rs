//! Sparse paged byte-addressable memory.

use std::collections::HashMap;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// A sparse 64-bit address space backed by 4 KiB pages allocated on demand.
///
/// Unwritten memory reads as zero, which matches zero-initialized globals and
/// bss in the programs the compiler emits.
///
/// # Examples
///
/// ```
/// use emod_isa::Memory;
///
/// let mut mem = Memory::new();
/// mem.write_u64(0x1000_0000, 0xdead_beef);
/// assert_eq!(mem.read_u64(0x1000_0000), 0xdead_beef);
/// assert_eq!(mem.read_u64(0x2000_0000), 0); // untouched memory is zero
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Number of resident pages (for footprint diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads a little-endian u64 (unaligned access allowed).
    pub fn read_u64(&self, addr: u64) -> u64 {
        let off = (addr & PAGE_MASK) as usize;
        if off <= PAGE_SIZE - 8 {
            // Fast path: the value lives in one page.
            match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(page) => u64::from_le_bytes(page[off..off + 8].try_into().expect("8 bytes")),
                None => 0,
            }
        } else {
            let mut v = 0u64;
            for i in 0..8 {
                v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
            }
            v
        }
    }

    /// Writes a little-endian u64.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        let off = (addr & PAGE_MASK) as usize;
        if off <= PAGE_SIZE - 8 {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[off..off + 8].copy_from_slice(&value.to_le_bytes());
        } else {
            for i in 0..8 {
                self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
            }
        }
    }

    /// Reads an i64.
    pub fn read_i64(&self, addr: u64) -> i64 {
        self.read_u64(addr) as i64
    }

    /// Writes an i64.
    pub fn write_i64(&mut self, addr: u64, value: i64) {
        self.write_u64(addr, value as u64);
    }

    /// Reads an f64 (bit pattern).
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an f64 (bit pattern).
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_on_fresh_read() {
        let mem = Memory::new();
        assert_eq!(mem.read_u8(12345), 0);
        assert_eq!(mem.read_u64(0xffff_ffff_0000), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn u64_roundtrip_and_endianness() {
        let mut mem = Memory::new();
        mem.write_u64(100, 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u8(100), 0x08); // little endian LSB first
        assert_eq!(mem.read_u8(107), 0x01);
        assert_eq!(mem.read_u64(100), 0x0102_0304_0506_0708);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = Memory::new();
        let addr = (1 << PAGE_SHIFT) - 4; // straddles a page boundary
        mem.write_u64(addr, u64::MAX);
        assert_eq!(mem.read_u64(addr), u64::MAX);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn signed_and_float_roundtrip() {
        let mut mem = Memory::new();
        mem.write_i64(8, -42);
        assert_eq!(mem.read_i64(8), -42);
        mem.write_f64(16, -2.5);
        assert_eq!(mem.read_f64(16), -2.5);
    }

    #[test]
    fn write_bytes_copies() {
        let mut mem = Memory::new();
        mem.write_bytes(1000, &[1, 2, 3]);
        assert_eq!(mem.read_u8(1000), 1);
        assert_eq!(mem.read_u8(1002), 3);
        assert_eq!(mem.read_u8(1003), 0);
    }
}
