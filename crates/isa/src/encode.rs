//! Binary instruction encoding.
//!
//! Every instruction occupies exactly [`crate::INST_BYTES`] = 16 bytes:
//!
//! ```text
//! byte 0      opcode
//! byte 1      rd / fd / rt (store data) register index
//! byte 2      rs / fs register index
//! byte 3      rt / ft register index
//! bytes 4..8  sub-opcode (ALU op, compare predicate, branch condition)
//! bytes 8..16 64-bit immediate / offset / target (little endian)
//! ```
//!
//! The encoding exists so programs are real byte artifacts (the instruction
//! cache simulates fetches of these bytes) and round-trips losslessly.

use crate::inst::{AluOp, BranchCond, FCmpOp, FReg, Inst, Reg};
use crate::INST_BYTES;
use std::error::Error;
use std::fmt;

/// Error from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte buffer is not a multiple of the instruction width.
    BadLength(usize),
    /// Unknown opcode byte at the given instruction index.
    BadOpcode(usize, u8),
    /// Unknown sub-opcode at the given instruction index.
    BadSubOpcode(usize, u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadLength(n) => write!(f, "buffer of {} bytes is not a multiple of 16", n),
            DecodeError::BadOpcode(i, op) => write!(f, "unknown opcode {:#04x} at inst {}", op, i),
            DecodeError::BadSubOpcode(i, s) => {
                write!(f, "unknown sub-opcode {} at inst {}", s, i)
            }
        }
    }
}

impl Error for DecodeError {}

const OP_ALU: u8 = 0x01;
const OP_ALUI: u8 = 0x02;
const OP_LI: u8 = 0x03;
const OP_MUL: u8 = 0x04;
const OP_DIV: u8 = 0x05;
const OP_REM: u8 = 0x06;
const OP_FADD: u8 = 0x10;
const OP_FSUB: u8 = 0x11;
const OP_FMUL: u8 = 0x12;
const OP_FDIV: u8 = 0x13;
const OP_FCMP: u8 = 0x14;
const OP_CVTIF: u8 = 0x15;
const OP_CVTFI: u8 = 0x16;
const OP_FLI: u8 = 0x17;
const OP_LD: u8 = 0x20;
const OP_ST: u8 = 0x21;
const OP_LDB: u8 = 0x22;
const OP_STB: u8 = 0x23;
const OP_FLD: u8 = 0x24;
const OP_FST: u8 = 0x25;
const OP_PREFETCH: u8 = 0x26;
const OP_BR: u8 = 0x30;
const OP_J: u8 = 0x31;
const OP_CALL: u8 = 0x32;
const OP_JR: u8 = 0x33;
const OP_NOP: u8 = 0x40;
const OP_HALT: u8 = 0x41;

fn alu_code(op: AluOp) -> u32 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::And => 2,
        AluOp::Or => 3,
        AluOp::Xor => 4,
        AluOp::Shl => 5,
        AluOp::Shr => 6,
        AluOp::Slt => 7,
        AluOp::Seq => 8,
    }
}

fn alu_from(code: u32) -> Option<AluOp> {
    Some(match code {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::And,
        3 => AluOp::Or,
        4 => AluOp::Xor,
        5 => AluOp::Shl,
        6 => AluOp::Shr,
        7 => AluOp::Slt,
        8 => AluOp::Seq,
        _ => return None,
    })
}

fn fcmp_code(op: FCmpOp) -> u32 {
    match op {
        FCmpOp::Lt => 0,
        FCmpOp::Le => 1,
        FCmpOp::Eq => 2,
    }
}

fn fcmp_from(code: u32) -> Option<FCmpOp> {
    Some(match code {
        0 => FCmpOp::Lt,
        1 => FCmpOp::Le,
        2 => FCmpOp::Eq,
        _ => return None,
    })
}

fn cond_code(c: BranchCond) -> u32 {
    match c {
        BranchCond::Eq => 0,
        BranchCond::Ne => 1,
        BranchCond::Lt => 2,
        BranchCond::Ge => 3,
    }
}

fn cond_from(code: u32) -> Option<BranchCond> {
    Some(match code {
        0 => BranchCond::Eq,
        1 => BranchCond::Ne,
        2 => BranchCond::Lt,
        3 => BranchCond::Ge,
        _ => return None,
    })
}

/// Encodes one instruction into its 16-byte form.
pub fn encode(inst: &Inst) -> [u8; INST_BYTES as usize] {
    let mut b = [0u8; INST_BYTES as usize];
    let put = |op: u8, r1: u8, r2: u8, r3: u8, sub: u32, imm: u64, buf: &mut [u8; 16]| {
        buf[0] = op;
        buf[1] = r1;
        buf[2] = r2;
        buf[3] = r3;
        buf[4..8].copy_from_slice(&sub.to_le_bytes());
        buf[8..16].copy_from_slice(&imm.to_le_bytes());
    };
    match *inst {
        Inst::Alu { op, rd, rs, rt } => put(OP_ALU, rd.0, rs.0, rt.0, alu_code(op), 0, &mut b),
        Inst::AluImm { op, rd, rs, imm } => {
            put(OP_ALUI, rd.0, rs.0, 0, alu_code(op), imm as u64, &mut b)
        }
        Inst::LoadImm { rd, imm } => put(OP_LI, rd.0, 0, 0, 0, imm as u64, &mut b),
        Inst::Mul { rd, rs, rt } => put(OP_MUL, rd.0, rs.0, rt.0, 0, 0, &mut b),
        Inst::Div { rd, rs, rt } => put(OP_DIV, rd.0, rs.0, rt.0, 0, 0, &mut b),
        Inst::Rem { rd, rs, rt } => put(OP_REM, rd.0, rs.0, rt.0, 0, 0, &mut b),
        Inst::FAdd { fd, fs, ft } => put(OP_FADD, fd.0, fs.0, ft.0, 0, 0, &mut b),
        Inst::FSub { fd, fs, ft } => put(OP_FSUB, fd.0, fs.0, ft.0, 0, 0, &mut b),
        Inst::FMul { fd, fs, ft } => put(OP_FMUL, fd.0, fs.0, ft.0, 0, 0, &mut b),
        Inst::FDiv { fd, fs, ft } => put(OP_FDIV, fd.0, fs.0, ft.0, 0, 0, &mut b),
        Inst::FCmp { op, rd, fs, ft } => put(OP_FCMP, rd.0, fs.0, ft.0, fcmp_code(op), 0, &mut b),
        Inst::CvtIf { fd, rs } => put(OP_CVTIF, fd.0, rs.0, 0, 0, 0, &mut b),
        Inst::CvtFi { rd, fs } => put(OP_CVTFI, rd.0, fs.0, 0, 0, 0, &mut b),
        Inst::FLoadImm { fd, imm } => put(OP_FLI, fd.0, 0, 0, 0, imm.to_bits(), &mut b),
        Inst::Load { rd, rs, offset } => put(OP_LD, rd.0, rs.0, 0, 0, offset as u64, &mut b),
        Inst::Store { rt, rs, offset } => put(OP_ST, rt.0, rs.0, 0, 0, offset as u64, &mut b),
        Inst::LoadByte { rd, rs, offset } => put(OP_LDB, rd.0, rs.0, 0, 0, offset as u64, &mut b),
        Inst::StoreByte { rt, rs, offset } => put(OP_STB, rt.0, rs.0, 0, 0, offset as u64, &mut b),
        Inst::FLoad { fd, rs, offset } => put(OP_FLD, fd.0, rs.0, 0, 0, offset as u64, &mut b),
        Inst::FStore { ft, rs, offset } => put(OP_FST, ft.0, rs.0, 0, 0, offset as u64, &mut b),
        Inst::Prefetch { rs, offset } => put(OP_PREFETCH, 0, rs.0, 0, 0, offset as u64, &mut b),
        Inst::Branch {
            cond,
            rs,
            rt,
            target,
        } => put(OP_BR, 0, rs.0, rt.0, cond_code(cond), target as u64, &mut b),
        Inst::Jump { target } => put(OP_J, 0, 0, 0, 0, target as u64, &mut b),
        Inst::Call { target } => put(OP_CALL, 0, 0, 0, 0, target as u64, &mut b),
        Inst::JumpReg { rs } => put(OP_JR, 0, rs.0, 0, 0, 0, &mut b),
        Inst::Nop => put(OP_NOP, 0, 0, 0, 0, 0, &mut b),
        Inst::Halt => put(OP_HALT, 0, 0, 0, 0, 0, &mut b),
    }
    b
}

/// Encodes a whole instruction stream.
pub fn encode_all(insts: &[Inst]) -> Vec<u8> {
    let mut out = Vec::with_capacity(insts.len() * INST_BYTES as usize);
    for i in insts {
        out.extend_from_slice(&encode(i));
    }
    out
}

/// Decodes an instruction stream from bytes.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated buffers or unknown encodings.
pub fn decode(bytes: &[u8]) -> Result<Vec<Inst>, DecodeError> {
    if !bytes.len().is_multiple_of(INST_BYTES as usize) {
        return Err(DecodeError::BadLength(bytes.len()));
    }
    let mut out = Vec::with_capacity(bytes.len() / INST_BYTES as usize);
    for (i, chunk) in bytes.chunks_exact(INST_BYTES as usize).enumerate() {
        let op = chunk[0];
        let r1 = chunk[1];
        let r2 = chunk[2];
        let r3 = chunk[3];
        let sub = u32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes"));
        let imm = u64::from_le_bytes(chunk[8..16].try_into().expect("8 bytes"));
        let bad_sub = || DecodeError::BadSubOpcode(i, sub);
        let inst = match op {
            OP_ALU => Inst::Alu {
                op: alu_from(sub).ok_or_else(bad_sub)?,
                rd: Reg(r1),
                rs: Reg(r2),
                rt: Reg(r3),
            },
            OP_ALUI => Inst::AluImm {
                op: alu_from(sub).ok_or_else(bad_sub)?,
                rd: Reg(r1),
                rs: Reg(r2),
                imm: imm as i64,
            },
            OP_LI => Inst::LoadImm {
                rd: Reg(r1),
                imm: imm as i64,
            },
            OP_MUL => Inst::Mul {
                rd: Reg(r1),
                rs: Reg(r2),
                rt: Reg(r3),
            },
            OP_DIV => Inst::Div {
                rd: Reg(r1),
                rs: Reg(r2),
                rt: Reg(r3),
            },
            OP_REM => Inst::Rem {
                rd: Reg(r1),
                rs: Reg(r2),
                rt: Reg(r3),
            },
            OP_FADD => Inst::FAdd {
                fd: FReg(r1),
                fs: FReg(r2),
                ft: FReg(r3),
            },
            OP_FSUB => Inst::FSub {
                fd: FReg(r1),
                fs: FReg(r2),
                ft: FReg(r3),
            },
            OP_FMUL => Inst::FMul {
                fd: FReg(r1),
                fs: FReg(r2),
                ft: FReg(r3),
            },
            OP_FDIV => Inst::FDiv {
                fd: FReg(r1),
                fs: FReg(r2),
                ft: FReg(r3),
            },
            OP_FCMP => Inst::FCmp {
                op: fcmp_from(sub).ok_or_else(bad_sub)?,
                rd: Reg(r1),
                fs: FReg(r2),
                ft: FReg(r3),
            },
            OP_CVTIF => Inst::CvtIf {
                fd: FReg(r1),
                rs: Reg(r2),
            },
            OP_CVTFI => Inst::CvtFi {
                rd: Reg(r1),
                fs: FReg(r2),
            },
            OP_FLI => Inst::FLoadImm {
                fd: FReg(r1),
                imm: f64::from_bits(imm),
            },
            OP_LD => Inst::Load {
                rd: Reg(r1),
                rs: Reg(r2),
                offset: imm as i64,
            },
            OP_ST => Inst::Store {
                rt: Reg(r1),
                rs: Reg(r2),
                offset: imm as i64,
            },
            OP_LDB => Inst::LoadByte {
                rd: Reg(r1),
                rs: Reg(r2),
                offset: imm as i64,
            },
            OP_STB => Inst::StoreByte {
                rt: Reg(r1),
                rs: Reg(r2),
                offset: imm as i64,
            },
            OP_FLD => Inst::FLoad {
                fd: FReg(r1),
                rs: Reg(r2),
                offset: imm as i64,
            },
            OP_FST => Inst::FStore {
                ft: FReg(r1),
                rs: Reg(r2),
                offset: imm as i64,
            },
            OP_PREFETCH => Inst::Prefetch {
                rs: Reg(r2),
                offset: imm as i64,
            },
            OP_BR => Inst::Branch {
                cond: cond_from(sub).ok_or_else(bad_sub)?,
                rs: Reg(r2),
                rt: Reg(r3),
                target: imm as u32,
            },
            OP_J => Inst::Jump { target: imm as u32 },
            OP_CALL => Inst::Call { target: imm as u32 },
            OP_JR => Inst::JumpReg { rs: Reg(r2) },
            OP_NOP => Inst::Nop,
            OP_HALT => Inst::Halt,
            other => return Err(DecodeError::BadOpcode(i, other)),
        };
        out.push(inst);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instructions() -> Vec<Inst> {
        vec![
            Inst::Alu {
                op: AluOp::Xor,
                rd: Reg(3),
                rs: Reg(4),
                rt: Reg(5),
            },
            Inst::AluImm {
                op: AluOp::Shr,
                rd: Reg(6),
                rs: Reg(7),
                imm: -12345,
            },
            Inst::LoadImm {
                rd: Reg(1),
                imm: i64::MIN,
            },
            Inst::Mul {
                rd: Reg(8),
                rs: Reg(9),
                rt: Reg(10),
            },
            Inst::Div {
                rd: Reg(8),
                rs: Reg(9),
                rt: Reg(10),
            },
            Inst::Rem {
                rd: Reg(8),
                rs: Reg(9),
                rt: Reg(10),
            },
            Inst::FAdd {
                fd: FReg(1),
                fs: FReg(2),
                ft: FReg(3),
            },
            Inst::FSub {
                fd: FReg(1),
                fs: FReg(2),
                ft: FReg(3),
            },
            Inst::FMul {
                fd: FReg(1),
                fs: FReg(2),
                ft: FReg(3),
            },
            Inst::FDiv {
                fd: FReg(1),
                fs: FReg(2),
                ft: FReg(3),
            },
            Inst::FCmp {
                op: FCmpOp::Le,
                rd: Reg(2),
                fs: FReg(4),
                ft: FReg(5),
            },
            Inst::CvtIf {
                fd: FReg(6),
                rs: Reg(7),
            },
            Inst::CvtFi {
                rd: Reg(7),
                fs: FReg(6),
            },
            Inst::FLoadImm {
                fd: FReg(9),
                imm: -0.0,
            },
            Inst::Load {
                rd: Reg(11),
                rs: Reg(12),
                offset: -8,
            },
            Inst::Store {
                rt: Reg(13),
                rs: Reg(14),
                offset: 4096,
            },
            Inst::LoadByte {
                rd: Reg(15),
                rs: Reg(16),
                offset: 3,
            },
            Inst::StoreByte {
                rt: Reg(17),
                rs: Reg(18),
                offset: 5,
            },
            Inst::FLoad {
                fd: FReg(19),
                rs: Reg(20),
                offset: 64,
            },
            Inst::FStore {
                ft: FReg(21),
                rs: Reg(22),
                offset: 72,
            },
            Inst::Prefetch {
                rs: Reg(23),
                offset: 256,
            },
            Inst::Branch {
                cond: BranchCond::Ge,
                rs: Reg(24),
                rt: Reg(25),
                target: 99,
            },
            Inst::Jump { target: 7 },
            Inst::Call { target: 42 },
            Inst::JumpReg { rs: Reg(31) },
            Inst::Nop,
            Inst::Halt,
        ]
    }

    #[test]
    fn every_instruction_roundtrips() {
        let insts = sample_instructions();
        let bytes = encode_all(&insts);
        assert_eq!(bytes.len(), insts.len() * INST_BYTES as usize);
        let decoded = decode(&bytes).unwrap();
        for (orig, dec) in insts.iter().zip(&decoded) {
            match (orig, dec) {
                // -0.0 must preserve its bit pattern.
                (Inst::FLoadImm { imm: a, .. }, Inst::FLoadImm { imm: b, .. }) => {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                _ => assert_eq!(orig, dec),
            }
        }
    }

    #[test]
    fn truncated_buffer_rejected() {
        let bytes = encode(&Inst::Nop);
        assert_eq!(
            decode(&bytes[..10]).unwrap_err(),
            DecodeError::BadLength(10)
        );
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut bytes = encode(&Inst::Nop).to_vec();
        bytes[0] = 0xff;
        assert!(matches!(
            decode(&bytes),
            Err(DecodeError::BadOpcode(0, 0xff))
        ));
    }

    #[test]
    fn unknown_sub_opcode_rejected() {
        let mut bytes = encode(&Inst::Alu {
            op: AluOp::Add,
            rd: Reg(1),
            rs: Reg(2),
            rt: Reg(3),
        })
        .to_vec();
        bytes[4] = 200;
        assert!(matches!(
            decode(&bytes),
            Err(DecodeError::BadSubOpcode(0, 200))
        ));
    }

    #[test]
    fn errors_display() {
        assert!(DecodeError::BadLength(3).to_string().contains("3"));
        assert!(DecodeError::BadOpcode(1, 0xff).to_string().contains("0xff"));
    }
}
