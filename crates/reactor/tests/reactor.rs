//! End-to-end poller exercises over real sockets (Linux only — the CI and
//! dev targets; other platforms stub the poller out).

#![cfg(target_os = "linux")]

use emod_reactor::{default_poller, Event, Interest, Poller, Waker};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

fn wait_for(
    poller: &mut impl Poller,
    events: &mut Vec<Event>,
    token: u64,
    timeout: Duration,
) -> Option<Event> {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        poller
            .poll(events, Some(Duration::from_millis(50)))
            .expect("poll");
        if let Some(ev) = events.iter().find(|e| e.token == token) {
            return Some(*ev);
        }
    }
    None
}

#[test]
fn accept_readiness_fires_on_connect() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.set_nonblocking(true).unwrap();
    let addr = listener.local_addr().unwrap();
    let mut poller = default_poller().unwrap();
    poller
        .register(listener.as_raw_fd(), 7, Interest::READ)
        .unwrap();
    let mut events = Vec::new();
    // Nothing pending yet: a short poll returns without the token.
    poller
        .poll(&mut events, Some(Duration::from_millis(10)))
        .unwrap();
    assert!(events.iter().all(|e| e.token != 7));
    let _client = TcpStream::connect(addr).unwrap();
    let ev = wait_for(&mut poller, &mut events, 7, Duration::from_secs(5))
        .expect("listener became readable");
    assert!(ev.readable);
    let (stream, _) = listener.accept().unwrap();
    drop(stream);
}

#[test]
fn data_and_hangup_are_reported() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mut client = TcpStream::connect(addr).unwrap();
    let (server, _) = listener.accept().unwrap();
    server.set_nonblocking(true).unwrap();

    let mut poller = default_poller().unwrap();
    poller
        .register(server.as_raw_fd(), 42, Interest::READ)
        .unwrap();
    let mut events = Vec::new();

    client.write_all(b"{\"cmd\":\"health\"}\n").unwrap();
    let ev =
        wait_for(&mut poller, &mut events, 42, Duration::from_secs(5)).expect("data readiness");
    assert!(ev.readable);
    let mut buf = [0u8; 64];
    let n = (&server).read(&mut buf).unwrap();
    assert_eq!(&buf[..n], b"{\"cmd\":\"health\"}\n");

    drop(client);
    let ev =
        wait_for(&mut poller, &mut events, 42, Duration::from_secs(5)).expect("hangup readiness");
    // Peer close surfaces as readable (read returns 0) and/or hangup.
    assert!(ev.readable || ev.hangup);
    assert_eq!((&server).read(&mut buf).unwrap(), 0);
}

#[test]
fn reregister_toggles_writable_interest() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let _client = TcpStream::connect(addr).unwrap();
    let (server, _) = listener.accept().unwrap();
    server.set_nonblocking(true).unwrap();

    let mut poller = default_poller().unwrap();
    poller
        .register(server.as_raw_fd(), 1, Interest::READ)
        .unwrap();
    let mut events = Vec::new();
    poller
        .poll(&mut events, Some(Duration::from_millis(20)))
        .unwrap();
    assert!(events.iter().all(|e| !e.writable));

    // An idle socket with writable interest reports writable immediately.
    poller
        .reregister(server.as_raw_fd(), 1, Interest::READ_WRITE)
        .unwrap();
    let ev =
        wait_for(&mut poller, &mut events, 1, Duration::from_secs(5)).expect("writable readiness");
    assert!(ev.writable);

    poller.deregister(server.as_raw_fd()).unwrap();
    poller
        .poll(&mut events, Some(Duration::from_millis(20)))
        .unwrap();
    assert!(events.is_empty());
}

#[test]
fn waker_interrupts_a_blocked_poll() {
    let mut poller = default_poller().unwrap();
    let waker = Waker::new().unwrap();
    poller.register(waker.fd(), 999, Interest::READ).unwrap();
    let remote = waker.clone();
    let handle = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        remote.wake();
        remote.wake(); // a burst collapses into one readable notification
    });
    let mut events = Vec::new();
    let start = Instant::now();
    let ev =
        wait_for(&mut poller, &mut events, 999, Duration::from_secs(5)).expect("waker readiness");
    assert!(ev.readable);
    assert!(start.elapsed() < Duration::from_secs(4));
    waker.drain();
    handle.join().unwrap();
    // After draining, the waker token goes quiet again.
    poller
        .poll(&mut events, Some(Duration::from_millis(20)))
        .unwrap();
    assert!(events.iter().all(|e| e.token != 999));
}
