//! Platform readiness backends. Linux gets real `epoll(7)` via raw
//! `extern "C"` declarations (no libc crate — the workspace is
//! zero-dependency); other targets get a stub that fails at construction
//! so the serving front can fall back to the threads front cleanly.

#[cfg(target_os = "linux")]
pub use linux::EpollPoller;

#[cfg(not(target_os = "linux"))]
pub use fallback::EpollPoller;

#[cfg(target_os = "linux")]
mod linux {
    use crate::poller::{Event, Interest, Poller, Token};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::{Duration, Instant};

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLPRI: u32 = 0x002;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Kernel ABI for `struct epoll_event`. x86 packs it to avoid a
    /// 32/64-bit layout split; other architectures use natural alignment.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// How many kernel events one `epoll_wait` call can deliver. Level
    /// triggering means anything beyond the batch is re-reported on the
    /// next poll, so this bounds per-wakeup work, not throughput.
    const EVENT_BATCH: usize = 256;

    /// `epoll(7)`-backed [`Poller`]. Level-triggered; one instance per
    /// event loop (it is `Send` but not meant to be shared).
    #[derive(Debug)]
    pub struct EpollPoller {
        epfd: RawFd,
        buf: Vec<u64>, // raw event storage, sized for EVENT_BATCH entries
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    impl EpollPoller {
        /// Creates a fresh epoll instance (close-on-exec).
        ///
        /// # Errors
        ///
        /// Propagates `epoll_create1` failure (fd limits).
        pub fn new() -> io::Result<EpollPoller> {
            // SAFETY: epoll_create1 takes a flags int and returns an fd or -1.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(EpollPoller {
                epfd,
                buf: vec![0u64; EVENT_BATCH * 2],
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest_bits(interest),
                data: token,
            };
            let evp = if op == EPOLL_CTL_DEL {
                std::ptr::null_mut()
            } else {
                &mut ev as *mut EpollEvent
            };
            // SAFETY: epfd and fd are live descriptors owned by the caller;
            // `ev` outlives the call (the kernel copies it synchronously).
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, evp) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
    }

    impl Poller for EpollPoller {
        fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        fn reregister(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::READ)
        }

        fn poll(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let deadline = timeout.map(|t| Instant::now() + t);
            loop {
                // Round the remaining wait *up* to whole milliseconds so a
                // sub-millisecond remainder does not busy-spin at timeout 0.
                let wait_ms: i32 = match deadline {
                    None => -1,
                    Some(d) => {
                        let left = d.saturating_duration_since(Instant::now());
                        left.as_millis().min(i32::MAX as u128) as i32
                            + i32::from(left.subsec_nanos() % 1_000_000 != 0)
                    }
                };
                let ptr = self.buf.as_mut_ptr() as *mut EpollEvent;
                // SAFETY: `buf` holds EVENT_BATCH*2 u64s = EVENT_BATCH*16
                // bytes, enough for EVENT_BATCH epoll_event entries on every
                // architecture (12 bytes packed, 16 aligned).
                let n = unsafe { epoll_wait(self.epfd, ptr, EVENT_BATCH as i32, wait_ms) };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        if deadline.is_some_and(|d| Instant::now() >= d) {
                            return Ok(0);
                        }
                        continue;
                    }
                    return Err(err);
                }
                for i in 0..n as usize {
                    // SAFETY: the kernel wrote `n` valid entries at `ptr`.
                    let ev = unsafe { std::ptr::read_unaligned(ptr.add(i)) };
                    events.push(Event {
                        token: ev.data,
                        readable: ev.events & (EPOLLIN | EPOLLPRI | EPOLLRDHUP) != 0,
                        writable: ev.events & EPOLLOUT != 0,
                        hangup: ev.events & (EPOLLERR | EPOLLHUP) != 0,
                    });
                }
                return Ok(n as usize);
            }
        }
    }

    impl Drop for EpollPoller {
        fn drop(&mut self) {
            // SAFETY: epfd came from epoll_create1 and is closed exactly once.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod fallback {
    use crate::poller::{Event, Interest, Poller, Token};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    /// Stub poller for targets without an epoll backend. Construction
    /// fails, so callers (the serving front) fall back to the threads
    /// front instead of silently not polling.
    #[derive(Debug)]
    pub struct EpollPoller {
        _private: (),
    }

    impl EpollPoller {
        /// Always fails on this target.
        ///
        /// # Errors
        ///
        /// Always returns [`io::ErrorKind::Unsupported`].
        pub fn new() -> io::Result<EpollPoller> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "emod-reactor: no readiness backend on this platform (Linux only)",
            ))
        }
    }

    impl Poller for EpollPoller {
        fn register(&mut self, _fd: RawFd, _token: Token, _interest: Interest) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        fn reregister(&mut self, _fd: RawFd, _token: Token, _interest: Interest) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        fn deregister(&mut self, _fd: RawFd) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        fn poll(
            &mut self,
            _events: &mut Vec<Event>,
            _timeout: Option<Duration>,
        ) -> io::Result<usize> {
            unreachable!("stub poller cannot be constructed")
        }
    }
}
