//! The readiness-notification abstraction the serving front builds on.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Opaque per-registration identifier, echoed back in [`Event::token`] so
/// the event loop can map readiness back to its connection table without
/// trusting raw file-descriptor values (which the OS recycles).
pub type Token = u64;

/// What readiness a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor has bytes to read (or a peer hangup).
    pub readable: bool,
    /// Wake when the descriptor can accept writes without blocking.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Read + write interest — a connection with queued response bytes.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness notification out of [`Poller::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the descriptor was registered under.
    pub token: Token,
    /// The descriptor is readable (data pending, or EOF/hangup — a read
    /// distinguishes them).
    pub readable: bool,
    /// The descriptor accepts writes without blocking.
    pub writable: bool,
    /// The peer hung up or the descriptor errored; the connection should
    /// be torn down after draining whatever a final read returns.
    pub hangup: bool,
}

/// Minimal level-triggered readiness selector.
///
/// Implementations are level-triggered: a descriptor that stays readable
/// keeps reporting readable on every poll until drained. That lets the
/// event loop process a bounded amount per wakeup (fairness across
/// connections) without losing edges.
pub trait Poller {
    /// Starts watching `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// Propagates the OS registration failure (bad fd, duplicate, limits).
    fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()>;

    /// Changes the interest set of an already-registered descriptor.
    ///
    /// # Errors
    ///
    /// Propagates the OS failure (e.g. the fd was never registered).
    fn reregister(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()>;

    /// Stops watching `fd`.
    ///
    /// # Errors
    ///
    /// Propagates the OS failure; callers tearing a connection down may
    /// ignore it (closing the fd deregisters implicitly).
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;

    /// Blocks until at least one registered descriptor is ready or the
    /// timeout elapses (`None` blocks indefinitely), appending readiness
    /// into `events` (cleared first). Returns the number of events.
    /// Spurious wakeups (zero events) are allowed; `EINTR` is retried
    /// internally against the same deadline.
    ///
    /// # Errors
    ///
    /// Propagates OS wait failures other than interruption.
    fn poll(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize>;
}
