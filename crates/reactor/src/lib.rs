//! Zero-dependency readiness reactor for the emod serving front.
//!
//! The serving story in DESIGN.md §16 needs to multiplex thousands of
//! slow, mostly-idle client connections onto a handful of worker threads.
//! This crate provides the three building blocks that port carries no
//! third-party dependency for:
//!
//! - [`Poller`]: a minimal readiness-notification trait (register file
//!   descriptors with an interest set, block until some are ready),
//!   implemented on Linux by [`EpollPoller`] over raw `epoll(7)` syscalls
//!   declared `extern "C"` — the same zero-dependency pattern the serve
//!   crate already uses for `signal(2)`.
//! - [`Waker`]: a self-pipe (a nonblocking `UnixStream` pair) that lets
//!   worker threads interrupt a blocked [`Poller::poll`] call so request
//!   completions are written out without waiting for the next timeout.
//! - [`LineBuffer`] / [`WriteBuffer`]: incremental nonblocking codecs for
//!   the newline-delimited-JSON wire protocol — bytes arrive and leave in
//!   arbitrary fragments, lines are extracted (and length-capped) as they
//!   complete, and pending responses drain as the socket accepts them.
//!
//! The event loop itself lives in `emod-serve` (`reactor_front`); this
//! crate stays protocol-agnostic below the "lines in, bytes out" level so
//! it can be unit-tested with socket pairs and reused by other fronts.

#![warn(missing_docs)]
#![forbid(unsafe_op_in_unsafe_fn)]

mod buffer;
mod poller;
mod sys;
mod waker;

pub use buffer::{LineBuffer, LineError, WriteBuffer};
pub use poller::{Event, Interest, Poller, Token};
pub use sys::EpollPoller;
pub use waker::Waker;

/// Creates the platform's default [`Poller`].
///
/// # Errors
///
/// Fails when the platform has no readiness facility this crate knows
/// (non-Linux targets) or when the kernel refuses the epoll instance.
pub fn default_poller() -> std::io::Result<EpollPoller> {
    EpollPoller::new()
}
