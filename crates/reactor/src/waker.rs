//! Cross-thread wakeup for a blocked poll: the classic self-pipe trick,
//! built on a nonblocking `UnixStream` pair so no raw-fd lifetime
//! management is needed.

use std::io::{Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;

/// Wakes a [`crate::Poller`] blocked in `poll` from another thread.
///
/// The read half is registered with the poller under a reserved token; any
/// thread holding a clone calls [`Waker::wake`], which makes the read half
/// readable and the poll return. The event loop then calls
/// [`Waker::drain`] so a burst of wakes collapses into one notification
/// instead of leaving the pipe permanently readable.
#[derive(Debug, Clone)]
pub struct Waker {
    inner: Arc<WakerInner>,
}

#[derive(Debug)]
struct WakerInner {
    read: UnixStream,
    write: UnixStream,
}

impl Waker {
    /// Creates a connected, nonblocking wake pair.
    ///
    /// # Errors
    ///
    /// Propagates socketpair or fcntl failure.
    pub fn new() -> std::io::Result<Waker> {
        let (read, write) = UnixStream::pair()?;
        read.set_nonblocking(true)?;
        write.set_nonblocking(true)?;
        Ok(Waker {
            inner: Arc::new(WakerInner { read, write }),
        })
    }

    /// The descriptor to register (readable interest) with the poller.
    pub fn fd(&self) -> RawFd {
        self.inner.read.as_raw_fd()
    }

    /// Makes the registered descriptor readable. Cheap and safe from any
    /// thread; a full pipe (`WouldBlock`) means a wake is already pending,
    /// which is exactly the desired state, so every outcome is success.
    pub fn wake(&self) {
        let _ = (&self.inner.write).write(&[1u8]);
    }

    /// Consumes all pending wake bytes. Call from the event loop each time
    /// the waker token reports readable.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while let Ok(n) = (&self.inner.read).read(&mut buf) {
            if n == 0 {
                break;
            }
        }
    }
}
