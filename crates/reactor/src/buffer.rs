//! Incremental codecs for newline-delimited protocols over nonblocking
//! sockets: bytes arrive and depart in arbitrary fragments, so both
//! directions need explicit buffering the blocking front got for free
//! from `BufReader` + `writeln!`.

use std::collections::VecDeque;
use std::io::{self, Read, Write};

/// Why [`LineBuffer::next_line`] refused to produce a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineError {
    /// A line exceeded the configured cap before its newline arrived. The
    /// protocol answer is a `request_too_large` reply followed by closing
    /// the connection — the buffer stays poisoned and yields this error
    /// again rather than resynchronizing on attacker-controlled input.
    TooLong {
        /// Bytes accumulated when the cap was crossed (≥ the cap).
        buffered: usize,
    },
}

/// Accumulates read fragments and yields complete `\n`-terminated lines,
/// enforcing a maximum line length.
#[derive(Debug)]
pub struct LineBuffer {
    buf: Vec<u8>,
    /// Scan position: bytes before this offset are known newline-free, so
    /// repeated `next_line` calls after partial reads stay O(new bytes).
    scanned: usize,
    max_line: usize,
    poisoned: bool,
}

impl LineBuffer {
    /// A buffer yielding lines of at most `max_line` bytes (terminator
    /// excluded).
    pub fn new(max_line: usize) -> LineBuffer {
        LineBuffer {
            buf: Vec::new(),
            scanned: 0,
            max_line,
            poisoned: false,
        }
    }

    /// Appends a read fragment.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Reads once from `r` into the buffer. `Ok(0)` is EOF; `WouldBlock`
    /// maps to `Ok(None)`-style `Err` for the caller to stop reading.
    ///
    /// # Errors
    ///
    /// Propagates the read error, including `WouldBlock` when the socket
    /// is drained.
    pub fn fill_from(&mut self, r: &mut impl Read) -> io::Result<usize> {
        let mut chunk = [0u8; 16 * 1024];
        let n = r.read(&mut chunk)?;
        self.extend(&chunk[..n]);
        Ok(n)
    }

    /// Extracts the next complete line, with the trailing `\n` (and any
    /// `\r`) stripped. `Ok(None)` means "no full line buffered yet".
    ///
    /// # Errors
    ///
    /// [`LineError::TooLong`] once the unterminated prefix exceeds the cap.
    pub fn next_line(&mut self) -> Result<Option<Vec<u8>>, LineError> {
        if self.poisoned {
            return Err(LineError::TooLong {
                buffered: self.buf.len(),
            });
        }
        match self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
            Some(rel) => {
                let pos = self.scanned + rel;
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                self.scanned = 0;
                line.pop(); // the \n
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                if line.len() > self.max_line {
                    self.poisoned = true;
                    return Err(LineError::TooLong {
                        buffered: line.len(),
                    });
                }
                Ok(Some(line))
            }
            None => {
                self.scanned = self.buf.len();
                if self.buf.len() > self.max_line {
                    self.poisoned = true;
                    return Err(LineError::TooLong {
                        buffered: self.buf.len(),
                    });
                }
                Ok(None)
            }
        }
    }

    /// Bytes currently buffered (diagnostics).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Queues response bytes and drains them as the nonblocking socket accepts
/// writes, preserving order.
#[derive(Debug, Default)]
pub struct WriteBuffer {
    queue: VecDeque<u8>,
}

impl WriteBuffer {
    /// An empty write queue.
    pub fn new() -> WriteBuffer {
        WriteBuffer::default()
    }

    /// Queues `bytes` for transmission.
    pub fn push(&mut self, bytes: &[u8]) {
        self.queue.extend(bytes);
    }

    /// Writes as much queued data as the socket accepts. Returns `true`
    /// when the queue fully drained; `false` means the socket filled up
    /// and the connection should (re)register writable interest.
    ///
    /// # Errors
    ///
    /// Propagates write errors other than `WouldBlock`/`Interrupted`
    /// (those map to `Ok(false)` and a retried write respectively).
    pub fn flush_to(&mut self, w: &mut impl Write) -> io::Result<bool> {
        while !self.queue.is_empty() {
            let (front, _) = self.queue.as_slices();
            match w.write(front) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.queue.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Whether response bytes are still queued.
    pub fn wants_write(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Queued byte count (diagnostics / backpressure accounting).
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_split_across_fragments() {
        let mut lb = LineBuffer::new(64);
        lb.extend(b"{\"cmd\":\"he");
        assert_eq!(lb.next_line().unwrap(), None);
        lb.extend(b"alth\"}\n{\"cmd\"");
        assert_eq!(
            lb.next_line().unwrap().as_deref(),
            Some(b"{\"cmd\":\"health\"}".as_slice())
        );
        assert_eq!(lb.next_line().unwrap(), None);
        lb.extend(b":1}\n");
        assert_eq!(
            lb.next_line().unwrap().as_deref(),
            Some(b"{\"cmd\":1}".as_slice())
        );
        assert!(lb.is_empty());
    }

    #[test]
    fn crlf_is_stripped() {
        let mut lb = LineBuffer::new(64);
        lb.extend(b"hello\r\nworld\n");
        assert_eq!(
            lb.next_line().unwrap().as_deref(),
            Some(b"hello".as_slice())
        );
        assert_eq!(
            lb.next_line().unwrap().as_deref(),
            Some(b"world".as_slice())
        );
    }

    #[test]
    fn empty_lines_are_yielded_empty() {
        let mut lb = LineBuffer::new(8);
        lb.extend(b"\n\nx\n");
        assert_eq!(lb.next_line().unwrap().as_deref(), Some(b"".as_slice()));
        assert_eq!(lb.next_line().unwrap().as_deref(), Some(b"".as_slice()));
        assert_eq!(lb.next_line().unwrap().as_deref(), Some(b"x".as_slice()));
    }

    #[test]
    fn overlong_line_poisons_the_buffer() {
        let mut lb = LineBuffer::new(4);
        lb.extend(b"abcdef");
        assert_eq!(lb.next_line(), Err(LineError::TooLong { buffered: 6 }));
        // Still poisoned even if a newline arrives later.
        lb.extend(b"\nok\n");
        assert!(matches!(lb.next_line(), Err(LineError::TooLong { .. })));
    }

    #[test]
    fn overlong_terminated_line_is_rejected() {
        let mut lb = LineBuffer::new(4);
        lb.extend(b"abcdef\n");
        assert!(matches!(lb.next_line(), Err(LineError::TooLong { .. })));
    }

    #[test]
    fn exact_cap_line_is_accepted() {
        let mut lb = LineBuffer::new(4);
        lb.extend(b"abcd\n");
        assert_eq!(lb.next_line().unwrap().as_deref(), Some(b"abcd".as_slice()));
    }

    #[test]
    fn write_buffer_drains_in_order_through_a_tiny_sink() {
        struct Dribble(Vec<u8>);
        impl Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                let n = buf.len().min(3);
                self.0.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut wb = WriteBuffer::new();
        wb.push(b"first response\n");
        wb.push(b"second\n");
        let mut sink = Dribble(Vec::new());
        assert!(wb.flush_to(&mut sink).unwrap());
        assert_eq!(sink.0, b"first response\nsecond\n");
        assert!(!wb.wants_write());
    }

    #[test]
    fn write_buffer_reports_wouldblock_as_pending() {
        struct Blocked;
        impl Write for Blocked {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut wb = WriteBuffer::new();
        wb.push(b"data\n");
        assert!(!wb.flush_to(&mut Blocked).unwrap());
        assert!(wb.wants_write());
        assert_eq!(wb.len(), 5);
    }
}
