//! Directed semantic tests: language constructs compiled and executed at
//! every preset, checked against values computed in Rust.

use emod_compiler::{compile, OptConfig};
use emod_isa::Emulator;

fn run_all_presets(src: &str) -> i64 {
    let mut result = None;
    for cfg in [OptConfig::o0(), OptConfig::o2(), OptConfig::o3()] {
        let prog = compile(src, &cfg).unwrap_or_else(|e| panic!("{}\n{}", e, src));
        let v = Emulator::new(&prog)
            .run(100_000_000)
            .unwrap_or_else(|e| panic!("{}\n{}", e, src));
        if let Some(prev) = result {
            assert_eq!(prev, v, "presets disagree\n{}", src);
        }
        result = Some(v);
    }
    result.unwrap()
}

#[test]
fn integer_comparisons_all_ops() {
    // Each comparison exercised in value position with both outcomes.
    let src = r#"
        fn main() {
            var r = 0;
            r = r * 2 + (3 < 5);
            r = r * 2 + (5 < 3);
            r = r * 2 + (3 <= 3);
            r = r * 2 + (4 <= 3);
            r = r * 2 + (5 > 3);
            r = r * 2 + (3 > 5);
            r = r * 2 + (3 >= 3);
            r = r * 2 + (2 >= 3);
            r = r * 2 + (7 == 7);
            r = r * 2 + (7 == 8);
            r = r * 2 + (7 != 8);
            r = r * 2 + (7 != 7);
            return r;
        }
    "#;
    // Expected bits: 1,0,1,0,1,0,1,0,1,0,1,0 -> 0b101010101010.
    assert_eq!(run_all_presets(src), 0b101010101010);
}

#[test]
fn float_comparisons_all_ops() {
    let src = r#"
        fn main() {
            var a = 2.5;
            var b = 3.5;
            var r = 0;
            r = r * 2 + (a < b);
            r = r * 2 + (b < a);
            r = r * 2 + (a <= a);
            r = r * 2 + (b <= a);
            r = r * 2 + (b > a);
            r = r * 2 + (a > b);
            r = r * 2 + (a >= a);
            r = r * 2 + (a >= b);
            r = r * 2 + (a == a);
            r = r * 2 + (a == b);
            r = r * 2 + (a != b);
            r = r * 2 + (a != a);
            return r;
        }
    "#;
    assert_eq!(run_all_presets(src), 0b101010101010);
}

#[test]
fn negative_division_and_remainder_truncate() {
    let src = r#"
        fn main() {
            var a = -17;
            var b = 5;
            return (a / b) * 1000 + (a % b) + 500;
        }
    "#;
    // Rust semantics: -17/5 = -3, -17%5 = -2 (truncating), matching the ISA.
    assert_eq!(run_all_presets(src), -3 * 1000 - 2 + 500);
}

#[test]
fn shifts_and_bitops() {
    let src = r#"
        fn main() {
            var x = 13;
            var r = (x << 3) ^ (x >> 1) ^ (x & 9) ^ (x | 18);
            var neg = -16;
            r = r + (neg >> 2);
            return r;
        }
    "#;
    let x: i64 = 13;
    let expect = ((x << 3) ^ (x >> 1) ^ (x & 9) ^ (x | 18)) + (-16i64 >> 2);
    assert_eq!(run_all_presets(src), expect);
}

#[test]
fn six_argument_calls() {
    let src = r#"
        fn weigh(a, b, c, d, e, f) {
            return a + b * 2 + c * 4 + d * 8 + e * 16 + f * 32;
        }
        fn main() { return weigh(1, 2, 3, 4, 5, 6); }
    "#;
    assert_eq!(run_all_presets(src), 1 + 4 + 12 + 32 + 80 + 192);
}

#[test]
fn mutual_recursion() {
    let src = r#"
        fn is_even(n) { if (n == 0) { return 1; } return is_odd(n - 1); }
        fn is_odd(n) { if (n == 0) { return 0; } return is_even(n - 1); }
        fn main() { return is_even(10) * 10 + is_odd(7); }
    "#;
    assert_eq!(run_all_presets(src), 11);
}

#[test]
fn float_int_conversions_roundtrip() {
    let src = r#"
        fn main() {
            var x = 7;
            var f = float(x) * 1.5;   // 10.5
            var t = int(f);           // truncates to 10
            var neg = int(0.0 - 2.7); // truncates toward zero: -2
            return t * 100 + neg + 50;
        }
    "#;
    assert_eq!(run_all_presets(src), 10 * 100 - 2 + 50);
}

#[test]
fn deep_expression_register_pressure() {
    // An expression tree deep enough to force temporaries to spill.
    let mut expr = String::from("1");
    for k in 2..40 {
        expr = format!("({} + {} * (g[{}] + 1))", expr, k, k % 8);
    }
    let src = format!(
        "global g[8]; fn main() {{ for (i = 0; i < 8; i = i + 1) {{ g[i] = i; }} return {} % 1000003; }}",
        expr
    );
    let v = run_all_presets(&src);
    // Compute the oracle in Rust.
    let g: Vec<i64> = (0..8).collect();
    let mut acc: i64 = 1;
    for k in 2..40i64 {
        acc = acc.wrapping_add(k.wrapping_mul(g[(k % 8) as usize] + 1));
    }
    assert_eq!(v, acc % 1000003);
}

#[test]
fn global_arrays_shared_across_functions() {
    let src = r#"
        global buf[16];
        fn fill(n) {
            for (i = 0; i < n; i = i + 1) { buf[i] = i * i; }
            return 0;
        }
        fn total(n) {
            var s = 0;
            for (i = 0; i < n; i = i + 1) { s = s + buf[i]; }
            return s;
        }
        fn main() {
            var unused = fill(16);
            return total(16);
        }
    "#;
    assert_eq!(run_all_presets(src), (0..16).map(|i| i * i).sum::<i64>());
}

#[test]
fn while_with_compound_condition() {
    let src = r#"
        fn main() {
            var i = 0;
            var s = 0;
            while ((i < 100) && (s < 50)) {
                s = s + i;
                i = i + 1;
            }
            return i * 1000 + s;
        }
    "#;
    let (mut i, mut s) = (0i64, 0i64);
    while i < 100 && s < 50 {
        s += i;
        i += 1;
    }
    assert_eq!(run_all_presets(src), i * 1000 + s);
}

#[test]
fn unary_operators() {
    let src = r#"
        fn main() {
            var a = 5;
            var b = -a;
            var c = !b;     // 0
            var d = !c;     // 1
            var e = 0.0 - 2.5;
            return b * 100 + c * 10 + d + int(e * 2.0);
        }
    "#;
    assert_eq!(run_all_presets(src), -500 + 1 - 5);
}

#[test]
fn else_if_chains() {
    let src = r#"
        fn classify(x) {
            if (x < 10) { return 1; }
            else if (x < 100) { return 2; }
            else if (x < 1000) { return 3; }
            else { return 4; }
        }
        fn main() {
            return classify(5) * 1000 + classify(50) * 100
                 + classify(500) * 10 + classify(5000);
        }
    "#;
    assert_eq!(run_all_presets(src), 1234);
}

#[test]
fn float_returning_helpers_compose() {
    let src = r#"
        fnf half(x: float) { return x * 0.5; }
        fnf square(x: float) { return x * x; }
        fn main() {
            return int(square(half(6.0)) * 100.0);
        }
    "#;
    assert_eq!(run_all_presets(src), 900);
}

#[test]
fn aggressive_heuristics_on_nested_loops() {
    // Large unroll budgets plus inlining on a triple nest.
    let src = r#"
        fn touch(x) { return x * 3 + 1; }
        fn main() {
            var s = 0;
            for (a = 0; a < 6; a = a + 1) {
                for (b = 0; b < 6; b = b + 1) {
                    for (c = 0; c < 6; c = c + 1) {
                        s = s + touch(a * 36 + b * 6 + c);
                    }
                }
            }
            return s;
        }
    "#;
    let mut cfg = OptConfig::o3();
    cfg.unroll_loops = true;
    cfg.max_unroll_times = 12;
    cfg.max_unrolled_insns = 300;
    let prog = compile(src, &cfg).unwrap();
    let v = Emulator::new(&prog).run(10_000_000).unwrap();
    let expect: i64 = (0..216).map(|x| x * 3 + 1).sum();
    assert_eq!(v, expect);
    assert_eq!(run_all_presets(src), expect);
}
