//! The compiler's most important invariant: every setting of the 14
//! Table 1 flags/heuristics compiles programs to the *same results* as -O0.
//!
//! Random, guaranteed-terminating Tinylang programs are generated from a
//! seed and executed at -O0 and at a battery of random optimization
//! configurations; the exit values must agree.

use emod_compiler::{compile, OptConfig};
use emod_isa::Emulator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random but always-terminating Tinylang program.
///
/// Control flow is restricted to canonical counted `for` loops (constant
/// bounds, unit step) and `if/else`; divisions are by nonzero constants; all
/// arithmetic wraps, matching the ISA semantics.
struct Gen {
    rng: StdRng,
    src: String,
    /// Variables guaranteed initialized at every later program point
    /// (declared unconditionally at the top level of `main`).
    vars: Vec<String>,
    /// The subset of `vars` that statements may reassign (never loop IVs).
    mutable_vars: Vec<String>,
    globals: Vec<(String, usize)>,
    funcs: Vec<(String, usize)>, // (name, arity)
    counter: usize,
    depth: usize,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen {
            rng: StdRng::seed_from_u64(seed),
            src: String::new(),
            vars: Vec::new(),
            mutable_vars: Vec::new(),
            globals: Vec::new(),
            funcs: Vec::new(),
            counter: 0,
            depth: 0,
        }
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{}{}", prefix, self.counter)
    }

    fn expr(&mut self, depth: usize) -> String {
        if depth == 0 || self.rng.gen_bool(0.3) {
            // Leaf.
            return match self.rng.gen_range(0..4) {
                0 => format!("{}", self.rng.gen_range(-50..50)),
                1 if !self.vars.is_empty() => {
                    self.vars[self.rng.gen_range(0..self.vars.len())].clone()
                }
                2 if !self.globals.is_empty() => {
                    let (g, len) = self.globals[self.rng.gen_range(0..self.globals.len())].clone();
                    let idx = self.rng.gen_range(0..len);
                    format!("{}[{}]", g, idx)
                }
                _ => format!("{}", self.rng.gen_range(0..9)),
            };
        }
        match self.rng.gen_range(0..9) {
            0 => format!("({} + {})", self.expr(depth - 1), self.expr(depth - 1)),
            1 => format!("({} - {})", self.expr(depth - 1), self.expr(depth - 1)),
            2 => format!("({} * {})", self.expr(depth - 1), self.expr(depth - 1)),
            3 => format!(
                "({} / {})",
                self.expr(depth - 1),
                self.rng.gen_range(1..9) // nonzero constant divisor
            ),
            4 => format!("({} % {})", self.expr(depth - 1), self.rng.gen_range(1..9)),
            5 => format!("({} & {})", self.expr(depth - 1), self.expr(depth - 1)),
            6 => format!("({} ^ {})", self.expr(depth - 1), self.expr(depth - 1)),
            7 => format!("({} < {})", self.expr(depth - 1), self.expr(depth - 1)),
            _ if !self.funcs.is_empty() && self.depth == 0 => {
                let (name, arity) = self.funcs[self.rng.gen_range(0..self.funcs.len())].clone();
                let args: Vec<String> = (0..arity).map(|_| self.expr(1)).collect();
                format!("{}({})", name, args.join(", "))
            }
            _ => format!("({} + 1)", self.expr(depth - 1)),
        }
    }

    fn stmt(&mut self, indent: usize) {
        let pad = "    ".repeat(indent);
        match self.rng.gen_range(0..10) {
            // Declarations only at the top level, so every registered
            // variable is guaranteed initialized.
            0..=2 if indent == 1 => {
                let name = self.fresh("v");
                let e = self.expr(2);
                self.src
                    .push_str(&format!("{}var {} = {};\n", pad, name, e));
                self.vars.push(name.clone());
                self.mutable_vars.push(name);
            }
            3..=4 if !self.mutable_vars.is_empty() => {
                let v = self.mutable_vars[self.rng.gen_range(0..self.mutable_vars.len())].clone();
                let e = self.expr(2);
                self.src.push_str(&format!("{}{} = {};\n", pad, v, e));
            }
            5 if !self.globals.is_empty() => {
                let (g, len) = self.globals[self.rng.gen_range(0..self.globals.len())].clone();
                let idx = self.rng.gen_range(0..len);
                let e = self.expr(2);
                self.src
                    .push_str(&format!("{}{}[{}] = {};\n", pad, g, idx, e));
            }
            6 if indent < 3 => {
                let c = self.expr(1);
                self.src.push_str(&format!("{}if ({}) {{\n", pad, c));
                let n = self.rng.gen_range(1..3);
                for _ in 0..n {
                    self.stmt(indent + 1);
                }
                if self.rng.gen_bool(0.5) {
                    self.src.push_str(&format!("{}}} else {{\n", pad));
                    self.stmt(indent + 1);
                }
                self.src.push_str(&format!("{}}}\n", pad));
            }
            7..=8 if indent < 3 => {
                // Canonical counted loop over a fresh index variable. The IV
                // is readable afterwards only when the loop itself runs
                // unconditionally (top level), and is never reassigned.
                let iv = self.fresh("i");
                let bound = self.rng.gen_range(2..24);
                self.src.push_str(&format!(
                    "{}for ({} = 0; {} < {}; {} = {} + 1) {{\n",
                    pad, iv, iv, bound, iv, iv
                ));
                let n = self.rng.gen_range(1..3);
                for _ in 0..n {
                    self.stmt(indent + 1);
                }
                if !self.globals.is_empty() && self.rng.gen_bool(0.7) {
                    let (g, len) = self.globals[self.rng.gen_range(0..self.globals.len())].clone();
                    self.src.push_str(&format!(
                        "{}    {}[{} % {}] = {}[{} % {}] + {};\n",
                        pad, g, iv, len, g, iv, len, iv
                    ));
                }
                self.src.push_str(&format!("{}}}\n", pad));
                if indent == 1 {
                    self.vars.push(iv);
                }
            }
            _ if !self.mutable_vars.is_empty() => {
                let v = self.mutable_vars[self.rng.gen_range(0..self.mutable_vars.len())].clone();
                let e = self.expr(1);
                self.src
                    .push_str(&format!("{}{} = {} + {};\n", pad, v, v, e));
            }
            _ => {
                let name = self.fresh("p");
                self.src.push_str(&format!("{}var {} = 1;\n", pad, name));
                if indent == 1 {
                    self.vars.push(name.clone());
                    self.mutable_vars.push(name);
                }
            }
        }
    }

    fn program(mut self) -> String {
        // Globals.
        for k in 0..self.rng.gen_range(1..4) {
            let len = self.rng.gen_range(4..64);
            self.src.push_str(&format!("global g{}[{}];\n", k, len));
            self.globals.push((format!("g{}", k), len));
        }
        // Helper functions (leaf, small, arithmetic-only).
        for k in 0..self.rng.gen_range(0..3) {
            let arity = self.rng.gen_range(1..3);
            let params: Vec<String> = (0..arity).map(|i| format!("p{}", i)).collect();
            self.depth = 1;
            let saved_vars = std::mem::replace(&mut self.vars, params.clone());
            let body = self.expr(2);
            self.vars = saved_vars;
            self.depth = 0;
            self.src.push_str(&format!(
                "fn h{}({}) {{ return {}; }}\n",
                k,
                params.join(", "),
                body
            ));
            self.funcs.push((format!("h{}", k), arity));
        }
        // Main.
        self.src.push_str("fn main() {\nvar acc = 7;\n");
        self.vars.push("acc".into());
        self.mutable_vars.push("acc".into());
        let stmts = self.rng.gen_range(4..12);
        for _ in 0..stmts {
            self.stmt(1);
        }
        // Fold everything observable into the exit value.
        self.src.push_str("    var sum = acc;\n");
        let var_list: Vec<String> = self.vars.clone();
        for v in var_list {
            self.src.push_str(&format!("    sum = sum * 31 + {};\n", v));
        }
        let globals = self.globals.clone();
        for (g, len) in globals {
            self.src.push_str(&format!(
                "    for (z = 0; z < {}; z = z + 1) {{ sum = sum * 3 + {}[z]; }}\n",
                len, g
            ));
        }
        self.src.push_str("    return sum;\n}\n");
        self.src
    }
}

fn random_config(rng: &mut StdRng) -> OptConfig {
    let mut cfg = OptConfig::o0();
    cfg.inline_functions = rng.gen_bool(0.5);
    cfg.unroll_loops = rng.gen_bool(0.5);
    cfg.schedule_insns2 = rng.gen_bool(0.5);
    cfg.loop_optimize = rng.gen_bool(0.5);
    cfg.gcse = rng.gen_bool(0.5);
    cfg.strength_reduce = rng.gen_bool(0.5);
    cfg.omit_frame_pointer = rng.gen_bool(0.5);
    cfg.reorder_blocks = rng.gen_bool(0.5);
    cfg.prefetch_loop_arrays = rng.gen_bool(0.5);
    cfg.max_inline_insns_auto = rng.gen_range(50..=150);
    cfg.inline_unit_growth = rng.gen_range(25..=75);
    cfg.inline_call_cost = rng.gen_range(12..=20);
    cfg.max_unroll_times = rng.gen_range(4..=12);
    cfg.max_unrolled_insns = rng.gen_range(100..=300);
    cfg
}

fn run_with(src: &str, cfg: &OptConfig) -> i64 {
    let prog = compile(src, cfg).unwrap_or_else(|e| panic!("compile failed: {}\n{}", e, src));
    Emulator::new(&prog)
        .run(200_000_000)
        .unwrap_or_else(|e| panic!("execution failed: {}\n{}", e, src))
}

#[test]
fn random_programs_agree_across_flag_settings() {
    for seed in 0..40u64 {
        let src = Gen::new(seed).program();
        let baseline = run_with(&src, &OptConfig::o0());
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(977) + 5);
        for trial in 0..6 {
            let cfg = random_config(&mut rng);
            let got = run_with(&src, &cfg);
            assert_eq!(
                got, baseline,
                "seed {} trial {} diverged with {:?}\n{}",
                seed, trial, cfg, src
            );
        }
        // The named presets must agree as well.
        for cfg in [OptConfig::o2(), OptConfig::o3()] {
            assert_eq!(
                run_with(&src, &cfg),
                baseline,
                "preset diverged seed {}",
                seed
            );
        }
    }
}

#[test]
fn heuristic_extremes_agree() {
    // Pin the flags on and sweep each heuristic to its extremes.
    let src = Gen::new(123).program();
    let baseline = run_with(&src, &OptConfig::o0());
    for (a, b, c, d, e) in [
        (50, 25, 12, 4, 100),
        (150, 75, 20, 12, 300),
        (50, 75, 12, 12, 100),
        (150, 25, 20, 4, 300),
    ] {
        let mut cfg = OptConfig::o3();
        cfg.unroll_loops = true;
        cfg.max_inline_insns_auto = a;
        cfg.inline_unit_growth = b;
        cfg.inline_call_cost = c;
        cfg.max_unroll_times = d;
        cfg.max_unrolled_insns = e;
        assert_eq!(run_with(&src, &cfg), baseline);
    }
}
