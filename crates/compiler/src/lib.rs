//! The Tinylang optimizing compiler.
//!
//! This crate plays the role of gcc 4.0.1 in the paper's experimental setup:
//! a real optimizing compiler whose behaviour is controlled by the 14
//! optimization flags and heuristics of the paper's Table 1 (see
//! [`OptConfig`]). The pipeline is:
//!
//! ```text
//! Tinylang source ── front ──► IR (CFG of three-address blocks)
//!        │                        │ passes (Table 1 flags):
//!        │                        │  -finline-functions (+3 heuristics)
//!        │                        │  -fgcse (+ const/copy propagation)
//!        │                        │  -floop-optimize (LICM)
//!        │                        │  -fstrength-reduce
//!        │                        │  -funroll-loops (+2 heuristics)
//!        │                        │  -fprefetch-loop-arrays
//!        │                        ▼
//!        └──────────── codegen: linear-scan regalloc,
//!                      -fomit-frame-pointer, -freorder-blocks,
//!                      -fschedule-insns2 ──► emod_isa::Program
//! ```
//!
//! # Examples
//!
//! ```
//! use emod_compiler::{compile, OptConfig};
//! use emod_isa::Emulator;
//!
//! let src = r#"
//!     fn main() {
//!         var s = 0;
//!         for (i = 1; i <= 10; i = i + 1) { s = s + i * i; }
//!         return s;
//!     }
//! "#;
//! let prog = compile(src, &OptConfig::o2())?;
//! assert_eq!(Emulator::new(&prog).run(100_000).unwrap(), 385);
//! # Ok::<(), emod_compiler::CompileError>(())
//! ```

#![warn(missing_docs)]

pub mod codegen;
pub mod front;
pub mod ir;
mod opts;
pub mod passes;
pub mod regalloc;
pub mod schedule;

pub use opts::OptConfig;

use emod_isa::Program;
use std::error::Error;
use std::fmt;

/// Error produced anywhere in the compilation pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Lexical or syntactic error, with a line number.
    Parse {
        /// 1-based source line of the error.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Semantic error (unknown name, type mismatch, arity …).
    Semantic(String),
    /// Resource limits exceeded during codegen (e.g. too many arguments).
    Codegen(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse { line, message } => {
                write!(f, "parse error at line {}: {}", line, message)
            }
            CompileError::Semantic(m) => write!(f, "semantic error: {}", m),
            CompileError::Codegen(m) => write!(f, "codegen error: {}", m),
        }
    }
}

impl Error for CompileError {}

/// Convenience alias for results from this crate.
pub type Result<T> = std::result::Result<T, CompileError>;

/// Compiles Tinylang source to an executable program under `config`.
///
/// This is the equivalent of one `gcc` invocation at one setting of the
/// Table 1 command line: parse, lower, run the enabled midend passes, then
/// generate code with the enabled backend options.
///
/// # Errors
///
/// Returns a [`CompileError`] for malformed source or codegen limits.
pub fn compile(source: &str, config: &OptConfig) -> Result<Program> {
    let module = front::parse_and_lower(source)?;
    compile_module(module, config)
}

/// Compiles an already-lowered IR module (used by the workload crate, which
/// caches parsed modules).
///
/// # Errors
///
/// Returns a [`CompileError`] for codegen limits.
pub fn compile_module(mut module: ir::Module, config: &OptConfig) -> Result<Program> {
    let _span = emod_telemetry::span("compiler.compile");
    emod_telemetry::counter_add("compiler.compilations", 1);
    passes::run_pipeline(&mut module, config);
    codegen::generate(&module, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = CompileError::Parse {
            line: 3,
            message: "unexpected token".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(CompileError::Semantic("x".into()).to_string().contains("x"));
    }

    #[test]
    fn compile_minimal_program_all_presets() {
        let src = "fn main() { return 41 + 1; }";
        for cfg in [OptConfig::o0(), OptConfig::o2(), OptConfig::o3()] {
            let prog = compile(src, &cfg).unwrap();
            let v = emod_isa::Emulator::new(&prog).run(10_000).unwrap();
            assert_eq!(v, 42);
        }
    }
}
