//! Loop unrolling (`-funroll-loops`, Table 1 row 2), governed by the
//! `max-unroll-times` (row 13) and `max-unrolled-insns` (row 14) heuristics.
//!
//! Handles the canonical counted loop produced by the frontend — a header
//! testing `i < bound` (or `<=`) and a single body block incrementing `i` by
//! a positive constant — with a *runtime* trip count: the transformed code
//! keeps the original loop as the remainder loop, preceded by an unrolled
//! main loop guarded by `i + (u-1)·step < bound`:
//!
//! ```text
//!   preds ──► H' : t = i + (u-1)·step ; if t < bound ──► B' (u copies) ─┐
//!               │ else                                                  │
//!               ▼                                           back to H' ─┘
//!              H : if i < bound ──► B ──► H   (remainder)
//!               │ else ──► exit
//! ```

use crate::ir::analysis::{natural_loops, predecessors};
use crate::ir::{BinOp, CmpOp, Function, Instr, Operand, Terminator, Ty};
use crate::OptConfig;

/// Unrolls every eligible loop in the function.
pub fn run(f: &mut Function, config: &OptConfig) {
    // Headers are captured up front: unrolling adds blocks but never
    // invalidates other loops' headers.
    let headers: Vec<_> = natural_loops(f).iter().map(|l| l.header).collect();
    for header in headers {
        let loops = natural_loops(f);
        if let Some(l) = loops.iter().find(|l| l.header == header) {
            let l = l.clone();
            try_unroll(f, &l, config);
        }
    }
}

fn try_unroll(f: &mut Function, l: &crate::ir::analysis::Loop, config: &OptConfig) -> bool {
    // Shape: loop is exactly {header, body}; body is the single latch and
    // ends with a jump back to the header.
    if l.body.len() != 2 || l.latches.len() != 1 {
        return false;
    }
    let header = l.header;
    let body = l.latches[0];
    if f.block(body).term != Terminator::Jump(header) {
        return false;
    }
    // Header: cond = Cmp(Lt|Le, i, bound); Branch(cond, body, exit).
    let Terminator::Branch {
        cond: Operand::Reg(cond_reg),
        then_bb,
        else_bb: _,
    } = f.block(header).term
    else {
        return false;
    };
    if then_bb != body {
        return false;
    }
    // The compare must be the last instruction of the header, defining the
    // branch condition from an induction variable and an invariant bound.
    let Some(Instr::Cmp { op, dst, lhs, rhs }) = f.block(header).instrs.last().cloned() else {
        return false;
    };
    if dst != cond_reg || !matches!(op, CmpOp::Lt | CmpOp::Le) {
        return false;
    }
    let Operand::Reg(iv) = lhs else { return false };
    // Find the unique IV increment in the body: iv = iv + c, c > 0.
    let mut iv_defs = 0usize;
    let mut step = None;
    for i in &f.block(body).instrs {
        if i.def() == Some(iv) {
            iv_defs += 1;
            if let Instr::Bin {
                op: BinOp::Add,
                dst: d,
                lhs: Operand::Reg(r),
                rhs: Operand::ConstI(c),
            } = i
            {
                if *d == iv && *r == iv && *c > 0 {
                    step = Some(*c);
                }
            }
        }
    }
    let Some(step) = step else { return false };
    if iv_defs != 1 {
        return false;
    }
    // The bound and any other header computation must be loop-invariant:
    // conservatively require the header to contain only the compare, and the
    // bound to be a constant or a register not defined in the loop.
    if f.block(header).instrs.len() != 1 {
        return false;
    }
    let bound_invariant = match rhs {
        Operand::ConstI(_) => true,
        Operand::Reg(b) => b != iv && !f.block(body).instrs.iter().any(|i| i.def() == Some(b)),
        Operand::ConstF(_) => false,
    };
    if !bound_invariant {
        return false;
    }
    // Body must not contain calls (their side effects complicate the guard
    // condition reasoning only in that iteration counts must stay exact —
    // they do — but calls can modify the bound through globals; the bound
    // registers are locals, so calls are actually fine. gcc similarly
    // unrolls loops with calls; we keep them.)

    // Pick the unroll factor.
    let body_size = f.block(body).instrs.len();
    let mut factor = config.max_unroll_times.max(1) as usize;
    while factor > 1 && body_size * factor > config.max_unrolled_insns as usize {
        factor -= 1;
    }
    if factor < 2 {
        return false;
    }

    // Build the unrolled loop.
    let new_header = f.new_block();
    let new_body = f.new_block();
    // Retarget every non-latch predecessor of the old header to the new one.
    let preds = predecessors(f);
    for p in preds[header.0 as usize].clone() {
        if p != body {
            f.block_mut(p).term.retarget(header, new_header);
        }
    }
    // New header: t = iv + (factor-1)*step ; guard = Cmp(op, t, bound) ;
    // br guard, new_body, old_header.
    let t = f.new_vreg(Ty::I64);
    let guard = f.new_vreg(Ty::I64);
    f.block_mut(new_header).instrs.push(Instr::Bin {
        op: BinOp::Add,
        dst: t,
        lhs: Operand::Reg(iv),
        rhs: Operand::ConstI((factor as i64 - 1) * step),
    });
    f.block_mut(new_header).instrs.push(Instr::Cmp {
        op,
        dst: guard,
        lhs: Operand::Reg(t),
        rhs,
    });
    f.block_mut(new_header).term = Terminator::Branch {
        cond: Operand::Reg(guard),
        then_bb: new_body,
        else_bb: header,
    };
    // New body: `factor` copies of the original body's instructions. The IR
    // is not SSA, so literal replication preserves semantics: each copy
    // advances the induction variable exactly as a real iteration would.
    //
    // Temporaries that are local to the body (neither live in nor live out)
    // are renamed per copy; otherwise one register would span all copies of
    // the merged block and the register allocator would see artificial
    // block-long live ranges — pressure real unrollers avoid the same way.
    let live = crate::ir::analysis::liveness(f);
    let locals: Vec<crate::ir::VReg> = {
        let b = body.0 as usize;
        f.block(body)
            .instrs
            .iter()
            .filter_map(|i| i.def())
            .filter(|v| !live.live_in[b].contains(v) && !live.live_out[b].contains(v))
            .collect()
    };
    let template = f.block(body).instrs.clone();
    for copy in 0..factor {
        let mut rename: std::collections::HashMap<crate::ir::VReg, crate::ir::VReg> =
            std::collections::HashMap::new();
        if copy > 0 {
            for &v in &locals {
                let ty = f.ty(v);
                rename.insert(v, f.new_vreg(ty));
            }
        }
        for inst in &template {
            let mut ni = inst.clone();
            for (&old, &new) in &rename {
                if ni.def() == Some(old) {
                    ni.set_def(new);
                }
                ni.replace_use(old, Operand::Reg(new));
            }
            f.block_mut(new_body).instrs.push(ni);
        }
    }
    f.block_mut(new_body).term = Terminator::Jump(new_header);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::{assert_equivalent, module, run as run_src};

    fn unrolled_src() -> &'static str {
        r#"
            global g[100];
            fn main() {
                for (i = 0; i < 100; i = i + 1) { g[i] = i * 7; }
                var s = 0;
                for (i = 0; i < 100; i = i + 1) { s = s + g[i]; }
                return s;
            }
        "#
    }

    fn cfg(times: u32, insns: u32) -> OptConfig {
        let mut c = OptConfig::o0();
        c.unroll_loops = true;
        c.max_unroll_times = times;
        c.max_unrolled_insns = insns;
        c
    }

    #[test]
    fn unroll_preserves_semantics_all_factors() {
        for times in [4, 7, 8, 12] {
            let v = assert_equivalent(unrolled_src(), &cfg(times, 300));
            assert_eq!(v, (0..100).map(|i| i * 7).sum::<i64>());
        }
    }

    #[test]
    fn unroll_with_non_divisible_trip_count() {
        // 100 iterations unrolled by 7 leaves a remainder of 2.
        let src = r#"
            fn main() {
                var s = 0;
                for (i = 0; i < 23; i = i + 3) { s = s + i; }
                return s;
            }
        "#;
        let expect: i64 = (0..23).step_by(3).map(|i| i as i64).sum();
        for times in [4, 5, 12] {
            assert_eq!(run_src(src, &cfg(times, 300)), expect);
        }
    }

    #[test]
    fn unroll_duplicates_body_blocks() {
        let mut m = module(unrolled_src());
        let before = m.funcs[0].blocks.len();
        run(&mut m.funcs[0], &cfg(8, 300));
        let after = m.funcs[0].blocks.len();
        assert_eq!(after, before + 4, "two loops, two new blocks each");
        m.funcs[0].assert_valid();
    }

    #[test]
    fn max_unrolled_insns_limits_factor() {
        let mut m = module(unrolled_src());
        // Store loop body is ~5 instructions; a budget of 10 caps u at 2.
        run(&mut m.funcs[0], &cfg(12, 100));
        let f = &m.funcs[0];
        // The largest block must stay within the budget.
        let max_block = f.blocks.iter().map(|b| b.instrs.len()).max().unwrap();
        assert!(max_block <= 100, "block of {} instrs", max_block);
        assert_equivalent(unrolled_src(), &cfg(12, 100));
    }

    #[test]
    fn tiny_budget_disables_unrolling() {
        let mut m = module(unrolled_src());
        let before = m.funcs[0].blocks.len();
        let mut c = cfg(12, 100);
        c.max_unrolled_insns = 1; // below one body copy — skip entirely
        run(&mut m.funcs[0], &c);
        assert_eq!(m.funcs[0].blocks.len(), before);
    }

    #[test]
    fn loops_with_branches_in_body_are_skipped() {
        let src = r#"
            fn main(n) {
                var s = 0;
                for (i = 0; i < 50; i = i + 1) {
                    if (i & 1) { s = s + i; } else { s = s - 1; }
                }
                return s;
            }
        "#;
        let mut m = module(src);
        let before = m.funcs[0].blocks.len();
        run(&mut m.funcs[0], &cfg(8, 300));
        assert_eq!(
            m.funcs[0].blocks.len(),
            before,
            "must skip multi-block body"
        );
        assert_equivalent(src, &cfg(8, 300));
    }

    #[test]
    fn le_bounds_and_register_bounds_unroll() {
        let src = r#"
            fn main() {
                var n = 37;
                var s = 0;
                for (i = 1; i <= n; i = i + 1) { s = s + i; }
                return s;
            }
        "#;
        let v = assert_equivalent(src, &cfg(6, 300));
        assert_eq!(v, (1..=37).sum::<i64>());
        let mut m = module(src);
        let before = m.funcs[0].blocks.len();
        run(&mut m.funcs[0], &cfg(6, 300));
        assert!(m.funcs[0].blocks.len() > before, "loop was not unrolled");
    }

    #[test]
    fn zero_trip_loops_still_correct() {
        let src = r#"
            fn main() {
                var s = 5;
                for (i = 10; i < 10; i = i + 1) { s = s + 100; }
                return s;
            }
        "#;
        assert_eq!(run_src(src, &cfg(8, 300)), 5);
    }
}
