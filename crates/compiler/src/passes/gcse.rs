//! Global common subexpression elimination (`-fgcse`, Table 1 row 5).
//!
//! Two cooperating scopes keep the pass sound on the mutable (non-SSA) IR:
//!
//! 1. **Block-local value numbering** with full kill tracking — any operand
//!    whose register is redefined invalidates the expression. This is where
//!    the big post-unrolling redundancy (duplicated address arithmetic in
//!    replicated loop bodies) disappears.
//! 2. **Dominator-scoped CSE restricted to single-definition registers** —
//!    registers defined exactly once in the whole function (expression
//!    temporaries from lowering, parameters) can never change, so an
//!    expression over them computed in a dominating block is still valid.

use crate::ir::analysis::dominators;
use crate::ir::{BlockId, Function, Instr, Operand, VReg};
use std::collections::HashMap;

/// Canonical key of a pure expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ExprKey {
    Bin(crate::ir::BinOp, OpKey, OpKey),
    FBin(crate::ir::FBinOp, OpKey, OpKey),
    Cmp(crate::ir::CmpOp, OpKey, OpKey),
    FCmp(crate::ir::CmpOp, OpKey, OpKey),
    I2F(OpKey),
    F2I(OpKey),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum OpKey {
    Reg(VReg),
    ConstI(i64),
    ConstF(u64),
}

fn op_key(o: Operand) -> OpKey {
    match o {
        Operand::Reg(r) => OpKey::Reg(r),
        Operand::ConstI(v) => OpKey::ConstI(v),
        Operand::ConstF(v) => OpKey::ConstF(v.to_bits()),
    }
}

/// Key for a pure, CSE-able instruction, commutative ops canonicalized.
fn expr_key(i: &Instr) -> Option<(ExprKey, VReg)> {
    let key = match i {
        Instr::Bin { op, dst, lhs, rhs } => {
            let (mut a, mut b) = (op_key(*lhs), op_key(*rhs));
            if op.commutative() && format!("{:?}", a) > format!("{:?}", b) {
                std::mem::swap(&mut a, &mut b);
            }
            if op.can_fault() {
                return None;
            }
            (ExprKey::Bin(*op, a, b), *dst)
        }
        Instr::FBin { op, dst, lhs, rhs } => (ExprKey::FBin(*op, op_key(*lhs), op_key(*rhs)), *dst),
        Instr::Cmp { op, dst, lhs, rhs } => (ExprKey::Cmp(*op, op_key(*lhs), op_key(*rhs)), *dst),
        Instr::FCmp { op, dst, lhs, rhs } => (ExprKey::FCmp(*op, op_key(*lhs), op_key(*rhs)), *dst),
        Instr::IntToFloat { dst, src } => (ExprKey::I2F(op_key(*src)), *dst),
        Instr::FloatToInt { dst, src } => (ExprKey::F2I(op_key(*src)), *dst),
        _ => return None,
    };
    Some(key)
}

/// Registers read by an expression key.
fn key_regs(k: &ExprKey) -> Vec<VReg> {
    let mut out = Vec::new();
    let mut push = |o: &OpKey| {
        if let OpKey::Reg(r) = o {
            out.push(*r);
        }
    };
    match k {
        ExprKey::Bin(_, a, b)
        | ExprKey::FBin(_, a, b)
        | ExprKey::Cmp(_, a, b)
        | ExprKey::FCmp(_, a, b) => {
            push(a);
            push(b);
        }
        ExprKey::I2F(a) | ExprKey::F2I(a) => push(a),
    }
    out
}

/// Runs GCSE over one function.
pub fn run(f: &mut Function) {
    let def_counts = definition_counts(f);
    local_value_numbering(f);
    dominator_cse(f, &def_counts);
}

/// Number of static definitions of each register.
fn definition_counts(f: &Function) -> Vec<u32> {
    let mut counts = vec![0u32; f.vreg_types.len()];
    for &p in &f.params {
        counts[p.0 as usize] += 1;
    }
    for b in &f.blocks {
        for i in &b.instrs {
            if let Some(d) = i.def() {
                counts[d.0 as usize] += 1;
            }
        }
    }
    counts
}

/// Pass 1: value numbering within each block, killing expressions whose
/// operand (or holder) registers are redefined.
fn local_value_numbering(f: &mut Function) {
    for b in 0..f.blocks.len() {
        let mut table: HashMap<ExprKey, VReg> = HashMap::new();
        // Value aliases from copies (CSE-introduced or pre-existing), so
        // chained expressions over equal values key identically.
        let mut aliases: HashMap<VReg, VReg> = HashMap::new();
        let block = &mut f.blocks[b];
        for i in &mut block.instrs {
            for u in i.uses() {
                if let Some(&c) = aliases.get(&u) {
                    i.replace_use(u, Operand::Reg(c));
                }
            }
            let replacement = expr_key(i).and_then(|(key, _)| table.get(&key).copied());
            if let (Some(prev), Some(dst)) = (replacement, i.def()) {
                *i = Instr::Copy {
                    dst,
                    src: Operand::Reg(prev),
                };
            }
            if let Some(d) = i.def() {
                // Kill entries that read d or are held in d — before
                // inserting this instruction's own facts.
                table.retain(|k, holder| *holder != d && !key_regs(k).contains(&d));
                aliases.retain(|dst, src| *dst != d && *src != d);
            }
            if let Some((key, dst)) = expr_key(i) {
                // Self-referencing updates (`i = i + 1`) define a *new*
                // value of an operand; the expression over the old value is
                // not available afterwards.
                if !key_regs(&key).contains(&dst) {
                    table.insert(key, dst);
                }
            }
            if let Instr::Copy {
                dst,
                src: Operand::Reg(s),
            } = i
            {
                if dst != s {
                    aliases.insert(*dst, *s);
                }
            }
        }
    }
}

/// Pass 2: dominator-tree CSE over single-definition registers.
fn dominator_cse(f: &mut Function, def_counts: &[u32]) {
    let idom = dominators(f);
    // Children lists of the dominator tree.
    let mut children: Vec<Vec<BlockId>> = vec![Vec::new(); f.blocks.len()];
    for b in f.block_ids() {
        if b == BlockId(0) {
            continue;
        }
        if let Some(p) = idom[b.0 as usize] {
            children[p.0 as usize].push(b);
        }
    }
    let single_def = |r: VReg| def_counts[r.0 as usize] <= 1;

    // Iterative preorder walk with scoped table and alias map (undo logs).
    let mut table: HashMap<ExprKey, VReg> = HashMap::new();
    let mut aliases: HashMap<VReg, VReg> = HashMap::new();
    let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
    let mut undo: Vec<Undo> = vec![Undo::default()];
    // Process entry block on push.
    process_block(
        f,
        BlockId(0),
        &mut table,
        &mut aliases,
        &mut undo[0],
        single_def,
    );
    while let Some(frame) = stack.last_mut() {
        let bb = frame.0;
        if frame.1 < children[bb.0 as usize].len() {
            let c = children[bb.0 as usize][frame.1];
            frame.1 += 1;
            let mut log = Undo::default();
            process_block(f, c, &mut table, &mut aliases, &mut log, single_def);
            undo.push(log);
            stack.push((c, 0));
        } else {
            stack.pop();
            let log = undo.pop().expect("balanced");
            for (k, prev) in log.table.into_iter().rev() {
                match prev {
                    Some(v) => table.insert(k, v),
                    None => table.remove(&k),
                };
            }
            for (r, prev) in log.aliases.into_iter().rev() {
                match prev {
                    Some(v) => aliases.insert(r, v),
                    None => aliases.remove(&r),
                };
            }
        }
    }
}

#[derive(Default)]
struct Undo {
    table: Vec<(ExprKey, Option<VReg>)>,
    aliases: Vec<(VReg, Option<VReg>)>,
}

fn process_block(
    f: &mut Function,
    bb: BlockId,
    table: &mut HashMap<ExprKey, VReg>,
    aliases: &mut HashMap<VReg, VReg>,
    log: &mut Undo,
    single_def: impl Fn(VReg) -> bool,
) {
    let block = f.block_mut(bb);
    for i in &mut block.instrs {
        // Canonicalize single-def operands through known value aliases, so
        // chained redundant expressions key identically. Sound because both
        // sides of every alias are single-def and the alias's definition
        // dominates this point.
        for u in i.uses() {
            if let Some(&c) = aliases.get(&u) {
                i.replace_use(u, Operand::Reg(c));
            }
        }
        let Some((key, dst)) = expr_key(i) else {
            continue;
        };
        // Only expressions whose operands and holder can never change.
        if !key_regs(&key).iter().all(|&r| single_def(r)) || !single_def(dst) {
            continue;
        }
        if let Some(&prev) = table.get(&key) {
            if prev != dst {
                *i = Instr::Copy {
                    dst,
                    src: Operand::Reg(prev),
                };
                log.aliases.push((dst, aliases.get(&dst).copied()));
                aliases.insert(dst, prev);
                continue;
            }
        }
        log.table.push((key.clone(), table.get(&key).copied()));
        table.insert(key, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::BinOp;
    use crate::passes::testutil::{assert_equivalent, module};

    fn count_op(f: &Function, op: BinOp) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::Bin { op: o, .. } if *o == op))
            .count()
    }

    #[test]
    fn local_cse_removes_duplicate_expression() {
        // g[i] read twice in one statement: two Shl/Add address chains.
        let src = "global g[8]; fn main(i) { return g[i] + g[i]; }";
        let mut m = module(src);
        let before = count_op(&m.funcs[0], BinOp::Shl);
        run(&mut m.funcs[0]);
        crate::passes::constprop::eliminate_dead_code(&mut m.funcs[0]);
        let after = count_op(&m.funcs[0], BinOp::Shl);
        assert!(before >= 2, "expected duplicated address math");
        assert_eq!(after, 1, "{}", m.funcs[0]);
    }

    #[test]
    fn redefinition_kills_local_cse() {
        // i changes between the two identical-looking expressions.
        let src = "fn main(i) { var a = i * 2; i = i + 1; var b = i * 2; return a + b; }";
        let mut m = module(src);
        run(&mut m.funcs[0]);
        crate::passes::constprop::eliminate_dead_code(&mut m.funcs[0]);
        assert_eq!(count_op(&m.funcs[0], BinOp::Mul), 2, "{}", m.funcs[0]);
    }

    #[test]
    fn dominator_cse_across_blocks_on_single_def_temps() {
        // p*3 computed before the branch and again in the join — the temps
        // feeding both are single-def, so the second compute collapses.
        let src = r#"
            fn main(p) {
                var a = (p + 1) * 3;
                var r = 0;
                if (p) { r = a; } else { r = 1; }
                var b = (p + 1) * 3;
                return r + b;
            }
        "#;
        let mut m = module(src);
        let before = count_op(&m.funcs[0], BinOp::Mul);
        run(&mut m.funcs[0]);
        crate::passes::constprop::local_copy_propagation(&mut m.funcs[0]);
        crate::passes::constprop::eliminate_dead_code(&mut m.funcs[0]);
        let after = count_op(&m.funcs[0], BinOp::Mul);
        assert_eq!(before, 2);
        assert_eq!(after, 1, "{}", m.funcs[0]);
    }

    #[test]
    fn sibling_blocks_do_not_share_expressions() {
        // then/else compute the same expression but neither dominates the
        // other; both must survive.
        let src = r#"
            fn main(p) {
                var r = 0;
                if (p) { r = p * 5; } else { r = p * 5 + 1; }
                return r;
            }
        "#;
        let mut m = module(src);
        run(&mut m.funcs[0]);
        crate::passes::constprop::eliminate_dead_code(&mut m.funcs[0]);
        assert_eq!(count_op(&m.funcs[0], BinOp::Mul), 2, "{}", m.funcs[0]);
    }

    #[test]
    fn gcse_preserves_semantics() {
        let src = r#"
            global g[16];
            fn main() {
                var acc = 0;
                for (i = 0; i < 16; i = i + 1) { g[i] = i * i; }
                for (i = 0; i < 16; i = i + 1) {
                    acc = acc + g[i] * 2 + g[i] * 2;
                }
                return acc;
            }
        "#;
        let mut cfg = crate::OptConfig::o0();
        cfg.gcse = true;
        assert_equivalent(src, &cfg);
    }

    #[test]
    fn loads_are_never_csed() {
        // Two loads of the same address with an intervening store must both
        // survive (no memory value numbering).
        let src = "global g[2]; fn main(p) { var a = g[0]; g[0] = p; var b = g[0]; return a + b; }";
        let mut m = module(src);
        run(&mut m.funcs[0]);
        let loads = m.funcs[0]
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::Load { .. }))
            .count();
        assert_eq!(loads, 2);
    }
}
