//! Constant propagation, local copy propagation and dead-code elimination —
//! the scalar cleanups bundled with `-fgcse` (gcc folds constant and copy
//! propagation into its GCSE pass; Table 1 row 5).

use crate::ir::{BinOp, CmpOp, FBinOp, Function, Instr, Operand, Terminator, VReg};
use std::collections::HashMap;

/// Lattice value for one register.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Lattice {
    /// Known constant.
    ConstI(i64),
    /// Known float constant (stored as bits so NaN compares reflexively and
    /// the fixpoint iteration terminates).
    ConstF(u64),
    /// Not a constant.
    Bottom,
}

/// Global (whole-function) constant propagation and folding.
///
/// A classic forward dataflow over the non-SSA IR: per-block maps of
/// register → lattice value, merged at join points, iterated to a fixed
/// point, then each block is rewritten with the incoming facts.
pub fn propagate_constants(f: &mut Function) {
    let n = f.blocks.len();
    let mut ins: Vec<HashMap<VReg, Lattice>> = vec![HashMap::new(); n];
    let mut outs: Vec<HashMap<VReg, Lattice>> = vec![HashMap::new(); n];
    let preds = crate::ir::analysis::predecessors(f);
    // Entry: parameters are unknown.
    let mut entry = HashMap::new();
    for &p in &f.params {
        entry.insert(p, Lattice::Bottom);
    }
    ins[0] = entry;

    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..n {
            if b != 0 {
                // Merge predecessors: absent = Top (takes the other side),
                // conflicting constants = Bottom.
                let mut merged: HashMap<VReg, Lattice> = HashMap::new();
                for p in &preds[b] {
                    for (&r, &v) in &outs[p.0 as usize] {
                        merged
                            .entry(r)
                            .and_modify(|cur| {
                                if *cur != v {
                                    *cur = Lattice::Bottom;
                                }
                            })
                            .or_insert(v);
                    }
                }
                if merged != ins[b] {
                    ins[b] = merged;
                    changed = true;
                }
            }
            let mut env = ins[b].clone();
            for i in &f.blocks[b].instrs {
                transfer(i, &mut env);
            }
            if env != outs[b] {
                outs[b] = env;
                changed = true;
            }
        }
    }

    // Rewrite with the computed facts.
    for (block, block_in) in f.blocks.iter_mut().zip(&ins) {
        let mut env = block_in.clone();
        for i in &mut block.instrs {
            // Substitute known-constant operands.
            for u in i.uses() {
                match env.get(&u) {
                    Some(Lattice::ConstI(v)) => i.replace_use(u, Operand::ConstI(*v)),
                    Some(Lattice::ConstF(v)) => {
                        i.replace_use(u, Operand::ConstF(f64::from_bits(*v)))
                    }
                    _ => {}
                }
            }
            // Fold if now fully constant.
            if let Some(folded) = fold(i) {
                *i = folded;
            }
            transfer(i, &mut env);
        }
        // Fold branch conditions.
        if let Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } = block.term.clone()
        {
            let known = match cond {
                Operand::ConstI(v) => Some(v != 0),
                Operand::Reg(r) => match env.get(&r) {
                    Some(Lattice::ConstI(v)) => Some(*v != 0),
                    _ => None,
                },
                Operand::ConstF(_) => None,
            };
            if let Some(taken) = known {
                block.term = Terminator::Jump(if taken { then_bb } else { else_bb });
            }
        }
        if let Terminator::Return(v) = block.term.clone() {
            if let Some(r) = v.as_reg() {
                match env.get(&r) {
                    Some(Lattice::ConstI(c)) => {
                        block.term = Terminator::Return(Operand::ConstI(*c))
                    }
                    Some(Lattice::ConstF(c)) => {
                        block.term = Terminator::Return(Operand::ConstF(f64::from_bits(*c)))
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Applies one instruction's effect to the lattice environment.
fn transfer(i: &Instr, env: &mut HashMap<VReg, Lattice>) {
    let Some(dst) = i.def() else { return };
    let value = match i {
        Instr::Copy { src, .. } => match src {
            Operand::ConstI(v) => Lattice::ConstI(*v),
            Operand::ConstF(v) => Lattice::ConstF(v.to_bits()),
            Operand::Reg(r) => env.get(r).copied().unwrap_or(Lattice::Bottom),
        },
        _ => match fold(i) {
            Some(Instr::Copy {
                src: Operand::ConstI(v),
                ..
            }) => Lattice::ConstI(v),
            Some(Instr::Copy {
                src: Operand::ConstF(v),
                ..
            }) => Lattice::ConstF(v.to_bits()),
            _ => Lattice::Bottom,
        },
    };
    env.insert(dst, value);
}

/// Folds a pure instruction with constant operands to a `Copy` of the result.
fn fold(i: &Instr) -> Option<Instr> {
    match i {
        Instr::Bin { op, dst, lhs, rhs } => {
            let (a, b) = (lhs.as_const_i()?, rhs.as_const_i()?);
            let v = match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return None; // preserve the fault
                    }
                    a.wrapping_div(b)
                }
                BinOp::Rem => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_rem(b)
                }
                BinOp::And => a & b,
                BinOp::Or => a | b,
                BinOp::Xor => a ^ b,
                BinOp::Shl => a.wrapping_shl((b & 63) as u32),
                BinOp::Shr => a.wrapping_shr((b & 63) as u32),
            };
            Some(Instr::Copy {
                dst: *dst,
                src: Operand::ConstI(v),
            })
        }
        Instr::FBin { op, dst, lhs, rhs } => {
            let a = match lhs {
                Operand::ConstF(v) => *v,
                _ => return None,
            };
            let b = match rhs {
                Operand::ConstF(v) => *v,
                _ => return None,
            };
            let v = match op {
                FBinOp::Add => a + b,
                FBinOp::Sub => a - b,
                FBinOp::Mul => a * b,
                FBinOp::Div => a / b,
            };
            Some(Instr::Copy {
                dst: *dst,
                src: Operand::ConstF(v),
            })
        }
        Instr::Cmp { op, dst, lhs, rhs } => {
            let (a, b) = (lhs.as_const_i()?, rhs.as_const_i()?);
            let v = match op {
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
            };
            Some(Instr::Copy {
                dst: *dst,
                src: Operand::ConstI(v as i64),
            })
        }
        Instr::IntToFloat { dst, src } => Some(Instr::Copy {
            dst: *dst,
            src: Operand::ConstF(src.as_const_i()? as f64),
        }),
        _ => None,
    }
}

/// Block-local copy propagation: forwards `dst = src_reg` copies to later
/// uses within the block, as long as neither side is redefined.
pub fn local_copy_propagation(f: &mut Function) {
    for b in 0..f.blocks.len() {
        let mut copies: HashMap<VReg, VReg> = HashMap::new(); // dst -> src
        let block = &mut f.blocks[b];
        for i in &mut block.instrs {
            // Rewrite uses through known copies.
            for u in i.uses() {
                if let Some(&src) = copies.get(&u) {
                    i.replace_use(u, Operand::Reg(src));
                }
            }
            if let Some(d) = i.def() {
                // Any mapping using d as a source or target dies.
                copies.retain(|&k, &mut v| k != d && v != d);
                if let Instr::Copy {
                    dst,
                    src: Operand::Reg(s),
                } = i
                {
                    if dst != s {
                        copies.insert(*dst, *s);
                    }
                }
            }
        }
        // Terminator operands.
        let rewrite = |o: &mut Operand| {
            if let Some(r) = o.as_reg() {
                if let Some(&src) = copies.get(&r) {
                    *o = Operand::Reg(src);
                }
            }
        };
        match &mut block.term {
            Terminator::Branch { cond, .. } => rewrite(cond),
            Terminator::Return(v) => rewrite(v),
            Terminator::Jump(_) => {}
        }
    }
}

/// Removes pure instructions whose results are never used, iterating until
/// nothing changes.
pub fn eliminate_dead_code(f: &mut Function) {
    loop {
        let mut used: std::collections::HashSet<VReg> = std::collections::HashSet::new();
        for b in &f.blocks {
            for i in &b.instrs {
                used.extend(i.uses());
            }
            match &b.term {
                Terminator::Branch { cond, .. } => used.extend(cond.as_reg()),
                Terminator::Return(v) => used.extend(v.as_reg()),
                Terminator::Jump(_) => {}
            }
        }
        let mut removed = false;
        for b in &mut f.blocks {
            let before = b.instrs.len();
            b.instrs
                .retain(|i| i.def().is_none_or(|d| used.contains(&d)) || !i.is_pure());
            removed |= b.instrs.len() != before;
        }
        if !removed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::module;

    #[test]
    fn folds_constant_arithmetic() {
        let mut m = module("fn main() { var a = 3; var b = 4; return a * b + 2; }");
        propagate_constants(&mut m.funcs[0]);
        let f = &m.funcs[0];
        // After folding, the return value should be the constant 14.
        let has_const_return = f
            .blocks
            .iter()
            .any(|b| matches!(b.term, Terminator::Return(Operand::ConstI(14))));
        assert!(has_const_return, "{}", f);
    }

    #[test]
    fn folds_branches_on_constants() {
        let mut m = module("fn main() { if (1 < 2) { return 5; } return 6; }");
        propagate_constants(&mut m.funcs[0]);
        // The entry block's branch must have become a jump.
        assert!(matches!(m.funcs[0].blocks[0].term, Terminator::Jump(_)));
    }

    #[test]
    fn constants_survive_joins_when_equal() {
        let src =
            "fn main(p) { var a = 7; if (p) { var x = 1; } else { var y = 2; } return a + 1; }";
        let mut m = module(src);
        propagate_constants(&mut m.funcs[0]);
        let f = &m.funcs[0];
        assert!(
            f.blocks
                .iter()
                .any(|b| matches!(b.term, Terminator::Return(Operand::ConstI(8)))),
            "{}",
            f
        );
    }

    #[test]
    fn conflicting_values_stay_dynamic() {
        let src = "fn main(p) { var a = 1; if (p) { a = 2; } return a; }";
        let mut m = module(src);
        propagate_constants(&mut m.funcs[0]);
        let f = &m.funcs[0];
        assert!(
            !f.blocks
                .iter()
                .any(|b| matches!(b.term, Terminator::Return(Operand::ConstI(_)))),
            "a must not fold: {}",
            f
        );
    }

    #[test]
    fn division_by_zero_not_folded() {
        let mut m = module("fn main() { var z = 0; return 4 / z; }");
        propagate_constants(&mut m.funcs[0]);
        let f = &m.funcs[0];
        let still_divides = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i, Instr::Bin { op: BinOp::Div, .. }));
        assert!(still_divides);
    }

    #[test]
    fn copy_propagation_forwards_sources() {
        let mut m = module("fn main(p) { var a = p; var b = a; return b + a; }");
        local_copy_propagation(&mut m.funcs[0]);
        eliminate_dead_code(&mut m.funcs[0]);
        let f = &m.funcs[0];
        // b + a should now read p directly: one Bin over the param register.
        let param = f.params[0];
        let ok = f.blocks[0].instrs.iter().any(|i| {
            matches!(i, Instr::Bin { op: BinOp::Add, lhs: Operand::Reg(a), rhs: Operand::Reg(b), .. }
                if *a == param && *b == param)
        });
        assert!(ok, "{}", f);
    }

    #[test]
    fn dce_removes_unused_pure_code_only() {
        let src = "global g[2]; fn main(p) { var dead = p * 3; g[0] = p; return p; }";
        let mut m = module(src);
        eliminate_dead_code(&mut m.funcs[0]);
        let f = &m.funcs[0];
        assert!(
            !f.blocks
                .iter()
                .flat_map(|b| &b.instrs)
                .any(|i| matches!(i, Instr::Bin { op: BinOp::Mul, .. })),
            "dead multiply survived"
        );
        assert!(
            f.blocks
                .iter()
                .flat_map(|b| &b.instrs)
                .any(|i| matches!(i, Instr::Store { .. })),
            "store must survive"
        );
    }

    #[test]
    fn semantics_preserved_end_to_end() {
        let src = r#"
            global g[8];
            fn main() {
                var s = 0;
                for (i = 0; i < 8; i = i + 1) { g[i] = i * 2 + 1; }
                for (i = 0; i < 8; i = i + 1) { s = s + g[i]; }
                return s;
            }
        "#;
        let mut cfg = crate::OptConfig::o0();
        cfg.gcse = true;
        let v = crate::passes::testutil::assert_equivalent(src, &cfg);
        assert_eq!(v, 64);
    }
}
