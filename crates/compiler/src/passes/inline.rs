//! Function inlining (`-finline-functions`, Table 1 row 1), governed by the
//! `max-inline-insns-auto` (row 10), `inline-unit-growth` (row 11) and
//! `inline-call-cost` (row 12) heuristics.
//!
//! Call sites are processed bottom-up over the call graph (callees first, so
//! already-inlined bodies propagate). A site is inlined when the callee is
//! small enough after crediting the saved call overhead, and the compilation
//! unit has not yet grown past the configured percentage.

use crate::ir::{BlockId, Function, Instr, Module, Operand, Terminator, VReg};
use crate::OptConfig;
use std::collections::HashSet;

/// Units smaller than this are treated as this size when applying the
/// `inline-unit-growth` percentage (gcc's `large-unit-insns` parameter, so
/// tiny modules are not starved of inlining).
pub const LARGE_UNIT_INSNS: usize = 150;

/// Runs the inliner over the module.
pub fn run(module: &mut Module, config: &OptConfig) {
    let original_size = module.size();
    let growth_base = original_size.max(LARGE_UNIT_INSNS);
    let budget = original_size + growth_base * config.inline_unit_growth as usize / 100;
    let order = bottom_up_order(module);
    for caller in order {
        loop {
            if module.size() >= budget {
                return;
            }
            let Some((block, idx, callee)) = find_inlinable_site(module, caller, config) else {
                break;
            };
            // The callee body is cloned out first so the caller can be
            // mutated freely.
            let callee_fn = module.funcs[callee].clone();
            inline_site(&mut module.funcs[caller], block, idx, &callee_fn);
        }
    }
}

/// Callees-before-callers order; functions in call-graph cycles keep their
/// original relative order (self-recursive calls are never inlined anyway).
fn bottom_up_order(module: &Module) -> Vec<usize> {
    let n = module.funcs.len();
    let mut callees: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    for (i, f) in module.funcs.iter().enumerate() {
        for b in &f.blocks {
            for instr in &b.instrs {
                if let Instr::Call { callee, .. } = instr {
                    callees[i].insert(*callee);
                }
            }
        }
    }
    // Kahn-style: repeatedly take functions whose unprocessed callees are
    // empty; break ties (cycles) by taking the lowest index.
    let mut done = vec![false; n];
    let mut order = Vec::with_capacity(n);
    while order.len() < n {
        let next = (0..n)
            .find(|&i| !done[i] && callees[i].iter().all(|&c| done[c] || c == i))
            .unwrap_or_else(|| (0..n).find(|&i| !done[i]).expect("undone exists"));
        done[next] = true;
        order.push(next);
    }
    order
}

/// Finds the first call site in `caller` whose callee passes the heuristics.
fn find_inlinable_site(
    module: &Module,
    caller: usize,
    config: &OptConfig,
) -> Option<(BlockId, usize, usize)> {
    let f = &module.funcs[caller];
    for bid in f.block_ids() {
        for (idx, i) in f.block(bid).instrs.iter().enumerate() {
            let Instr::Call { callee, .. } = i else {
                continue;
            };
            if *callee == caller {
                continue; // never inline self-recursion
            }
            let callee_size = module.funcs[*callee].size();
            // The call itself costs `inline-call-cost` simple instructions;
            // inlining is profitable while the body, net of that saving,
            // stays within the auto-inline threshold.
            let effective = callee_size.saturating_sub(config.inline_call_cost as usize);
            if effective <= config.max_inline_insns_auto as usize {
                return Some((bid, idx, *callee));
            }
        }
    }
    None
}

/// Splices `callee` into `caller` at the given call site.
fn inline_site(caller: &mut Function, site_block: BlockId, site_idx: usize, callee: &Function) {
    // 1. Extract the call.
    let call = caller.block(site_block).instrs[site_idx].clone();
    let Instr::Call { dst, args, .. } = call else {
        panic!("site is not a call");
    };

    // 2. Split the site block: everything after the call moves to a new
    //    continuation block that inherits the terminator.
    let cont = caller.new_block();
    let site = caller.block_mut(site_block);
    let tail: Vec<Instr> = site.instrs.drain(site_idx + 1..).collect();
    site.instrs.pop(); // remove the call itself
    let old_term = std::mem::replace(&mut site.term, Terminator::Jump(cont));
    let cont_block = caller.block_mut(cont);
    cont_block.instrs = tail;
    cont_block.term = old_term;

    // 3. Map callee registers and blocks into the caller.
    let reg_base = caller.vreg_types.len() as u32;
    for &ty in &callee.vreg_types {
        caller.vreg_types.push(ty);
    }
    let map_reg = |r: VReg| VReg(r.0 + reg_base);
    let block_base = caller.blocks.len() as u32;
    let map_block = |b: BlockId| BlockId(b.0 + block_base);

    // 4. Bind arguments in the site block, then jump to the mapped entry.
    for (param, arg) in callee.params.iter().zip(&args) {
        caller.block_mut(site_block).instrs.push(Instr::Copy {
            dst: map_reg(*param),
            src: *arg,
        });
    }
    caller.block_mut(site_block).term = Terminator::Jump(map_block(BlockId(0)));

    // 5. Clone callee blocks, remapping registers, blocks and returns.
    for cb in &callee.blocks {
        let mut instrs = Vec::with_capacity(cb.instrs.len());
        for i in &cb.instrs {
            let mut ni = i.clone();
            remap_instr(&mut ni, &map_reg);
            instrs.push(ni);
        }
        let term = match &cb.term {
            Terminator::Jump(t) => Terminator::Jump(map_block(*t)),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => Terminator::Branch {
                cond: remap_operand(*cond, &map_reg),
                then_bb: map_block(*then_bb),
                else_bb: map_block(*else_bb),
            },
            Terminator::Return(v) => {
                let v = remap_operand(*v, &map_reg);
                if let Some(d) = dst {
                    instrs.push(Instr::Copy { dst: d, src: v });
                }
                Terminator::Jump(cont)
            }
        };
        caller.blocks.push(crate::ir::Block { instrs, term });
    }
}

fn remap_operand(o: Operand, map_reg: &impl Fn(VReg) -> VReg) -> Operand {
    match o {
        Operand::Reg(r) => Operand::Reg(map_reg(r)),
        other => other,
    }
}

fn remap_instr(i: &mut Instr, map_reg: &impl Fn(VReg) -> VReg) {
    // Remap the destination in place, then every operand.
    match i {
        Instr::Bin { dst, lhs, rhs, .. }
        | Instr::FBin { dst, lhs, rhs, .. }
        | Instr::Cmp { dst, lhs, rhs, .. }
        | Instr::FCmp { dst, lhs, rhs, .. } => {
            *dst = map_reg(*dst);
            *lhs = remap_operand(*lhs, map_reg);
            *rhs = remap_operand(*rhs, map_reg);
        }
        Instr::Copy { dst, src }
        | Instr::IntToFloat { dst, src }
        | Instr::FloatToInt { dst, src } => {
            *dst = map_reg(*dst);
            *src = remap_operand(*src, map_reg);
        }
        Instr::Load { dst, addr } => {
            *dst = map_reg(*dst);
            *addr = remap_operand(*addr, map_reg);
        }
        Instr::Store { addr, value } => {
            *addr = remap_operand(*addr, map_reg);
            *value = remap_operand(*value, map_reg);
        }
        Instr::Prefetch { addr, .. } => {
            *addr = remap_operand(*addr, map_reg);
        }
        Instr::Call { dst, args, .. } => {
            if let Some(d) = dst {
                *d = map_reg(*d);
            }
            for a in args {
                *a = remap_operand(*a, map_reg);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::{module, run as run_src};

    fn call_count(m: &Module, func: usize) -> usize {
        m.funcs[func]
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::Call { .. }))
            .count()
    }

    fn inline_cfg() -> OptConfig {
        let mut c = OptConfig::o0();
        c.inline_functions = true;
        c
    }

    #[test]
    fn inlines_small_callee() {
        let src = r#"
            fn square(x) { return x * x; }
            fn main() { return square(6) + square(7); }
        "#;
        let mut m = module(src);
        let main = m.func_index("main").unwrap();
        assert_eq!(call_count(&m, main), 2);
        run(&mut m, &inline_cfg());
        assert_eq!(call_count(&m, main), 0);
        m.funcs[main].assert_valid();
        assert_eq!(run_src(src, &inline_cfg()), 36 + 49);
    }

    #[test]
    fn inlines_transitively_bottom_up() {
        let src = r#"
            fn add1(x) { return x + 1; }
            fn add2(x) { return add1(add1(x)); }
            fn main() { return add2(40); }
        "#;
        let mut m = module(src);
        run(&mut m, &inline_cfg());
        let main = m.func_index("main").unwrap();
        assert_eq!(call_count(&m, main), 0, "{}", m.funcs[main]);
        assert_eq!(run_src(src, &inline_cfg()), 42);
    }

    #[test]
    fn self_recursion_never_inlined() {
        let src = r#"
            fn fact(n) { if (n < 2) { return 1; } return n * fact(n - 1); }
            fn main() { return fact(6); }
        "#;
        let mut m = module(src);
        run(&mut m, &inline_cfg());
        let fact = m.func_index("fact").unwrap();
        assert!(call_count(&m, fact) >= 1, "self call must remain");
        assert_eq!(run_src(src, &inline_cfg()), 720);
    }

    #[test]
    fn max_inline_insns_auto_gates_large_callees() {
        // A callee much larger than the threshold (minus call cost) stays.
        let body: String = (0..200)
            .map(|k| format!("x = x + {};", k))
            .collect::<Vec<_>>()
            .join("\n");
        let src = format!(
            "fn big(x) {{ {} return x; }} fn main() {{ return big(1); }}",
            body
        );
        let mut m = module(&src);
        let mut cfg = inline_cfg();
        cfg.max_inline_insns_auto = 50;
        cfg.inline_call_cost = 12;
        run(&mut m, &cfg);
        let main = m.func_index("main").unwrap();
        assert_eq!(call_count(&m, main), 1, "big callee must not inline");
        // Raising the threshold far enough inlines it.
        let mut cfg2 = inline_cfg();
        cfg2.max_inline_insns_auto = 150;
        cfg2.inline_call_cost = 20;
        cfg2.inline_unit_growth = 75;
        // 200-insn callee still exceeds 150+20; verify the gate math instead
        // with a ~160-insn callee.
        let body2: String = (0..155)
            .map(|k| format!("x = x + {};", k))
            .collect::<Vec<_>>()
            .join("\n");
        let src2 = format!(
            "fn big(x) {{ {} return x; }} fn main() {{ return big(1); }}",
            body2
        );
        let mut m2 = module(&src2);
        run(&mut m2, &cfg2);
        let main2 = m2.func_index("main").unwrap();
        assert_eq!(call_count(&m2, main2), 0, "callee within threshold inlines");
    }

    #[test]
    fn unit_growth_budget_stops_inlining() {
        // Many call sites to a mid-size callee: with a tiny growth budget
        // only some get inlined.
        let calls: String = (0..20).map(|_| "s = s + f(s);".to_string()).collect();
        let src = format!(
            "fn f(x) {{ return x * 2 + 1; }} fn main() {{ var s = 1; {} return s; }}",
            calls
        );
        let mut m = module(&src);
        let mut cfg = inline_cfg();
        cfg.inline_unit_growth = 25;
        run(&mut m, &cfg);
        let main = m.func_index("main").unwrap();
        let remaining = call_count(&m, main);
        assert!(
            remaining > 0 && remaining < 20,
            "expected partial inlining, {} calls remain",
            remaining
        );
    }

    #[test]
    fn inlined_control_flow_is_correct() {
        let src = r#"
            fn max2(a, b) { if (a > b) { return a; } return b; }
            fn main() { return max2(3, 9) * 10 + max2(8, 2); }
        "#;
        let mut m = module(src);
        run(&mut m, &inline_cfg());
        let main = m.func_index("main").unwrap();
        assert_eq!(call_count(&m, main), 0);
        assert_eq!(run_src(src, &inline_cfg()), 98);
    }

    #[test]
    fn float_callee_inlines() {
        let src = r#"
            fnf scale(x: float) { return x * 2.5; }
            fn main() { return int(scale(4.0)); }
        "#;
        assert_eq!(run_src(src, &inline_cfg()), 10);
        let mut m = module(src);
        run(&mut m, &inline_cfg());
        assert_eq!(call_count(&m, m.func_index("main").unwrap()), 0);
    }
}
