//! Software prefetch insertion (`-fprefetch-loop-arrays`, Table 1 row 9).
//!
//! Inserts a `prefetch` ahead of loads whose address *strides* through
//! memory in a loop: either the address register is itself an induction
//! variable (the strength-reduced form), or it is computed from a basic IV
//! through a short chain of single-definition shifts/adds (the unreduced
//! form). The prefetch distance is fixed at compile time — whether that
//! distance matches the machine's memory latency is exactly the kind of
//! compiler/microarchitecture interaction the paper's models expose.

use crate::ir::analysis::natural_loops;
use crate::ir::{BinOp, Function, Instr, Operand, VReg};
use std::collections::{HashMap, HashSet};

/// Fixed lookahead in bytes (four 64-byte lines).
pub const PREFETCH_DISTANCE: i64 = 256;

/// Inserts prefetches in every loop of the function.
pub fn run(f: &mut Function) {
    let loops = natural_loops(f);
    for l in &loops {
        // Defs inside this loop.
        let mut def_counts: HashMap<VReg, usize> = HashMap::new();
        let mut add_const_defs: HashMap<VReg, i64> = HashMap::new();
        let mut single_defs: HashMap<VReg, Instr> = HashMap::new();
        for &b in &l.body {
            for i in &f.block(b).instrs {
                if let Some(d) = i.def() {
                    *def_counts.entry(d).or_insert(0) += 1;
                    single_defs.insert(d, i.clone());
                    if let Instr::Bin {
                        op: BinOp::Add,
                        dst,
                        lhs: Operand::Reg(r),
                        rhs: Operand::ConstI(c),
                    } = i
                    {
                        if dst == r {
                            add_const_defs.insert(*dst, *c);
                        }
                    }
                }
            }
        }
        let is_iv = |r: VReg| def_counts.get(&r) == Some(&1) && add_const_defs.contains_key(&r);
        // Walk a short single-def chain from `r` down to an IV.
        let strides = |r: VReg| -> bool {
            let mut cur = r;
            for _ in 0..4 {
                if is_iv(cur) {
                    return true;
                }
                if def_counts.get(&cur) != Some(&1) {
                    return false;
                }
                let Some(def) = single_defs.get(&cur) else {
                    return false;
                };
                let next = match def {
                    Instr::Bin {
                        op: BinOp::Add | BinOp::Shl,
                        lhs,
                        rhs,
                        ..
                    } => match (lhs, rhs) {
                        (Operand::Reg(a), Operand::ConstI(_)) => Some(*a),
                        (Operand::ConstI(_), Operand::Reg(b)) => Some(*b),
                        // base + scaled-iv form: follow the register that
                        // could stride; prefer lhs.
                        (Operand::Reg(a), Operand::Reg(_)) => Some(*a),
                        _ => None,
                    },
                    Instr::Copy {
                        src: Operand::Reg(s),
                        ..
                    } => Some(*s),
                    _ => None,
                };
                match next {
                    Some(n) => cur = n,
                    None => return false,
                }
            }
            false
        };

        // One prefetch per distinct address register per loop.
        let mut prefetched: HashSet<VReg> = HashSet::new();
        for &b in &l.body.clone() {
            let mut inserts: Vec<(usize, Instr)> = Vec::new();
            for (idx, i) in f.block(b).instrs.iter().enumerate() {
                let Instr::Load { addr, .. } = i else {
                    continue;
                };
                let Some(r) = addr.as_reg() else { continue };
                if prefetched.contains(&r) || !strides(r) {
                    continue;
                }
                prefetched.insert(r);
                inserts.push((
                    idx,
                    Instr::Prefetch {
                        addr: Operand::Reg(r),
                        offset: PREFETCH_DISTANCE,
                    },
                ));
            }
            for (idx, instr) in inserts.into_iter().rev() {
                f.block_mut(b).instrs.insert(idx, instr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::{assert_equivalent, module};

    fn prefetch_count(f: &Function) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::Prefetch { .. }))
            .count()
    }

    #[test]
    fn prefetches_strided_loads_unreduced_form() {
        let src = r#"
            global g[512];
            fn main() {
                var s = 0;
                for (i = 0; i < 512; i = i + 1) { s = s + g[i]; }
                return s;
            }
        "#;
        let mut m = module(src);
        run(&mut m.funcs[0]);
        assert_eq!(prefetch_count(&m.funcs[0]), 1, "{}", m.funcs[0]);
    }

    #[test]
    fn prefetches_after_strength_reduction() {
        let src = r#"
            global g[512];
            fn main() {
                var s = 0;
                for (i = 0; i < 512; i = i + 1) { s = s + g[i]; }
                return s;
            }
        "#;
        let mut m = module(src);
        crate::passes::strength::run(&mut m.funcs[0]);
        run(&mut m.funcs[0]);
        assert_eq!(prefetch_count(&m.funcs[0]), 1, "{}", m.funcs[0]);
    }

    #[test]
    fn non_strided_loads_not_prefetched() {
        // Pointer-chasing: address comes from the loaded value itself.
        let src = r#"
            global next[64];
            fn main() {
                var p = 0;
                for (i = 0; i < 32; i = i + 1) { p = next[p]; }
                return p;
            }
        "#;
        let mut m = module(src);
        run(&mut m.funcs[0]);
        // The address depends on the loaded value (multi-def p), so no
        // prefetch for the chase; the strides() walk must reject it.
        assert_eq!(prefetch_count(&m.funcs[0]), 0, "{}", m.funcs[0]);
    }

    #[test]
    fn prefetch_preserves_semantics() {
        let src = r#"
            global a[128];
            fn main() {
                for (i = 0; i < 128; i = i + 1) { a[i] = i; }
                var s = 0;
                for (i = 0; i < 128; i = i + 1) { s = s + a[i]; }
                return s;
            }
        "#;
        let mut cfg = crate::OptConfig::o0();
        cfg.prefetch_loop_arrays = true;
        let v = assert_equivalent(src, &cfg);
        assert_eq!(v, (0..128).sum::<i64>());
    }

    #[test]
    fn one_prefetch_per_address_stream() {
        let src = r#"
            global a[256];
            fn main() {
                var s = 0;
                for (i = 0; i < 256; i = i + 1) { s = s + a[i] + a[i]; }
                return s;
            }
        "#;
        let mut m = module(src);
        // After GCSE the two loads share one address register.
        crate::passes::gcse::run(&mut m.funcs[0]);
        run(&mut m.funcs[0]);
        assert_eq!(prefetch_count(&m.funcs[0]), 1, "{}", m.funcs[0]);
    }
}
