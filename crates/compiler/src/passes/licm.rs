//! Loop-invariant code motion (`-floop-optimize`, Table 1 row 4): "perform
//! simple loop optimizations such as moving constant expressions" out of
//! loops.

use crate::ir::analysis::{liveness, natural_loops, predecessors, Loop};
#[cfg(test)]
use crate::ir::Instr;
use crate::ir::{BlockId, Function, Terminator, VReg};
use std::collections::HashSet;

/// Runs LICM over every natural loop of the function, innermost first.
pub fn run(f: &mut Function) {
    // Loop discovery is repeated after each processed loop because preheader
    // insertion renumbers nothing but adds blocks.
    let loop_headers: Vec<BlockId> = natural_loops(f).iter().map(|l| l.header).collect();
    for header in loop_headers {
        // Re-find the loop (block set may have grown).
        let loops = natural_loops(f);
        let Some(l) = loops.iter().find(|l| l.header == header) else {
            continue;
        };
        let l = l.clone();
        let preheader = ensure_preheader(f, &l);
        hoist(f, &l, preheader);
    }
}

/// Returns the loop's preheader, creating one if necessary: a block that is
/// the unique non-latch predecessor of the header.
pub fn ensure_preheader(f: &mut Function, l: &Loop) -> BlockId {
    let preds = predecessors(f);
    let outside: Vec<BlockId> = preds[l.header.0 as usize]
        .iter()
        .copied()
        .filter(|p| !l.contains(*p))
        .collect();
    if outside.len() == 1 {
        let p = outside[0];
        // An existing block that only jumps to the header qualifies.
        if f.block(p).term == Terminator::Jump(l.header) {
            return p;
        }
    }
    let pre = f.new_block();
    f.block_mut(pre).term = Terminator::Jump(l.header);
    for p in outside {
        f.block_mut(p).term.retarget(l.header, pre);
    }
    pre
}

/// Hoists invariant pure instructions into the preheader until fixpoint.
fn hoist(f: &mut Function, l: &Loop, preheader: BlockId) {
    loop {
        // Registers defined anywhere in the loop.
        let mut defined: HashSet<VReg> = HashSet::new();
        let mut def_counts: std::collections::HashMap<VReg, usize> =
            std::collections::HashMap::new();
        for &b in &l.body {
            for i in &f.block(b).instrs {
                if let Some(d) = i.def() {
                    defined.insert(d);
                    *def_counts.entry(d).or_insert(0) += 1;
                }
            }
        }
        let live = liveness(f);
        // Loop exit blocks (successors outside the loop).
        let exits: Vec<BlockId> = l
            .body
            .iter()
            .flat_map(|&b| f.block(b).term.successors())
            .filter(|s| !l.contains(*s))
            .collect();

        let mut moved = None;
        'search: for &b in &l.body {
            for (idx, i) in f.block(b).instrs.iter().enumerate() {
                if !i.is_pure() {
                    continue;
                }
                let Some(d) = i.def() else { continue };
                // Operands must be invariant.
                if i.uses().iter().any(|u| defined.contains(u)) {
                    continue;
                }
                // Must be the only definition of d in the loop.
                if def_counts.get(&d).copied().unwrap_or(0) != 1 {
                    continue;
                }
                // d must not be live into the header (loop-carried) …
                if live.live_in[l.header.0 as usize].contains(&d) {
                    continue;
                }
                // … and must not be observed after a zero-trip exit.
                if exits
                    .iter()
                    .any(|e| live.live_in[e.0 as usize].contains(&d))
                {
                    continue;
                }
                moved = Some((b, idx));
                break 'search;
            }
        }
        match moved {
            Some((b, idx)) => {
                let instr = f.block_mut(b).instrs.remove(idx);
                f.block_mut(preheader).instrs.push(instr);
            }
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::BinOp;
    use crate::passes::testutil::{assert_equivalent, module};

    fn loop_mul_count(f: &Function) -> usize {
        let loops = natural_loops(f);
        loops
            .iter()
            .flat_map(|l| l.body.iter())
            .map(|&b| {
                f.block(b)
                    .instrs
                    .iter()
                    .filter(|i| matches!(i, Instr::Bin { op: BinOp::Mul, .. }))
                    .count()
            })
            .sum()
    }

    #[test]
    fn hoists_invariant_multiply() {
        let src = r#"
            fn main(n, k) {
                var s = 0;
                for (i = 0; i < n; i = i + 1) {
                    s = s + k * 13;
                }
                return s;
            }
        "#;
        let mut m = module(src);
        assert_eq!(loop_mul_count(&m.funcs[0]), 1);
        run(&mut m.funcs[0]);
        assert_eq!(loop_mul_count(&m.funcs[0]), 0, "{}", m.funcs[0]);
        m.funcs[0].assert_valid();
    }

    #[test]
    fn does_not_hoist_variant_code() {
        let src = r#"
            fn main(n) {
                var s = 0;
                for (i = 0; i < n; i = i + 1) { s = s + i * 2; }
                return s;
            }
        "#;
        let mut m = module(src);
        run(&mut m.funcs[0]);
        assert_eq!(loop_mul_count(&m.funcs[0]), 1, "{}", m.funcs[0]);
    }

    #[test]
    fn does_not_hoist_loads_or_faulting_ops() {
        let src = r#"
            global g[4];
            fn main(n, d) {
                var s = 0;
                for (i = 0; i < n; i = i + 1) {
                    s = s + g[0];
                    s = s + 100 / d;
                }
                return s;
            }
        "#;
        let mut m = module(src);
        run(&mut m.funcs[0]);
        let f = &m.funcs[0];
        let loops = natural_loops(f);
        let in_loop: Vec<&Instr> = loops[0]
            .body
            .iter()
            .flat_map(|&b| f.block(b).instrs.iter())
            .collect();
        assert!(in_loop.iter().any(|i| matches!(i, Instr::Load { .. })));
        assert!(in_loop
            .iter()
            .any(|i| matches!(i, Instr::Bin { op: BinOp::Div, .. })));
    }

    #[test]
    fn preheader_created_once() {
        let src = "fn main(n) { var s = 0; while (s < n) { s = s + 1; } return s; }";
        let mut m = module(src);
        let before = m.funcs[0].blocks.len();
        run(&mut m.funcs[0]);
        let after = m.funcs[0].blocks.len();
        assert!(after <= before + 1);
        m.funcs[0].assert_valid();
    }

    #[test]
    fn licm_preserves_semantics_with_zero_trip_loop() {
        // n = 0: the loop never runs; hoisted code must not change results.
        let src = r#"
            fn compute(n, k) {
                var s = 7;
                for (i = 0; i < n; i = i + 1) { s = s + k * 5; }
                return s;
            }
            fn main() { return compute(0, 3) * 1000 + compute(4, 3); }
        "#;
        let mut cfg = crate::OptConfig::o0();
        cfg.loop_optimize = true;
        let v = assert_equivalent(src, &cfg);
        assert_eq!(v, 7 * 1000 + 7 + 4 * 15);
    }

    #[test]
    fn nested_loops_hoist_to_correct_level() {
        let src = r#"
            fn main(n, k) {
                var s = 0;
                for (i = 0; i < n; i = i + 1) {
                    for (j = 0; j < n; j = j + 1) {
                        s = s + k * 7;
                    }
                }
                return s;
            }
        "#;
        let mut m = module(src);
        run(&mut m.funcs[0]);
        assert_eq!(loop_mul_count(&m.funcs[0]), 0, "{}", m.funcs[0]);
        let mut cfg = crate::OptConfig::o0();
        cfg.loop_optimize = true;
        assert_equivalent(src, &cfg);
    }
}
