//! Induction-variable strength reduction (`-fstrength-reduce`, Table 1
//! row 6).
//!
//! For a basic induction variable `i` (single in-loop definition
//! `i = i ± c`), computations `t = i * k`, `t = i << s` and `t = i + base`
//! are replaced by a new register `t_sr` that is initialized in the
//! preheader and advanced by a constant right after the increment of `i` —
//! turning per-iteration multiplies/shifts into adds and, importantly,
//! turning array address arithmetic into *striding* registers that the
//! prefetch pass recognizes.

use crate::ir::analysis::{natural_loops, Loop};
use crate::ir::{BinOp, BlockId, Function, Instr, Operand, Ty, VReg};
use std::collections::HashMap;

/// Runs strength reduction over every loop, innermost first.
pub fn run(f: &mut Function) {
    let headers: Vec<BlockId> = natural_loops(f).iter().map(|l| l.header).collect();
    for header in headers {
        // Two rounds: the first reduces multiplies/shifts of the IV, the
        // second reduces adds of the registers created by the first round
        // (completing base+offset address chains). Copies left by the
        // previous round are forwarded first so derived computations read
        // the new striding registers directly.
        for _ in 0..2 {
            super::constprop::local_copy_propagation(f);
            let loops = natural_loops(f);
            let Some(l) = loops.iter().find(|l| l.header == header) else {
                break;
            };
            let l = l.clone();
            if !reduce_once(f, &l) {
                break;
            }
        }
    }
}

/// A basic induction variable.
#[derive(Debug, Clone, Copy)]
struct Iv {
    reg: VReg,
    step: i64,
    /// Location of the increment: (block, instruction index).
    def_at: (BlockId, usize),
}

/// Finds basic IVs: registers with exactly one in-loop definition of the
/// form `i = i + c` / `i = i - c` / `i = c + i`.
fn find_basic_ivs(f: &Function, l: &Loop) -> Vec<Iv> {
    let mut def_counts: HashMap<VReg, usize> = HashMap::new();
    for &b in &l.body {
        for i in &f.block(b).instrs {
            if let Some(d) = i.def() {
                *def_counts.entry(d).or_insert(0) += 1;
            }
        }
    }
    let mut ivs = Vec::new();
    for &b in &l.body {
        for (idx, i) in f.block(b).instrs.iter().enumerate() {
            let Instr::Bin { op, dst, lhs, rhs } = i else {
                continue;
            };
            if def_counts.get(dst) != Some(&1) {
                continue;
            }
            let step = match (op, lhs, rhs) {
                (BinOp::Add, Operand::Reg(r), Operand::ConstI(c)) if r == dst => Some(*c),
                (BinOp::Add, Operand::ConstI(c), Operand::Reg(r)) if r == dst => Some(*c),
                (BinOp::Sub, Operand::Reg(r), Operand::ConstI(c)) if r == dst => Some(-*c),
                _ => None,
            };
            if let Some(step) = step {
                ivs.push(Iv {
                    reg: *dst,
                    step,
                    def_at: (b, idx),
                });
            }
        }
    }
    ivs
}

/// Performs at most a handful of reductions for one loop; returns whether
/// anything changed (so the caller can run the second round).
fn reduce_once(f: &mut Function, l: &Loop) -> bool {
    let ivs = find_basic_ivs(f, l);
    if ivs.is_empty() {
        return false;
    }
    let iv_of: HashMap<VReg, Iv> = ivs.iter().map(|iv| (iv.reg, *iv)).collect();

    // Candidate: (block, index, iv, multiplier k, adder a) meaning
    // t = iv * k + a with exactly one of k != 1 / a != 0 coming from the
    // instruction form (Mul/Shl give k, Add gives a).
    struct Candidate {
        at: (BlockId, usize),
        dst: VReg,
        iv: Iv,
        scale: i64,
        offset: i64,
    }
    let mut candidates = Vec::new();
    let mut def_counts: HashMap<VReg, usize> = HashMap::new();
    for &b in &l.body {
        for i in &f.block(b).instrs {
            if let Some(d) = i.def() {
                *def_counts.entry(d).or_insert(0) += 1;
            }
        }
    }
    // Only reduce computations that execute on *every* iteration (their
    // block dominates every latch): a reduced IV advances unconditionally,
    // so reducing conditionally executed math would add per-iteration cost
    // — gcc's profitability model makes the same call.
    let idom = crate::ir::analysis::dominators(f);
    let every_iteration = |b: crate::ir::BlockId| {
        l.latches
            .iter()
            .all(|&latch| crate::ir::analysis::dominates(&idom, b, latch))
    };
    for &b in &l.body {
        if !every_iteration(b) {
            continue;
        }
        for (idx, i) in f.block(b).instrs.iter().enumerate() {
            let Instr::Bin { op, dst, lhs, rhs } = i else {
                continue;
            };
            // The IV increment itself is not a candidate.
            if iv_of.contains_key(dst) {
                continue;
            }
            if def_counts.get(dst) != Some(&1) {
                continue;
            }
            let cand = match (op, lhs, rhs) {
                (BinOp::Mul, Operand::Reg(r), Operand::ConstI(k)) if iv_of.contains_key(r) => {
                    Some((iv_of[r], *k, 0))
                }
                (BinOp::Mul, Operand::ConstI(k), Operand::Reg(r)) if iv_of.contains_key(r) => {
                    Some((iv_of[r], *k, 0))
                }
                (BinOp::Shl, Operand::Reg(r), Operand::ConstI(s))
                    if iv_of.contains_key(r) && (0..32).contains(s) =>
                {
                    Some((iv_of[r], 1i64 << s, 0))
                }
                (BinOp::Add, Operand::Reg(r), Operand::ConstI(a)) if iv_of.contains_key(r) => {
                    Some((iv_of[r], 1, *a))
                }
                (BinOp::Add, Operand::ConstI(a), Operand::Reg(r)) if iv_of.contains_key(r) => {
                    Some((iv_of[r], 1, *a))
                }
                _ => None,
            };
            if let Some((iv, scale, offset)) = cand {
                candidates.push(Candidate {
                    at: (b, idx),
                    dst: *dst,
                    iv,
                    scale,
                    offset,
                });
            }
        }
    }
    if candidates.is_empty() {
        return false;
    }
    // Register-pressure guard (gcc's IV cost model, simplified): each
    // reduction creates a loop-long striding register, so cap the total
    // number of induction variables per loop. Multiplies are reduced first
    // (largest saving), then shifts, then address adds.
    const MAX_IVS_PER_LOOP: usize = 6;
    let budget = MAX_IVS_PER_LOOP.saturating_sub(ivs.len());
    if budget == 0 {
        return false;
    }
    candidates.sort_by_key(|c| match c.scale {
        s if s != 1 && (s <= 0 || !(s as u64).is_power_of_two()) => 0, // true multiplies
        s if s != 1 => 1,                                              // shifts
        _ => 2,                                                        // address adds
    });
    candidates.truncate(budget);

    let preheader = super::licm::ensure_preheader(f, l);
    // Group inserts after each IV increment so indices stay coherent:
    // collect (block, after_index, instrs) and apply back-to-front.
    let mut post_increment_inserts: Vec<(BlockId, usize, Instr)> = Vec::new();
    for c in &candidates {
        let t_sr = f.new_vreg(Ty::I64);
        // Preheader init: t_sr = iv * scale + offset (folded where possible).
        let init_mul = f.new_vreg(Ty::I64);
        f.block_mut(preheader).instrs.push(Instr::Bin {
            op: BinOp::Mul,
            dst: init_mul,
            lhs: Operand::Reg(c.iv.reg),
            rhs: Operand::ConstI(c.scale),
        });
        f.block_mut(preheader).instrs.push(Instr::Bin {
            op: BinOp::Add,
            dst: t_sr,
            lhs: Operand::Reg(init_mul),
            rhs: Operand::ConstI(c.offset),
        });
        // Replace the original computation with a copy.
        let (b, idx) = c.at;
        f.block_mut(b).instrs[idx] = Instr::Copy {
            dst: c.dst,
            src: Operand::Reg(t_sr),
        };
        // Advance t_sr right after the IV increment.
        post_increment_inserts.push((
            c.iv.def_at.0,
            c.iv.def_at.1,
            Instr::Bin {
                op: BinOp::Add,
                dst: t_sr,
                lhs: Operand::Reg(t_sr),
                rhs: Operand::ConstI(c.iv.step.wrapping_mul(c.scale)),
            },
        ));
    }
    // Insert updates after the increments, highest index first per block.
    post_increment_inserts.sort_by_key(|&(b, idx, _)| std::cmp::Reverse((b.0, idx)));
    for (b, idx, instr) in post_increment_inserts {
        f.block_mut(b).instrs.insert(idx + 1, instr);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::analysis;
    use crate::passes::testutil::{assert_equivalent, module};

    fn in_loop_count(f: &Function, pred: impl Fn(&Instr) -> bool) -> usize {
        analysis::natural_loops(f)
            .iter()
            .flat_map(|l| l.body.iter())
            .map(|&b| f.block(b).instrs.iter().filter(|i| pred(i)).count())
            .sum()
    }

    #[test]
    fn replaces_iv_multiply_with_add() {
        let src = r#"
            fn main(n) {
                var s = 0;
                for (i = 0; i < n; i = i + 1) { s = s + i * 24; }
                return s;
            }
        "#;
        let mut m = module(src);
        assert_eq!(
            in_loop_count(&m.funcs[0], |i| matches!(
                i,
                Instr::Bin { op: BinOp::Mul, .. }
            )),
            1
        );
        run(&mut m.funcs[0]);
        assert_eq!(
            in_loop_count(&m.funcs[0], |i| matches!(
                i,
                Instr::Bin { op: BinOp::Mul, .. }
            )),
            0,
            "{}",
            m.funcs[0]
        );
        m.funcs[0].assert_valid();
    }

    #[test]
    fn reduces_array_address_shifts() {
        let src = r#"
            global g[64];
            fn main(n) {
                var s = 0;
                for (i = 0; i < n; i = i + 1) { s = s + g[i]; }
                return s;
            }
        "#;
        let mut m = module(src);
        run(&mut m.funcs[0]);
        assert_eq!(
            in_loop_count(&m.funcs[0], |i| matches!(
                i,
                Instr::Bin { op: BinOp::Shl, .. }
            )),
            0,
            "shift not reduced: {}",
            m.funcs[0]
        );
    }

    #[test]
    fn second_round_reduces_address_add() {
        // After round 1, addr = t_sr + base remains; round 2 turns it into
        // its own striding register, leaving zero non-IV adds on the address
        // path (only the two IV advances).
        let src = r#"
            global g[64];
            fn main(n) {
                var s = 0;
                for (i = 0; i < n; i = i + 1) { s = s + g[i]; }
                return s;
            }
        "#;
        let mut m = module(src);
        run(&mut m.funcs[0]);
        // Loads must now be addressed by a register that is itself an IV.
        let f = &m.funcs[0];
        let loops = analysis::natural_loops(f);
        let ivs: Vec<VReg> = super::find_basic_ivs(f, &loops[0])
            .iter()
            .map(|iv| iv.reg)
            .collect();
        let mut load_addr_regs = Vec::new();
        for &b in &loops[0].body {
            for i in &f.block(b).instrs {
                if let Instr::Load { addr, .. } = i {
                    // Trace through the copy the reduction left behind.
                    if let Some(r) = addr.as_reg() {
                        load_addr_regs.push(r);
                    }
                }
            }
        }
        // Each load address traces to an IV via at most one copy.
        for r in load_addr_regs {
            let mut src_reg = r;
            for &b in &loops[0].body {
                for i in &f.block(b).instrs {
                    if let Instr::Copy {
                        dst,
                        src: Operand::Reg(s),
                    } = i
                    {
                        if *dst == src_reg {
                            src_reg = *s;
                        }
                    }
                }
            }
            assert!(ivs.contains(&src_reg), "load addr {} not an IV: {}", r, f);
        }
    }

    #[test]
    fn semantics_preserved() {
        let src = r#"
            global g[32];
            fn main() {
                for (i = 0; i < 32; i = i + 1) { g[i] = i * 5 + 2; }
                var s = 0;
                for (i = 0; i < 32; i = i + 1) { s = s + g[i] * 3; }
                return s;
            }
        "#;
        let mut cfg = crate::OptConfig::o0();
        cfg.strength_reduce = true;
        let v = assert_equivalent(src, &cfg);
        // sum of (5i+2)*3 for i in 0..32
        let expect: i64 = (0..32).map(|i| (5 * i + 2) * 3).sum();
        assert_eq!(v, expect);
    }

    #[test]
    fn downward_counting_loops_reduce_too() {
        let src = r#"
            fn main(n) {
                var s = 0;
                var i = 100;
                while (i > 0) { s = s + i * 4; i = i - 2; }
                return s;
            }
        "#;
        let mut m = module(src);
        run(&mut m.funcs[0]);
        assert_eq!(
            in_loop_count(&m.funcs[0], |i| matches!(
                i,
                Instr::Bin { op: BinOp::Mul, .. }
            )),
            0,
            "{}",
            m.funcs[0]
        );
        let mut cfg = crate::OptConfig::o0();
        cfg.strength_reduce = true;
        assert_equivalent(src, &cfg);
    }
}
