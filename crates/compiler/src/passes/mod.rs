//! The midend optimization pipeline, driven by the Table 1 flags.
//!
//! Pass order mirrors gcc 4.0's tree/RTL pipeline closely enough for the
//! flags to interact the way the paper observes: inlining first (exposing
//! intraprocedural redundancy), then scalar cleanups, loop optimizations,
//! unrolling (whose duplicated bodies the second GCSE round cleans up) and
//! finally prefetch insertion. Block reordering, scheduling and frame-pointer
//! omission are backend concerns handled in [`crate::codegen`].

pub mod constprop;
pub mod gcse;
pub mod inline;
pub mod licm;
pub mod prefetch;
pub mod strength;
pub mod unroll;

use crate::ir::Module;
use crate::OptConfig;
use emod_telemetry as telemetry;

/// Runs one named pass with telemetry: a `compiler.pass.<name>` timing span
/// plus a `compiler`/`pass` event carrying wall time and the IR
/// instruction-count delta. With telemetry disabled this is exactly one
/// relaxed atomic load around the pass body.
fn run_pass(module: &mut Module, name: &str, pass: impl FnOnce(&mut Module)) {
    if !telemetry::enabled() {
        pass(module);
        return;
    }
    let size_before = module.size();
    let start = std::time::Instant::now();
    {
        let _span = telemetry::span(&format!("compiler.pass.{}", name));
        pass(module);
    }
    let wall_us = start.elapsed().as_nanos() as f64 / 1000.0;
    let size_after = module.size();
    telemetry::event(
        "compiler",
        "pass",
        &[
            ("pass", name.into()),
            ("wall_us", wall_us.into()),
            ("ir_size_before", size_before.into()),
            ("ir_size_after", size_after.into()),
            (
                "ir_size_delta",
                (size_after as i64 - size_before as i64).into(),
            ),
        ],
    );
}

/// One scalar-cleanup round: constprop, copy-prop, GCSE, DCE per function.
fn gcse_round(module: &mut Module) {
    for f in &mut module.funcs {
        constprop::propagate_constants(f);
        constprop::local_copy_propagation(f);
        gcse::run(f);
        constprop::eliminate_dead_code(f);
    }
}

/// Runs every enabled midend pass over the module, in pipeline order.
pub fn run_pipeline(module: &mut Module, config: &OptConfig) {
    if config.inline_functions {
        run_pass(module, "inline", |m| inline::run(m, config));
    }
    if config.gcse {
        run_pass(module, "gcse", gcse_round);
    }
    if config.loop_optimize {
        run_pass(module, "licm", |m| {
            for f in &mut m.funcs {
                licm::run(f);
            }
        });
    }
    if config.strength_reduce {
        run_pass(module, "strength_reduce", |m| {
            for f in &mut m.funcs {
                strength::run(f);
            }
        });
    }
    if config.unroll_loops {
        run_pass(module, "unroll", |m| {
            for f in &mut m.funcs {
                unroll::run(f, config);
            }
        });
    }
    // Second scalar-cleanup round, as in gcc's post-loop GCSE: strength
    // reduction leaves copies and unrolling duplicates address math; when
    // -fgcse is off those leftovers stay — a real flag interaction.
    if config.gcse && (config.strength_reduce || config.unroll_loops || config.loop_optimize) {
        run_pass(module, "gcse2", gcse_round);
    }
    if config.prefetch_loop_arrays {
        run_pass(module, "prefetch", |m| {
            for f in &mut m.funcs {
                prefetch::run(f);
            }
        });
    }
    for f in &module.funcs {
        f.assert_valid();
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::front::parse_and_lower;
    use crate::ir::Module;
    use crate::OptConfig;
    use emod_isa::Emulator;

    /// Lowers `src` to IR (no optimization).
    pub fn module(src: &str) -> Module {
        parse_and_lower(src).unwrap()
    }

    /// Compiles `src` under `config` and runs it, returning the exit value.
    pub fn run(src: &str, config: &OptConfig) -> i64 {
        let prog = crate::compile(src, config).unwrap();
        Emulator::new(&prog)
            .run(50_000_000)
            .expect("program faulted")
    }

    /// Asserts that `src` computes the same result at -O0 and under `config`.
    pub fn assert_equivalent(src: &str, config: &OptConfig) -> i64 {
        let base = run(src, &OptConfig::o0());
        let opt = run(src, config);
        assert_eq!(base, opt, "optimization changed semantics");
        base
    }
}
