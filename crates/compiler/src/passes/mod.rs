//! The midend optimization pipeline, driven by the Table 1 flags.
//!
//! Pass order mirrors gcc 4.0's tree/RTL pipeline closely enough for the
//! flags to interact the way the paper observes: inlining first (exposing
//! intraprocedural redundancy), then scalar cleanups, loop optimizations,
//! unrolling (whose duplicated bodies the second GCSE round cleans up) and
//! finally prefetch insertion. Block reordering, scheduling and frame-pointer
//! omission are backend concerns handled in [`crate::codegen`].

pub mod constprop;
pub mod gcse;
pub mod inline;
pub mod licm;
pub mod prefetch;
pub mod strength;
pub mod unroll;

use crate::ir::Module;
use crate::OptConfig;

/// Runs every enabled midend pass over the module, in pipeline order.
pub fn run_pipeline(module: &mut Module, config: &OptConfig) {
    if config.inline_functions {
        inline::run(module, config);
    }
    if config.gcse {
        for f in &mut module.funcs {
            constprop::propagate_constants(f);
            constprop::local_copy_propagation(f);
            gcse::run(f);
            constprop::eliminate_dead_code(f);
        }
    }
    if config.loop_optimize {
        for f in &mut module.funcs {
            licm::run(f);
        }
    }
    if config.strength_reduce {
        for f in &mut module.funcs {
            strength::run(f);
        }
    }
    if config.unroll_loops {
        for f in &mut module.funcs {
            unroll::run(f, config);
        }
    }
    // Second scalar-cleanup round, as in gcc's post-loop GCSE: strength
    // reduction leaves copies and unrolling duplicates address math; when
    // -fgcse is off those leftovers stay — a real flag interaction.
    if config.gcse && (config.strength_reduce || config.unroll_loops || config.loop_optimize) {
        for f in &mut module.funcs {
            constprop::propagate_constants(f);
            constprop::local_copy_propagation(f);
            gcse::run(f);
            constprop::eliminate_dead_code(f);
        }
    }
    if config.prefetch_loop_arrays {
        for f in &mut module.funcs {
            prefetch::run(f);
        }
    }
    for f in &module.funcs {
        f.assert_valid();
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::front::parse_and_lower;
    use crate::ir::Module;
    use crate::OptConfig;
    use emod_isa::Emulator;

    /// Lowers `src` to IR (no optimization).
    pub fn module(src: &str) -> Module {
        parse_and_lower(src).unwrap()
    }

    /// Compiles `src` under `config` and runs it, returning the exit value.
    pub fn run(src: &str, config: &OptConfig) -> i64 {
        let prog = crate::compile(src, config).unwrap();
        Emulator::new(&prog)
            .run(50_000_000)
            .expect("program faulted")
    }

    /// Asserts that `src` computes the same result at -O0 and under `config`.
    pub fn assert_equivalent(src: &str, config: &OptConfig) -> i64 {
        let base = run(src, &OptConfig::o0());
        let opt = run(src, config);
        assert_eq!(base, opt, "optimization changed semantics");
        base
    }
}
