//! Linear-scan register allocation.
//!
//! Virtual registers get physical registers from caller-saved or
//! callee-saved pools (intervals that span a call must avoid caller-saved
//! registers), or spill to stack slots. `-fomit-frame-pointer` enlarges the
//! integer callee-saved pool by one register (the frame pointer), which is
//! precisely how the flag helps register-pressure-bound code.

use crate::ir::analysis::liveness;
use crate::ir::{BlockId, Function, Instr, Ty, VReg};
use std::collections::HashMap;

/// Where a virtual register lives after allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// A physical integer register (`r<n>`).
    IntReg(u8),
    /// A physical float register (`f<n>`).
    FpReg(u8),
    /// A stack slot index (8 bytes each).
    Slot(u32),
}

/// Caller-saved integer registers available for allocation.
pub const INT_CALLER: &[u8] = &[8, 9, 10, 11, 12, 13, 14, 15];
/// Callee-saved integer registers available for allocation (r30, the frame
/// pointer, is appended when `-fomit-frame-pointer` is on).
pub const INT_CALLEE: &[u8] = &[16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26];
/// Integer scratch registers reserved for spill traffic.
pub const INT_SCRATCH: (u8, u8) = (27, 28);
/// Caller-saved float registers.
pub const FP_CALLER: &[u8] = &[8, 9, 10, 11, 12, 13, 14, 15];
/// Callee-saved float registers.
pub const FP_CALLEE: &[u8] = &[16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29];
/// Float scratch registers reserved for spill traffic. `f0` is additionally
/// reserved as an always-zero register for float moves.
pub const FP_SCRATCH: (u8, u8) = (30, 31);

/// The result of register allocation for one function.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Location of every virtual register that appears in the function.
    pub locs: HashMap<VReg, Loc>,
    /// Number of stack slots used by spills.
    pub slots: u32,
    /// Callee-saved integer registers the function must save/restore.
    pub used_int_callee: Vec<u8>,
    /// Callee-saved float registers the function must save/restore.
    pub used_fp_callee: Vec<u8>,
    /// Whether the function contains any calls (needs `ra` saved).
    pub has_calls: bool,
}

#[derive(Debug, Clone)]
struct Interval {
    reg: VReg,
    ty: Ty,
    start: u32,
    end: u32,
    crosses_call: bool,
    /// Number of static touches (defs + uses) — a proxy for spill cost, so
    /// rarely-touched long ranges are spilled in preference to hot loop
    /// variables.
    uses: u32,
}

impl Interval {
    /// Touches per covered position: the spill-cost density. Long sparse
    /// ranges (striding address registers, rarely-read accumulators) have
    /// low density; short expression temporaries have high density.
    fn density(&self) -> f64 {
        self.uses as f64 / (self.end - self.start).max(1) as f64
    }
}

/// Runs linear scan over `f`, with blocks linearized in `layout` order.
///
/// # Panics
///
/// Panics if `layout` does not cover every reachable block exactly once
/// (callers derive it from the layout pass).
pub fn allocate(f: &Function, layout: &[BlockId], omit_frame_pointer: bool) -> Allocation {
    // 1. Linearize: assign each block a position range.
    let mut block_start: HashMap<BlockId, u32> = HashMap::new();
    let mut block_end: HashMap<BlockId, u32> = HashMap::new();
    let mut pos = 0u32;
    let mut call_positions = Vec::new();
    for &b in layout {
        block_start.insert(b, pos);
        for i in &f.block(b).instrs {
            if matches!(i, Instr::Call { .. }) {
                call_positions.push(pos);
            }
            pos += 1;
        }
        pos += 1; // terminator
        block_end.insert(b, pos);
    }

    // 2. Build intervals from occurrences and per-block liveness.
    let live = liveness(f);
    let mut ranges: HashMap<VReg, (u32, u32, u32)> = HashMap::new();
    let touch = |r: VReg, at: u32, ranges: &mut HashMap<VReg, (u32, u32, u32)>| {
        let e = ranges.entry(r).or_insert((at, at + 1, 0));
        e.0 = e.0.min(at);
        e.1 = e.1.max(at + 1);
        e.2 += 1;
    };
    for &p in &f.params {
        touch(p, 0, &mut ranges);
    }
    for &b in layout {
        let mut at = block_start[&b];
        for i in &f.block(b).instrs {
            if let Some(d) = i.def() {
                touch(d, at, &mut ranges);
            }
            for u in i.uses() {
                touch(u, at, &mut ranges);
            }
            at += 1;
        }
        // Terminator reads.
        match &f.block(b).term {
            crate::ir::Terminator::Branch { cond, .. } => {
                if let Some(r) = cond.as_reg() {
                    touch(r, at, &mut ranges);
                }
            }
            crate::ir::Terminator::Return(v) => {
                if let Some(r) = v.as_reg() {
                    touch(r, at, &mut ranges);
                }
            }
            crate::ir::Terminator::Jump(_) => {}
        }
        // Live-through extension (does not count as a touch).
        for &r in &live.live_in[b.0 as usize] {
            let e = ranges
                .entry(r)
                .or_insert((block_start[&b], block_start[&b] + 1, 0));
            e.0 = e.0.min(block_start[&b]);
            e.1 = e.1.max(block_start[&b] + 1);
        }
        for &r in &live.live_out[b.0 as usize] {
            let at = block_end[&b] - 1;
            let e = ranges.entry(r).or_insert((at, at + 1, 0));
            e.0 = e.0.min(at);
            e.1 = e.1.max(at + 1);
        }
    }

    let mut intervals: Vec<Interval> = ranges
        .into_iter()
        .map(|(reg, (start, end, uses))| Interval {
            reg,
            ty: f.ty(reg),
            start,
            end,
            crosses_call: call_positions.iter().any(|&c| c >= start && c < end),
            uses,
        })
        .collect();
    intervals.sort_by_key(|iv| (iv.start, iv.reg.0));

    // 3. Scan.
    let mut int_callee: Vec<u8> = INT_CALLEE.to_vec();
    if omit_frame_pointer {
        int_callee.push(30);
    }
    let mut scan = Scan {
        free_caller: [INT_CALLER.to_vec(), FP_CALLER.to_vec()],
        free_callee: [int_callee, FP_CALLEE.to_vec()],
        active: Vec::new(),
        locs: HashMap::new(),
        slots: 0,
        used_callee: [Vec::new(), Vec::new()],
    };
    for iv in intervals {
        scan.expire(iv.start);
        scan.place(iv);
    }

    Allocation {
        locs: scan.locs,
        slots: scan.slots,
        used_int_callee: scan.used_callee[0].clone(),
        used_fp_callee: scan.used_callee[1].clone(),
        has_calls: !call_positions.is_empty(),
    }
}

struct Scan {
    /// Free pools indexed by class (0 = int, 1 = fp).
    free_caller: [Vec<u8>; 2],
    free_callee: [Vec<u8>; 2],
    active: Vec<(Interval, Loc)>,
    locs: HashMap<VReg, Loc>,
    slots: u32,
    used_callee: [Vec<u8>; 2],
}

fn class_of(ty: Ty) -> usize {
    match ty {
        Ty::I64 => 0,
        Ty::F64 => 1,
    }
}

impl Scan {
    fn expire(&mut self, now: u32) {
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].0.end <= now {
                let (iv, loc) = self.active.swap_remove(i);
                match loc {
                    Loc::IntReg(r) => self.release(0, r),
                    Loc::FpReg(r) => self.release(1, r),
                    Loc::Slot(_) => {}
                }
                let _ = iv;
            } else {
                i += 1;
            }
        }
    }

    fn release(&mut self, class: usize, r: u8) {
        if INT_CALLER.contains(&r) && class == 0 || FP_CALLER.contains(&r) && class == 1 {
            self.free_caller[class].push(r);
        } else {
            self.free_callee[class].push(r);
        }
    }

    fn take(&mut self, class: usize, crosses_call: bool) -> Option<u8> {
        if crosses_call {
            // Must survive calls: callee-saved only.
            self.free_callee[class].pop().inspect(|&r| {
                if !self.used_callee[class].contains(&r) {
                    self.used_callee[class].push(r);
                }
            })
        } else {
            // Prefer caller-saved; fall back to callee-saved.
            if let Some(r) = self.free_caller[class].pop() {
                return Some(r);
            }
            self.free_callee[class].pop().inspect(|&r| {
                if !self.used_callee[class].contains(&r) {
                    self.used_callee[class].push(r);
                }
            })
        }
    }

    fn place(&mut self, iv: Interval) {
        let class = class_of(iv.ty);
        if let Some(r) = self.take(class, iv.crosses_call) {
            let loc = if class == 0 {
                Loc::IntReg(r)
            } else {
                Loc::FpReg(r)
            };
            self.locs.insert(iv.reg, loc);
            self.active.push((iv, loc));
            return;
        }
        // No register: spill the cheapest eligible active interval — the
        // one with the fewest touches (ties broken toward the furthest
        // end), provided it ends after the current interval and is not
        // hotter than it. Pure furthest-end selection would evict hot loop
        // induction variables in favour of rarely-read long-lived scalars.
        let candidate = self
            .active
            .iter()
            .enumerate()
            .filter(|(_, (a, loc))| {
                class_of(a.ty) == class
                    && a.end > iv.end
                    && match loc {
                        Loc::IntReg(r) => !iv.crosses_call || !INT_CALLER.contains(r),
                        Loc::FpReg(r) => !iv.crosses_call || !FP_CALLER.contains(r),
                        Loc::Slot(_) => false,
                    }
            })
            .min_by(|(_, (a, _)), (_, (b, _))| {
                a.density().total_cmp(&b.density()).then(b.end.cmp(&a.end))
            });
        match candidate {
            Some((idx, (a, _))) if a.density() <= iv.density() => {
                let (victim, loc) = self.active.swap_remove(idx);
                self.locs.insert(victim.reg, Loc::Slot(self.slots));
                self.slots += 1;
                self.locs.insert(iv.reg, loc);
                self.active.push((iv, loc));
            }
            _ => {
                self.locs.insert(iv.reg, Loc::Slot(self.slots));
                self.slots += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::front::parse_and_lower;

    fn alloc_for(src: &str, omit_fp: bool) -> (Function, Allocation) {
        let m = parse_and_lower(src).unwrap();
        let f = m.funcs[0].clone();
        let layout: Vec<BlockId> = f.block_ids().collect();
        let a = allocate(&f, &layout, omit_fp);
        (f, a)
    }

    #[test]
    fn small_function_gets_registers_only() {
        let (f, a) = alloc_for("fn main(x, y) { return x * 2 + y; }", true);
        assert_eq!(a.slots, 0);
        for loc in a.locs.values() {
            assert!(matches!(loc, Loc::IntReg(_)));
        }
        // Every vreg that appears has a location.
        for b in &f.blocks {
            for i in &b.instrs {
                for u in i.uses() {
                    assert!(a.locs.contains_key(&u));
                }
            }
        }
    }

    #[test]
    fn values_across_calls_avoid_caller_saved() {
        let src = r#"
            fn g(x) { return x + 1; }
            fn main(a) {
                var keep = a * 3;
                var r = g(a);
                return keep + r;
            }
        "#;
        let m = parse_and_lower(src).unwrap();
        let main = m.funcs[m.func_index("main").unwrap()].clone();
        let layout: Vec<BlockId> = main.block_ids().collect();
        let a = allocate(&main, &layout, true);
        assert!(a.has_calls);
        // `keep` must not be in a caller-saved register.
        // Find the vreg holding keep: defined by the Mul.
        let keep = main
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .find_map(|i| match i {
                Instr::Bin {
                    op: crate::ir::BinOp::Mul,
                    dst,
                    ..
                } => Some(*dst),
                _ => None,
            })
            .unwrap();
        match a.locs[&keep] {
            Loc::IntReg(r) => assert!(!INT_CALLER.contains(&r), "keep in caller-saved r{}", r),
            Loc::Slot(_) => {}
            Loc::FpReg(_) => panic!("wrong class"),
        }
    }

    #[test]
    fn high_pressure_spills() {
        // 30 simultaneously-live integer values exceed the 19-20 registers.
        let mut decls = String::new();
        let mut uses = String::new();
        for k in 0..30 {
            decls.push_str(&format!("var x{} = p + {};\n", k, k));
            uses.push_str(&format!(" + x{}", k));
        }
        let src = format!("fn main(p) {{ {} return 0 {}; }}", decls, uses);
        let (_, with_fp) = alloc_for(&src, false);
        let (_, without_fp) = alloc_for(&src, true);
        assert!(with_fp.slots > 0, "expected spills under pressure");
        // Omitting the frame pointer frees one register: spills shrink.
        assert!(
            without_fp.slots < with_fp.slots,
            "omit-fp {} vs fp {}",
            without_fp.slots,
            with_fp.slots
        );
    }

    #[test]
    fn float_and_int_pools_are_independent() {
        let src = "fnf main(x: float, n) { var y = x * 2.0; var m = n * 2; return y + float(m); }";
        let (f, a) = alloc_for(src, true);
        for (r, loc) in &a.locs {
            match f.ty(*r) {
                Ty::I64 => assert!(!matches!(loc, Loc::FpReg(_))),
                Ty::F64 => assert!(!matches!(loc, Loc::IntReg(_))),
            }
        }
    }

    #[test]
    fn distinct_registers_for_overlapping_intervals() {
        let (f, a) = alloc_for(
            "fn main(p) { var a = p + 1; var b = p + 2; var c = a * b; return c + a + b; }",
            true,
        );
        // a and b overlap: must differ.
        let mut seen = Vec::new();
        for b in &f.blocks {
            for i in &b.instrs {
                if let Some(d) = i.def() {
                    seen.push(d);
                }
            }
        }
        let locs: Vec<Loc> = seen.iter().map(|r| a.locs[r]).collect();
        // The two adds' destinations must not share a register.
        assert_ne!(locs[0], locs[1]);
    }
}
