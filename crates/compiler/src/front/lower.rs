//! Lowering from the Tinylang AST to the three-address IR, with type
//! checking.

use super::ast::*;
use crate::ir::{
    BinOp, BlockId, CmpOp, FBinOp, Function, Global, Instr, Module, Operand, Terminator, Ty, VReg,
};
use crate::{CompileError, Result};
use std::collections::HashMap;

/// Lowers a parsed program to an IR module.
///
/// Global arrays are laid out sequentially in the data segment, each aligned
/// to a 64-byte cache line. Assignment to an undeclared variable implicitly
/// declares it (with the type of the right-hand side), which keeps kernel
/// sources compact.
///
/// # Errors
///
/// Returns [`CompileError::Semantic`] on type mismatches, unknown names or
/// arity errors.
pub fn lower(ast: &Program) -> Result<Module> {
    // Pass 1: assign global addresses, collect function signatures.
    let mut globals = Vec::new();
    let mut global_map: HashMap<String, (u64, Ty)> = HashMap::new();
    let mut base = emod_isa::DATA_BASE;
    for item in &ast.items {
        if let Item::Global(g) = item {
            let ty = if g.is_float { Ty::F64 } else { Ty::I64 };
            if global_map.insert(g.name.clone(), (base, ty)).is_some() {
                return Err(CompileError::Semantic(format!(
                    "duplicate global `{}`",
                    g.name
                )));
            }
            globals.push(Global {
                name: g.name.clone(),
                len: g.len,
                ty,
                base,
            });
            // Align the next global to a cache line.
            base += (g.len as u64 * 8 + 63) & !63;
        }
    }
    let mut signatures: HashMap<String, (usize, Vec<Ty>, Ty)> = HashMap::new();
    let mut func_decls = Vec::new();
    for item in &ast.items {
        if let Item::Func(f) = item {
            let params: Vec<Ty> = f
                .params
                .iter()
                .map(|p| if p.is_float { Ty::F64 } else { Ty::I64 })
                .collect();
            let ret = if f.returns_float { Ty::F64 } else { Ty::I64 };
            let index = func_decls.len();
            if signatures
                .insert(f.name.clone(), (index, params, ret))
                .is_some()
            {
                return Err(CompileError::Semantic(format!(
                    "duplicate function `{}`",
                    f.name
                )));
            }
            func_decls.push(f);
        }
    }

    // Pass 2: lower bodies.
    let mut funcs = Vec::new();
    for decl in &func_decls {
        let mut ctx = LowerCtx {
            func: Function::new(decl.name.clone()),
            current: BlockId(0),
            vars: HashMap::new(),
            globals: &global_map,
            signatures: &signatures,
            ret_ty: if decl.returns_float { Ty::F64 } else { Ty::I64 },
            terminated: false,
        };
        for p in &decl.params {
            let ty = if p.is_float { Ty::F64 } else { Ty::I64 };
            let r = ctx.func.new_vreg(ty);
            ctx.func.params.push(r);
            ctx.vars.insert(p.name.clone(), r);
        }
        ctx.stmts(&decl.body)?;
        if !ctx.terminated {
            let zero = match ctx.ret_ty {
                Ty::I64 => Operand::ConstI(0),
                Ty::F64 => Operand::ConstF(0.0),
            };
            ctx.func.block_mut(ctx.current).term = Terminator::Return(zero);
        }
        ctx.func.assert_valid();
        funcs.push(ctx.func);
    }
    Ok(Module { funcs, globals })
}

struct LowerCtx<'a> {
    func: Function,
    current: BlockId,
    vars: HashMap<String, VReg>,
    globals: &'a HashMap<String, (u64, Ty)>,
    signatures: &'a HashMap<String, (usize, Vec<Ty>, Ty)>,
    ret_ty: Ty,
    terminated: bool,
}

impl LowerCtx<'_> {
    fn emit(&mut self, i: Instr) {
        self.func.block_mut(self.current).instrs.push(i);
    }

    /// Assigns `val` to the variable register `target`, fusing the copy into
    /// the just-emitted expression when `val` is a fresh temporary — so
    /// `i = i + 1` lowers to `i = Add i, 1` rather than a temp plus a copy
    /// (which would hide induction variables from the loop passes).
    fn assign_to(&mut self, target: VReg, val: Operand) {
        if let Operand::Reg(t) = val {
            if t != target && !self.is_variable(t) {
                if let Some(last) = self.func.block_mut(self.current).instrs.last_mut() {
                    if last.def() == Some(t) {
                        last.set_def(target);
                        return;
                    }
                }
            }
        }
        self.emit(Instr::Copy {
            dst: target,
            src: val,
        });
    }

    /// Whether `r` is bound to a source-level variable or parameter (such
    /// registers may be read elsewhere, so their defs cannot be retargeted).
    fn is_variable(&self, r: VReg) -> bool {
        self.vars.values().any(|&v| v == r) || self.func.params.contains(&r)
    }

    fn set_term(&mut self, t: Terminator) {
        self.func.block_mut(self.current).term = t;
    }

    fn semantic<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(CompileError::Semantic(msg.into()))
    }

    fn stmts(&mut self, body: &[Stmt]) -> Result<()> {
        for s in body {
            if self.terminated {
                // Unreachable code after return: lower into a fresh dead
                // block so names still resolve, then forget it.
                let dead = self.func.new_block();
                self.current = dead;
                self.terminated = false;
            }
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<()> {
        match s {
            Stmt::VarDecl { name, init } => {
                let (val, ty) = self.expr(init)?;
                let r = self.func.new_vreg(ty);
                self.vars.insert(name.clone(), r);
                self.assign_to(r, val);
            }
            Stmt::Assign { name, value } => {
                let (val, ty) = self.expr(value)?;
                match self.vars.get(name) {
                    Some(&r) => {
                        if self.func.ty(r) != ty {
                            return self.semantic(format!("type mismatch assigning to `{}`", name));
                        }
                        self.assign_to(r, val);
                    }
                    None => {
                        // Implicit declaration.
                        let r = self.func.new_vreg(ty);
                        self.vars.insert(name.clone(), r);
                        self.assign_to(r, val);
                    }
                }
            }
            Stmt::StoreIndex { name, index, value } => {
                let (gbase, gty) = match self.globals.get(name) {
                    Some(&g) => g,
                    None => return self.semantic(format!("unknown global `{}`", name)),
                };
                let (val, vty) = self.expr(value)?;
                if vty != gty {
                    return self.semantic(format!("type mismatch storing to `{}`", name));
                }
                let addr = self.index_addr(gbase, index)?;
                self.emit(Instr::Store { addr, value: val });
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let (c, cty) = self.expr(cond)?;
                if cty != Ty::I64 {
                    return self.semantic("if condition must be an integer");
                }
                let then_bb = self.func.new_block();
                let else_bb = self.func.new_block();
                let join_bb = self.func.new_block();
                self.set_term(Terminator::Branch {
                    cond: c,
                    then_bb,
                    else_bb,
                });
                self.current = then_bb;
                self.terminated = false;
                self.stmts(then_body)?;
                if !self.terminated {
                    self.set_term(Terminator::Jump(join_bb));
                }
                self.current = else_bb;
                self.terminated = false;
                self.stmts(else_body)?;
                if !self.terminated {
                    self.set_term(Terminator::Jump(join_bb));
                }
                self.current = join_bb;
                self.terminated = false;
            }
            Stmt::While { cond, body } => {
                self.lower_loop(None, cond, None, body)?;
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.lower_loop(Some(init), cond, Some(step), body)?;
            }
            Stmt::Return(e) => {
                let (v, ty) = self.expr(e)?;
                if ty != self.ret_ty {
                    return self.semantic(format!("return type mismatch in `{}`", self.func.name));
                }
                self.set_term(Terminator::Return(v));
                self.terminated = true;
            }
            Stmt::Expr(e) => {
                let _ = self.expr(e)?;
            }
        }
        Ok(())
    }

    /// Shared lowering for `while` and `for`: init → header(cond) → body
    /// (+step) → back edge; exit continues after the loop.
    fn lower_loop(
        &mut self,
        init: Option<&Stmt>,
        cond: &Expr,
        step: Option<&Stmt>,
        body: &[Stmt],
    ) -> Result<()> {
        if let Some(init) = init {
            self.stmt(init)?;
        }
        let header = self.func.new_block();
        let body_bb = self.func.new_block();
        let exit_bb = self.func.new_block();
        self.set_term(Terminator::Jump(header));
        self.current = header;
        self.terminated = false;
        let (c, cty) = self.expr(cond)?;
        if cty != Ty::I64 {
            return self.semantic("loop condition must be an integer");
        }
        self.set_term(Terminator::Branch {
            cond: c,
            then_bb: body_bb,
            else_bb: exit_bb,
        });
        self.current = body_bb;
        self.terminated = false;
        self.stmts(body)?;
        if let Some(step) = step {
            if self.terminated {
                // `return` inside the body; the step is dead but must still
                // type check — lower it into the dead block.
                let dead = self.func.new_block();
                self.current = dead;
                self.terminated = false;
                self.stmt(step)?;
                self.terminated = true;
            } else {
                self.stmt(step)?;
            }
        }
        if !self.terminated {
            self.set_term(Terminator::Jump(header));
        }
        self.current = exit_bb;
        self.terminated = false;
        Ok(())
    }

    /// Computes `base + (index << 3)` and returns the address operand.
    fn index_addr(&mut self, base: u64, index: &Expr) -> Result<Operand> {
        let (idx, ity) = self.expr(index)?;
        if ity != Ty::I64 {
            return self.semantic("array index must be an integer");
        }
        // Constant-fold the common `arr[const]` case immediately.
        if let Operand::ConstI(k) = idx {
            return Ok(Operand::ConstI(base as i64 + (k << 3)));
        }
        let shifted = self.func.new_vreg(Ty::I64);
        self.emit(Instr::Bin {
            op: BinOp::Shl,
            dst: shifted,
            lhs: idx,
            rhs: Operand::ConstI(3),
        });
        let addr = self.func.new_vreg(Ty::I64);
        self.emit(Instr::Bin {
            op: BinOp::Add,
            dst: addr,
            lhs: Operand::Reg(shifted),
            rhs: Operand::ConstI(base as i64),
        });
        Ok(Operand::Reg(addr))
    }

    fn expr(&mut self, e: &Expr) -> Result<(Operand, Ty)> {
        match e {
            Expr::Int(v) => Ok((Operand::ConstI(*v), Ty::I64)),
            Expr::Float(v) => Ok((Operand::ConstF(*v), Ty::F64)),
            Expr::Var(name) => match self.vars.get(name) {
                Some(&r) => Ok((Operand::Reg(r), self.func.ty(r))),
                None => self.semantic(format!("unknown variable `{}`", name)),
            },
            Expr::Index { name, index } => {
                let (gbase, gty) = match self.globals.get(name) {
                    Some(&g) => g,
                    None => return self.semantic(format!("unknown global `{}`", name)),
                };
                let addr = self.index_addr(gbase, index)?;
                let dst = self.func.new_vreg(gty);
                self.emit(Instr::Load { dst, addr });
                Ok((Operand::Reg(dst), gty))
            }
            Expr::Call { name, args } => {
                let (callee, param_tys, ret) = match self.signatures.get(name) {
                    Some(s) => s.clone(),
                    None => return self.semantic(format!("unknown function `{}`", name)),
                };
                if args.len() != param_tys.len() {
                    return self.semantic(format!(
                        "`{}` expects {} arguments, got {}",
                        name,
                        param_tys.len(),
                        args.len()
                    ));
                }
                let mut lowered = Vec::with_capacity(args.len());
                for (a, want) in args.iter().zip(&param_tys) {
                    let (v, ty) = self.expr(a)?;
                    if ty != *want {
                        return self.semantic(format!("argument type mismatch calling `{}`", name));
                    }
                    lowered.push(v);
                }
                let dst = self.func.new_vreg(ret);
                self.emit(Instr::Call {
                    dst: Some(dst),
                    callee,
                    args: lowered,
                });
                Ok((Operand::Reg(dst), ret))
            }
            Expr::Unary { op, operand } => {
                let (v, ty) = self.expr(operand)?;
                match op {
                    UnaryOp::Neg => match ty {
                        Ty::I64 => {
                            let dst = self.func.new_vreg(Ty::I64);
                            self.emit(Instr::Bin {
                                op: BinOp::Sub,
                                dst,
                                lhs: Operand::ConstI(0),
                                rhs: v,
                            });
                            Ok((Operand::Reg(dst), Ty::I64))
                        }
                        Ty::F64 => {
                            let dst = self.func.new_vreg(Ty::F64);
                            self.emit(Instr::FBin {
                                op: FBinOp::Sub,
                                dst,
                                lhs: Operand::ConstF(0.0),
                                rhs: v,
                            });
                            Ok((Operand::Reg(dst), Ty::F64))
                        }
                    },
                    UnaryOp::Not => {
                        if ty != Ty::I64 {
                            return self.semantic("`!` requires an integer");
                        }
                        let dst = self.func.new_vreg(Ty::I64);
                        self.emit(Instr::Cmp {
                            op: CmpOp::Eq,
                            dst,
                            lhs: v,
                            rhs: Operand::ConstI(0),
                        });
                        Ok((Operand::Reg(dst), Ty::I64))
                    }
                }
            }
            Expr::ToFloat(inner) => {
                let (v, ty) = self.expr(inner)?;
                if ty != Ty::I64 {
                    return self.semantic("float() requires an integer");
                }
                let dst = self.func.new_vreg(Ty::F64);
                self.emit(Instr::IntToFloat { dst, src: v });
                Ok((Operand::Reg(dst), Ty::F64))
            }
            Expr::ToInt(inner) => {
                let (v, ty) = self.expr(inner)?;
                if ty != Ty::F64 {
                    return self.semantic("int() requires a float");
                }
                let dst = self.func.new_vreg(Ty::I64);
                self.emit(Instr::FloatToInt { dst, src: v });
                Ok((Operand::Reg(dst), Ty::I64))
            }
            Expr::Bin { op, lhs, rhs } => self.bin_expr(*op, lhs, rhs),
        }
    }

    fn bin_expr(&mut self, op: BinExprOp, lhs: &Expr, rhs: &Expr) -> Result<(Operand, Ty)> {
        let (l, lt) = self.expr(lhs)?;
        let (r, rt) = self.expr(rhs)?;
        if lt != rt {
            return self.semantic("mixed int/float operands (use float()/int())");
        }
        let is_float = lt == Ty::F64;
        // Comparisons.
        if let Some(cmp) = match op {
            BinExprOp::Lt => Some(CmpOp::Lt),
            BinExprOp::Le => Some(CmpOp::Le),
            BinExprOp::Gt => Some(CmpOp::Gt),
            BinExprOp::Ge => Some(CmpOp::Ge),
            BinExprOp::Eq => Some(CmpOp::Eq),
            BinExprOp::Ne => Some(CmpOp::Ne),
            _ => None,
        } {
            let dst = self.func.new_vreg(Ty::I64);
            let instr = if is_float {
                Instr::FCmp {
                    op: cmp,
                    dst,
                    lhs: l,
                    rhs: r,
                }
            } else {
                Instr::Cmp {
                    op: cmp,
                    dst,
                    lhs: l,
                    rhs: r,
                }
            };
            self.emit(instr);
            return Ok((Operand::Reg(dst), Ty::I64));
        }
        // Logical and/or: normalize both sides to 0/1 then use bit ops.
        if matches!(op, BinExprOp::And | BinExprOp::Or) {
            if is_float {
                return self.semantic("logical operators require integers");
            }
            let ln = self.normalize_bool(l);
            let rn = self.normalize_bool(r);
            let dst = self.func.new_vreg(Ty::I64);
            self.emit(Instr::Bin {
                op: if op == BinExprOp::And {
                    BinOp::And
                } else {
                    BinOp::Or
                },
                dst,
                lhs: ln,
                rhs: rn,
            });
            return Ok((Operand::Reg(dst), Ty::I64));
        }
        if is_float {
            let fop = match op {
                BinExprOp::Add => FBinOp::Add,
                BinExprOp::Sub => FBinOp::Sub,
                BinExprOp::Mul => FBinOp::Mul,
                BinExprOp::Div => FBinOp::Div,
                _ => return self.semantic("operator not defined for floats"),
            };
            let dst = self.func.new_vreg(Ty::F64);
            self.emit(Instr::FBin {
                op: fop,
                dst,
                lhs: l,
                rhs: r,
            });
            Ok((Operand::Reg(dst), Ty::F64))
        } else {
            let iop = match op {
                BinExprOp::Add => BinOp::Add,
                BinExprOp::Sub => BinOp::Sub,
                BinExprOp::Mul => BinOp::Mul,
                BinExprOp::Div => BinOp::Div,
                BinExprOp::Rem => BinOp::Rem,
                BinExprOp::Shl => BinOp::Shl,
                BinExprOp::Shr => BinOp::Shr,
                BinExprOp::BitAnd => BinOp::And,
                BinExprOp::BitOr => BinOp::Or,
                BinExprOp::BitXor => BinOp::Xor,
                _ => unreachable!("comparisons and logicals handled above"),
            };
            let dst = self.func.new_vreg(Ty::I64);
            self.emit(Instr::Bin {
                op: iop,
                dst,
                lhs: l,
                rhs: r,
            });
            Ok((Operand::Reg(dst), Ty::I64))
        }
    }

    /// `x != 0` as a 0/1 value.
    fn normalize_bool(&mut self, v: Operand) -> Operand {
        let dst = self.func.new_vreg(Ty::I64);
        self.emit(Instr::Cmp {
            op: CmpOp::Ne,
            dst,
            lhs: v,
            rhs: Operand::ConstI(0),
        });
        Operand::Reg(dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::front::parse;

    fn lower_src(src: &str) -> Module {
        lower(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn globals_are_cache_line_aligned() {
        let m = lower_src("global a[3]; global b[5]; fn main() { return 0; }");
        assert_eq!(m.globals[0].base % 64, 0);
        assert_eq!(m.globals[1].base % 64, 0);
        assert!(m.globals[1].base >= m.globals[0].base + 24);
    }

    #[test]
    fn while_loop_shape() {
        let m = lower_src("fn main() { var i = 0; while (i < 4) { i = i + 1; } return i; }");
        let f = &m.funcs[0];
        let loops = crate::ir::analysis::natural_loops(f);
        assert_eq!(loops.len(), 1);
    }

    #[test]
    fn for_loop_has_step_in_latch_block() {
        let m = lower_src(
            "fn main() { var s = 0; for (i = 0; i < 4; i = i + 1) { s = s + i; } return s; }",
        );
        let f = &m.funcs[0];
        let loops = crate::ir::analysis::natural_loops(f);
        assert_eq!(loops.len(), 1);
        // The body block (single latch) ends with the IV increment.
        let latch = loops[0].latches[0];
        let last = f.block(latch).instrs.last().unwrap();
        assert!(matches!(last, Instr::Bin { op: BinOp::Add, .. }));
    }

    #[test]
    fn type_errors_are_reported() {
        for src in [
            "fn main() { return 1.5; }",                        // float from int fn
            "fn main() { var x = 1; x = 2.0; return x; }",      // mixed assign
            "fn main() { return 1 + 2.0; }",                    // mixed operands
            "fn main() { return unknown; }",                    // unknown var
            "fn main() { return f(1); }",                       // unknown fn
            "global g[2]; fn main() { g[0] = 1.0; return 0; }", // wrong store ty
        ] {
            let err = lower(&parse(src).unwrap()).unwrap_err();
            assert!(matches!(err, CompileError::Semantic(_)), "{}", src);
        }
    }

    #[test]
    fn call_lowering_checks_arity() {
        let err =
            lower(&parse("fn f(a) { return a; } fn main() { return f(); }").unwrap()).unwrap_err();
        assert!(err.to_string().contains("expects 1"));
    }

    #[test]
    fn constant_index_folds_address() {
        let m = lower_src("global g[4]; fn main() { return g[2]; }");
        let f = &m.funcs[0];
        // Address should be a folded constant: no Shl emitted.
        assert!(!f.blocks[0]
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Bin { op: BinOp::Shl, .. })));
    }

    #[test]
    fn implicit_declaration_in_for_init() {
        let m = lower_src(
            "fn main() { var s = 0; for (i = 0; i < 3; i = i + 1) { s = s + 1; } return s; }",
        );
        m.funcs[0].assert_valid();
    }

    #[test]
    fn logical_ops_normalize() {
        let m = lower_src("fn main() { var a = 5; var b = 0; return a && !b; }");
        let f = &m.funcs[0];
        let cmps = f.blocks[0]
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Cmp { .. }))
            .count();
        assert!(cmps >= 3, "expected normalizing compares, got {}", cmps);
    }
}
