//! Recursive-descent parser for Tinylang.

use super::ast::*;
use super::lexer::{lex, Token, TokenKind};
use crate::{CompileError, Result};

/// Parses a Tinylang source file.
///
/// # Errors
///
/// Returns [`CompileError::Parse`] with a line number on malformed input.
pub fn parse(source: &str) -> Result<Program> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(CompileError::Parse {
            line: self.line(),
            message: message.into(),
        })
    }

    fn eat_punct(&mut self, p: &str) -> Result<()> {
        match self.peek() {
            TokenKind::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => {
                let msg = format!("expected `{}`, found {:?}", p, other);
                self.error(msg)
            }
        }
    }

    fn try_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), TokenKind::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => {
                let msg = format!("expected identifier, found {:?}", other);
                self.error(msg)
            }
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn program(&mut self) -> Result<Program> {
        let mut items = Vec::new();
        while !matches!(self.peek(), TokenKind::Eof) {
            if self.keyword("global") {
                items.push(Item::Global(self.global(false)?));
            } else if self.keyword("globalf") {
                items.push(Item::Global(self.global(true)?));
            } else if self.keyword("fn") {
                items.push(Item::Func(self.func(false)?));
            } else if self.keyword("fnf") {
                items.push(Item::Func(self.func(true)?));
            } else {
                return self.error("expected `global`, `globalf`, `fn` or `fnf`");
            }
        }
        Ok(Program { items })
    }

    fn global(&mut self, is_float: bool) -> Result<GlobalDecl> {
        let name = self.ident()?;
        self.eat_punct("[")?;
        let len = match self.bump() {
            TokenKind::Int(n) if n > 0 => n as usize,
            other => return self.error(format!("expected array length, found {:?}", other)),
        };
        self.eat_punct("]")?;
        self.eat_punct(";")?;
        Ok(GlobalDecl {
            name,
            len,
            is_float,
        })
    }

    fn func(&mut self, returns_float: bool) -> Result<FuncDecl> {
        let name = self.ident()?;
        self.eat_punct("(")?;
        let mut params = Vec::new();
        if !self.try_punct(")") {
            loop {
                let pname = self.ident()?;
                let is_float = if self.try_punct(":") {
                    if !self.keyword("float") {
                        return self.error("expected `float` after `:`");
                    }
                    true
                } else {
                    false
                };
                params.push(ParamDecl {
                    name: pname,
                    is_float,
                });
                if self.try_punct(")") {
                    break;
                }
                self.eat_punct(",")?;
            }
        }
        let body = self.block()?;
        Ok(FuncDecl {
            name,
            params,
            returns_float,
            body,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>> {
        self.eat_punct("{")?;
        let mut stmts = Vec::new();
        while !self.try_punct("}") {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt> {
        if self.keyword("var") {
            let name = self.ident()?;
            self.eat_punct("=")?;
            let init = self.expr()?;
            self.eat_punct(";")?;
            return Ok(Stmt::VarDecl { name, init });
        }
        if self.keyword("return") {
            let value = self.expr()?;
            self.eat_punct(";")?;
            return Ok(Stmt::Return(value));
        }
        if self.keyword("if") {
            return self.if_stmt();
        }
        if self.keyword("while") {
            self.eat_punct("(")?;
            let cond = self.expr()?;
            self.eat_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.keyword("for") {
            self.eat_punct("(")?;
            let init = self.simple_stmt()?;
            self.eat_punct(";")?;
            let cond = self.expr()?;
            self.eat_punct(";")?;
            let step = self.simple_stmt()?;
            self.eat_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::For {
                init: Box::new(init),
                cond,
                step: Box::new(step),
                body,
            });
        }
        // Assignment, array store or expression statement.
        let s = self.simple_stmt()?;
        self.eat_punct(";")?;
        Ok(s)
    }

    /// Parses an `if` statement from just after the `if` keyword;
    /// `else if` chains recurse into a nested single-statement else.
    fn if_stmt(&mut self) -> Result<Stmt> {
        self.eat_punct("(")?;
        let cond = self.expr()?;
        self.eat_punct(")")?;
        let then_body = self.block()?;
        let else_body = if self.keyword("else") {
            if self.keyword("if") {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
        })
    }

    /// A statement without the trailing semicolon (for-loop slots).
    fn simple_stmt(&mut self) -> Result<Stmt> {
        if self.keyword("var") {
            let name = self.ident()?;
            self.eat_punct("=")?;
            let init = self.expr()?;
            return Ok(Stmt::VarDecl { name, init });
        }
        if let TokenKind::Ident(name) = self.peek().clone() {
            // Lookahead for `name =`, `name[...] =` or a bare call.
            let save = self.pos;
            self.bump();
            if self.try_punct("=") {
                let value = self.expr()?;
                return Ok(Stmt::Assign { name, value });
            }
            if self.try_punct("[") {
                let index = self.expr()?;
                self.eat_punct("]")?;
                if self.try_punct("=") {
                    let value = self.expr()?;
                    return Ok(Stmt::StoreIndex { name, index, value });
                }
            }
            self.pos = save;
        }
        let e = self.expr()?;
        Ok(Stmt::Expr(e))
    }

    fn expr(&mut self) -> Result<Expr> {
        self.binary(0)
    }

    /// Precedence-climbing over binary operators.
    fn binary(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                TokenKind::Punct("||") => (BinExprOp::Or, 1),
                TokenKind::Punct("&&") => (BinExprOp::And, 2),
                TokenKind::Punct("|") => (BinExprOp::BitOr, 3),
                TokenKind::Punct("^") => (BinExprOp::BitXor, 4),
                TokenKind::Punct("&") => (BinExprOp::BitAnd, 5),
                TokenKind::Punct("==") => (BinExprOp::Eq, 6),
                TokenKind::Punct("!=") => (BinExprOp::Ne, 6),
                TokenKind::Punct("<") => (BinExprOp::Lt, 7),
                TokenKind::Punct("<=") => (BinExprOp::Le, 7),
                TokenKind::Punct(">") => (BinExprOp::Gt, 7),
                TokenKind::Punct(">=") => (BinExprOp::Ge, 7),
                TokenKind::Punct("<<") => (BinExprOp::Shl, 8),
                TokenKind::Punct(">>") => (BinExprOp::Shr, 8),
                TokenKind::Punct("+") => (BinExprOp::Add, 9),
                TokenKind::Punct("-") => (BinExprOp::Sub, 9),
                TokenKind::Punct("*") => (BinExprOp::Mul, 10),
                TokenKind::Punct("/") => (BinExprOp::Div, 10),
                TokenKind::Punct("%") => (BinExprOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.try_punct("-") {
            let operand = self.unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                operand: Box::new(operand),
            });
        }
        if self.try_punct("!") {
            let operand = self.unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(operand),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::Float(v))
            }
            TokenKind::Punct("(") => {
                self.bump();
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.try_punct("(") {
                    let mut args = Vec::new();
                    if !self.try_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.try_punct(")") {
                                break;
                            }
                            self.eat_punct(",")?;
                        }
                    }
                    // Conversion intrinsics.
                    if name == "float" {
                        if args.len() != 1 {
                            return self.error("float() takes one argument");
                        }
                        return Ok(Expr::ToFloat(Box::new(args.remove(0))));
                    }
                    if name == "int" {
                        if args.len() != 1 {
                            return self.error("int() takes one argument");
                        }
                        return Ok(Expr::ToInt(Box::new(args.remove(0))));
                    }
                    return Ok(Expr::Call { name, args });
                }
                if self.try_punct("[") {
                    let index = self.expr()?;
                    self.eat_punct("]")?;
                    return Ok(Expr::Index {
                        name,
                        index: Box::new(index),
                    });
                }
                Ok(Expr::Var(name))
            }
            other => {
                let msg = format!("expected expression, found {:?}", other);
                self.error(msg)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_global_and_function() {
        let p = parse("global a[10];\nfn main() { return a[3]; }").unwrap();
        assert_eq!(p.items.len(), 2);
        match &p.items[0] {
            Item::Global(g) => {
                assert_eq!(g.name, "a");
                assert_eq!(g.len, 10);
                assert!(!g.is_float);
            }
            other => panic!("expected global, got {:?}", other),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("fn main() { return 1 + 2 * 3; }").unwrap();
        let Item::Func(f) = &p.items[0] else { panic!() };
        let Stmt::Return(Expr::Bin { op, rhs, .. }) = &f.body[0] else {
            panic!()
        };
        assert_eq!(*op, BinExprOp::Add);
        assert!(matches!(
            **rhs,
            Expr::Bin {
                op: BinExprOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn parses_for_and_while() {
        let src = r#"
            fn main() {
                var s = 0;
                for (i = 0; i < 10; i = i + 1) { s = s + i; }
                while (s > 0) { s = s - 3; }
                return s;
            }
        "#;
        let p = parse(src).unwrap();
        let Item::Func(f) = &p.items[0] else { panic!() };
        assert!(matches!(f.body[1], Stmt::For { .. }));
        assert!(matches!(f.body[2], Stmt::While { .. }));
    }

    #[test]
    fn parses_else_if_chain() {
        let src = "fn main() { if (1) { return 1; } else if (2) { return 2; } else { return 3; } }";
        let p = parse(src).unwrap();
        let Item::Func(f) = &p.items[0] else { panic!() };
        let Stmt::If { else_body, .. } = &f.body[0] else {
            panic!()
        };
        assert!(matches!(else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn parses_float_params_and_fnf() {
        let p = parse("fnf scale(x: float, k) { return x * float(k); }").unwrap();
        let Item::Func(f) = &p.items[0] else { panic!() };
        assert!(f.returns_float);
        assert!(f.params[0].is_float);
        assert!(!f.params[1].is_float);
    }

    #[test]
    fn conversion_intrinsics() {
        let p = parse("fn main() { return int(float(3) * 2.0); }").unwrap();
        let Item::Func(f) = &p.items[0] else { panic!() };
        assert!(matches!(f.body[0], Stmt::Return(Expr::ToInt(_))));
    }

    #[test]
    fn array_store_statement() {
        let p = parse("global g[4]; fn main() { g[1] = 5; return g[1]; }").unwrap();
        let Item::Func(f) = &p.items[1] else { panic!() };
        assert!(matches!(f.body[0], Stmt::StoreIndex { .. }));
    }

    #[test]
    fn error_reports_line() {
        let err = parse("fn main() {\n return $; \n}").unwrap_err();
        match err {
            CompileError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn call_statement() {
        let p = parse("fn f() { return 0; } fn main() { f(); return 0; }").unwrap();
        let Item::Func(f) = &p.items[1] else { panic!() };
        assert!(matches!(f.body[0], Stmt::Expr(Expr::Call { .. })));
    }
}
