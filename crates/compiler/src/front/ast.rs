//! Abstract syntax for Tinylang.

/// A whole source file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A global array declaration.
    Global(GlobalDecl),
    /// A function definition.
    Func(FuncDecl),
}

/// `global name[len];` (i64) or `globalf name[len];` (f64).
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Array name.
    pub name: String,
    /// Element count.
    pub len: usize,
    /// Whether elements are floats.
    pub is_float: bool,
}

/// A function parameter: integer by default, float when declared
/// `name: float`.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// Parameter name.
    pub name: String,
    /// Whether the parameter is a float.
    pub is_float: bool,
}

/// `fn name(params) { … }` (int-returning) or `fnf …` (float-returning).
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<ParamDecl>,
    /// Whether the function returns a float.
    pub returns_float: bool,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var name = expr;` — declares a local; its type is the initializer's.
    VarDecl { name: String, init: Expr },
    /// `name = expr;`
    Assign { name: String, value: Expr },
    /// `name[index] = expr;`
    StoreIndex {
        name: String,
        index: Expr,
        value: Expr,
    },
    /// `if (cond) { … } else { … }`
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    /// `while (cond) { … }`
    While { cond: Expr, body: Vec<Stmt> },
    /// `for (name = init; cond; name = step) { … }` — sugar handled in the
    /// parser by desugaring into init + while, kept structured here so the
    /// lowering can form canonical counted loops.
    For {
        init: Box<Stmt>,
        cond: Expr,
        step: Box<Stmt>,
        body: Vec<Stmt>,
    },
    /// `return expr;`
    Return(Expr),
    /// An expression evaluated for effect (a call).
    Expr(Expr),
}

/// Binary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinExprOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    /// Logical and (operands normalized to 0/1, not short-circuit).
    And,
    /// Logical or.
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!x` is `x == 0`).
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Variable reference.
    Var(String),
    /// Global array element read.
    Index { name: String, index: Box<Expr> },
    /// Function call.
    Call { name: String, args: Vec<Expr> },
    /// Binary operation.
    Bin {
        op: BinExprOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary { op: UnaryOp, operand: Box<Expr> },
    /// `float(e)` — int to float conversion.
    ToFloat(Box<Expr>),
    /// `int(e)` — float to int conversion.
    ToInt(Box<Expr>),
}
