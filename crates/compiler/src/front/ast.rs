//! Abstract syntax for Tinylang.

/// A whole source file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A global array declaration.
    Global(GlobalDecl),
    /// A function definition.
    Func(FuncDecl),
}

/// `global name[len];` (i64) or `globalf name[len];` (f64).
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Array name.
    pub name: String,
    /// Element count.
    pub len: usize,
    /// Whether elements are floats.
    pub is_float: bool,
}

/// A function parameter: integer by default, float when declared
/// `name: float`.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// Parameter name.
    pub name: String,
    /// Whether the parameter is a float.
    pub is_float: bool,
}

/// `fn name(params) { … }` (int-returning) or `fnf …` (float-returning).
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<ParamDecl>,
    /// Whether the function returns a float.
    pub returns_float: bool,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var name = expr;` — declares a local; its type is the initializer's.
    VarDecl {
        /// Local name.
        name: String,
        /// Initializer expression.
        init: Expr,
    },
    /// `name = expr;`
    Assign {
        /// Local name.
        name: String,
        /// Assigned expression.
        value: Expr,
    },
    /// `name[index] = expr;`
    StoreIndex {
        /// Global array name.
        name: String,
        /// Element index expression.
        index: Expr,
        /// Stored expression.
        value: Expr,
    },
    /// `if (cond) { … } else { … }`
    If {
        /// The condition.
        cond: Expr,
        /// Then-branch statements.
        then_body: Vec<Stmt>,
        /// Else-branch statements (empty when no `else`).
        else_body: Vec<Stmt>,
    },
    /// `while (cond) { … }`
    While {
        /// The loop condition.
        cond: Expr,
        /// Loop-body statements.
        body: Vec<Stmt>,
    },
    /// `for (name = init; cond; name = step) { … }` — sugar handled in the
    /// parser by desugaring into init + while, kept structured here so the
    /// lowering can form canonical counted loops.
    For {
        /// Induction-variable initialization.
        init: Box<Stmt>,
        /// The loop condition.
        cond: Expr,
        /// Induction-variable step.
        step: Box<Stmt>,
        /// Loop-body statements.
        body: Vec<Stmt>,
    },
    /// `return expr;`
    Return(Expr),
    /// An expression evaluated for effect (a call).
    Expr(Expr),
}

/// Binary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinExprOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Rem,
    /// Shift left.
    Shl,
    /// Shift right.
    Shr,
    /// Bitwise and.
    BitAnd,
    /// Bitwise or.
    BitOr,
    /// Bitwise xor.
    BitXor,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Logical and (operands normalized to 0/1, not short-circuit).
    And,
    /// Logical or.
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!x` is `x == 0`).
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Variable reference.
    Var(String),
    /// Global array element read.
    Index {
        /// Global array name.
        name: String,
        /// Element index expression.
        index: Box<Expr>,
    },
    /// Function call.
    Call {
        /// Callee name.
        name: String,
        /// Argument expressions, in order.
        args: Vec<Expr>,
    },
    /// Binary operation.
    Bin {
        /// The operator.
        op: BinExprOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        operand: Box<Expr>,
    },
    /// `float(e)` — int to float conversion.
    ToFloat(Box<Expr>),
    /// `int(e)` — float to int conversion.
    ToInt(Box<Expr>),
}
