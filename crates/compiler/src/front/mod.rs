//! Tinylang frontend: lexing, parsing, type checking and lowering to IR.
//!
//! Tinylang is the small C-like language the workload programs are written
//! in — playing the role of the SPEC CPU2000 C sources in the paper's setup.
//! It has 64-bit integer and float scalars, global arrays, functions,
//! `if`/`while`/`for` control flow and explicit `int()`/`float()`
//! conversions.
//!
//! ```text
//! global table[1024];
//!
//! fn main() {
//!     var sum = 0;
//!     for (i = 0; i < 1024; i = i + 1) {
//!         table[i] = i * 3;
//!         sum = sum + table[i];
//!     }
//!     return sum;
//! }
//! ```

mod ast;
mod lexer;
mod lower;
mod parser;

pub use ast::{
    BinExprOp, Expr, FuncDecl, GlobalDecl, Item, ParamDecl, Program as AstProgram, Stmt, UnaryOp,
};
pub use lexer::{lex, Token, TokenKind};
pub use parser::parse;

use crate::{ir, Result};

/// Parses and lowers Tinylang source to an IR [`ir::Module`].
///
/// # Errors
///
/// Returns [`crate::CompileError`] on lexical, syntactic or semantic errors.
pub fn parse_and_lower(source: &str) -> Result<ir::Module> {
    let ast = parse(source)?;
    lower::lower(&ast)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_lowering_produces_main() {
        let m = parse_and_lower("fn main() { return 1; }").unwrap();
        assert_eq!(m.func_index("main"), Some(0));
        m.funcs[0].assert_valid();
    }
}
