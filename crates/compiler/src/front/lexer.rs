//! Hand-written lexer for Tinylang.

use crate::{CompileError, Result};

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Integer literal.
    Int(i64),
    /// Float literal (contains `.` or exponent).
    Float(f64),
    /// Identifier or keyword.
    Ident(String),
    /// One of the fixed punctuation/operator spellings.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

const PUNCTS: &[&str] = &[
    // Two-character operators must come first for maximal munch.
    "<=", ">=", "==", "!=", "&&", "||", "<<", ">>", "(", ")", "{", "}", "[", "]", ";", ",", "=",
    "<", ">", "+", "-", "*", "/", "%", "&", "|", "^", "!", ":",
];

/// Tokenizes `source`.
///
/// # Errors
///
/// Returns [`CompileError::Parse`] on unknown characters or malformed
/// numeric literals.
pub fn lex(source: &str) -> Result<Vec<Token>> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < bytes.len()
                && (bytes[i].is_ascii_digit()
                    || bytes[i] == b'.'
                    || bytes[i] == b'e'
                    || bytes[i] == b'E'
                    || ((bytes[i] == b'+' || bytes[i] == b'-')
                        && i > start
                        && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
            {
                if bytes[i] == b'.' || bytes[i] == b'e' || bytes[i] == b'E' {
                    is_float = true;
                }
                i += 1;
            }
            let text = &source[start..i];
            let kind = if is_float {
                TokenKind::Float(text.parse().map_err(|_| CompileError::Parse {
                    line,
                    message: format!("bad float literal `{}`", text),
                })?)
            } else {
                TokenKind::Int(text.parse().map_err(|_| CompileError::Parse {
                    line,
                    message: format!("bad integer literal `{}`", text),
                })?)
            };
            tokens.push(Token { kind, line });
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident(source[start..i].to_string()),
                line,
            });
            continue;
        }
        for p in PUNCTS {
            if source[i..].starts_with(p) {
                tokens.push(Token {
                    kind: TokenKind::Punct(p),
                    line,
                });
                i += p.len();
                continue 'outer;
            }
        }
        return Err(CompileError::Parse {
            line,
            message: format!("unexpected character `{}`", c),
        });
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn numbers_and_idents() {
        assert_eq!(
            kinds("x1 42 3.5"),
            vec![
                TokenKind::Ident("x1".into()),
                TokenKind::Int(42),
                TokenKind::Float(3.5),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(
            kinds("1e3 2.5e-2"),
            vec![
                TokenKind::Float(1000.0),
                TokenKind::Float(0.025),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn maximal_munch_operators() {
        assert_eq!(
            kinds("<= < << == ="),
            vec![
                TokenKind::Punct("<="),
                TokenKind::Punct("<"),
                TokenKind::Punct("<<"),
                TokenKind::Punct("=="),
                TokenKind::Punct("="),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let toks = lex("a // comment\nb").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn unknown_character_errors_with_line() {
        let err = lex("a\n@").unwrap_err();
        match err {
            CompileError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected: {:?}", other),
        }
    }
}
