//! The 14 optimization flags and heuristics of the paper's Table 1.

/// Compiler configuration: one field per row of the paper's Table 1, with the
/// paper's ranges and defaults.
///
/// | # | Parameter | Range |
/// |---|-----------|-------|
/// | 1 | `inline_functions` | 0/1 |
/// | 2 | `unroll_loops` | 0/1 |
/// | 3 | `schedule_insns2` | 0/1 |
/// | 4 | `loop_optimize` | 0/1 |
/// | 5 | `gcse` | 0/1 |
/// | 6 | `strength_reduce` | 0/1 |
/// | 7 | `omit_frame_pointer` | 0/1 |
/// | 8 | `reorder_blocks` | 0/1 |
/// | 9 | `prefetch_loop_arrays` | 0/1 |
/// | 10 | `max_inline_insns_auto` | 50–150 |
/// | 11 | `inline_unit_growth` | 25–75 (%) |
/// | 12 | `inline_call_cost` | 12–20 |
/// | 13 | `max_unroll_times` | 4–12 |
/// | 14 | `max_unrolled_insns` | 100–300 |
///
/// # Examples
///
/// ```
/// use emod_compiler::OptConfig;
///
/// let mut cfg = OptConfig::o2();
/// cfg.unroll_loops = true;
/// cfg.max_unroll_times = 8;
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OptConfig {
    /// `-finline-functions`: inline simple functions into their callers.
    pub inline_functions: bool,
    /// `-funroll-loops`: unroll loops whose iteration pattern is recognized.
    pub unroll_loops: bool,
    /// `-fschedule-insns2`: post-register-allocation list scheduling.
    pub schedule_insns2: bool,
    /// `-floop-optimize`: loop-invariant code motion and test simplification.
    pub loop_optimize: bool,
    /// `-fgcse`: global common subexpression elimination, plus constant and
    /// copy propagation.
    pub gcse: bool,
    /// `-fstrength-reduce`: induction-variable strength reduction.
    pub strength_reduce: bool,
    /// `-fomit-frame-pointer`: free the frame pointer register when the
    /// frame is addressable from the stack pointer.
    pub omit_frame_pointer: bool,
    /// `-freorder-blocks`: lay out blocks to reduce taken branches and
    /// improve code locality.
    pub reorder_blocks: bool,
    /// `-fprefetch-loop-arrays`: emit prefetches for strided array accesses
    /// in loops.
    pub prefetch_loop_arrays: bool,
    /// Maximum callee size (IR instructions) eligible for automatic inlining.
    pub max_inline_insns_auto: u32,
    /// Maximum overall growth of the compilation unit due to inlining, in
    /// percent of the pre-inlining size.
    pub inline_unit_growth: u32,
    /// Cost of a call relative to a simple computation; call sites whose
    /// callees are too large relative to this saving are skipped.
    pub inline_call_cost: u32,
    /// Maximum number of times a single loop is unrolled.
    pub max_unroll_times: u32,
    /// Maximum size (IR instructions) of the fully unrolled loop body.
    pub max_unrolled_insns: u32,
}

impl OptConfig {
    /// `-O0`: everything off; heuristics at the paper's defaults.
    pub fn o0() -> Self {
        OptConfig {
            inline_functions: false,
            unroll_loops: false,
            schedule_insns2: false,
            loop_optimize: false,
            gcse: false,
            strength_reduce: false,
            omit_frame_pointer: false,
            reorder_blocks: false,
            prefetch_loop_arrays: false,
            max_inline_insns_auto: 100,
            inline_unit_growth: 50,
            inline_call_cost: 16,
            max_unroll_times: 8,
            max_unrolled_insns: 200,
        }
    }

    /// `-O2`-like baseline: the classic scalar optimizations, no inlining of
    /// non-trivial functions, no unrolling, no prefetch (mirrors gcc 4.0 -O2).
    pub fn o2() -> Self {
        OptConfig {
            schedule_insns2: true,
            loop_optimize: true,
            gcse: true,
            strength_reduce: true,
            omit_frame_pointer: true,
            reorder_blocks: true,
            ..OptConfig::o0()
        }
    }

    /// `-O3`-like: `-O2` plus automatic inlining and prefetching (the paper's
    /// Table 6 lists the default O3 vector as 1/0/1/1/1/1/1/1/1 with default
    /// heuristic values).
    pub fn o3() -> Self {
        OptConfig {
            inline_functions: true,
            prefetch_loop_arrays: true,
            ..OptConfig::o2()
        }
    }

    /// Builds a config from the paper's 14-element design-point encoding
    /// (flags as 0/1 in Table 1 order, then the 5 heuristic values).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != 14`.
    pub fn from_design_values(values: &[f64]) -> Self {
        assert_eq!(values.len(), 14, "expected 14 compiler parameters");
        let flag = |v: f64| v >= 0.5;
        OptConfig {
            inline_functions: flag(values[0]),
            unroll_loops: flag(values[1]),
            schedule_insns2: flag(values[2]),
            loop_optimize: flag(values[3]),
            gcse: flag(values[4]),
            strength_reduce: flag(values[5]),
            omit_frame_pointer: flag(values[6]),
            reorder_blocks: flag(values[7]),
            prefetch_loop_arrays: flag(values[8]),
            max_inline_insns_auto: values[9].round() as u32,
            inline_unit_growth: values[10].round() as u32,
            inline_call_cost: values[11].round() as u32,
            max_unroll_times: values[12].round() as u32,
            max_unrolled_insns: values[13].round() as u32,
        }
    }

    /// The inverse of [`OptConfig::from_design_values`].
    pub fn to_design_values(&self) -> Vec<f64> {
        vec![
            self.inline_functions as u8 as f64,
            self.unroll_loops as u8 as f64,
            self.schedule_insns2 as u8 as f64,
            self.loop_optimize as u8 as f64,
            self.gcse as u8 as f64,
            self.strength_reduce as u8 as f64,
            self.omit_frame_pointer as u8 as f64,
            self.reorder_blocks as u8 as f64,
            self.prefetch_loop_arrays as u8 as f64,
            self.max_inline_insns_auto as f64,
            self.inline_unit_growth as f64,
            self.inline_call_cost as f64,
            self.max_unroll_times as f64,
            self.max_unrolled_insns as f64,
        ]
    }

    /// Checks heuristic values against the paper's Table 1 ranges.
    ///
    /// # Errors
    ///
    /// Returns a message naming the out-of-range heuristic.
    pub fn validate(&self) -> std::result::Result<(), String> {
        let checks = [
            ("max-inline-insns-auto", self.max_inline_insns_auto, 50, 150),
            ("inline-unit-growth", self.inline_unit_growth, 25, 75),
            ("inline-call-cost", self.inline_call_cost, 12, 20),
            ("max-unroll-times", self.max_unroll_times, 4, 12),
            ("max-unrolled-insns", self.max_unrolled_insns, 100, 300),
        ];
        for (name, v, lo, hi) in checks {
            if v < lo || v > hi {
                return Err(format!("{} = {} outside [{}, {}]", name, v, lo, hi));
            }
        }
        Ok(())
    }
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig::o2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in [OptConfig::o0(), OptConfig::o2(), OptConfig::o3()] {
            assert!(cfg.validate().is_ok());
        }
    }

    #[test]
    fn o3_is_o2_plus_inline_prefetch() {
        let o2 = OptConfig::o2();
        let o3 = OptConfig::o3();
        assert!(!o2.inline_functions && o3.inline_functions);
        assert!(!o2.prefetch_loop_arrays && o3.prefetch_loop_arrays);
        assert_eq!(o2.gcse, o3.gcse);
    }

    #[test]
    fn design_value_roundtrip() {
        let cfg = OptConfig::o3();
        let vals = cfg.to_design_values();
        assert_eq!(vals.len(), 14);
        assert_eq!(OptConfig::from_design_values(&vals), cfg);
    }

    #[test]
    fn validate_catches_out_of_range() {
        let mut cfg = OptConfig::o2();
        cfg.max_unroll_times = 99;
        assert!(cfg.validate().unwrap_err().contains("max-unroll-times"));
    }
}
