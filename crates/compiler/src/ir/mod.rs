//! The compiler's intermediate representation: a control-flow graph of
//! basic blocks holding three-address instructions over virtual registers.
//!
//! The IR is deliberately *not* SSA — like gcc 4.0's RTL (the level the
//! paper's flags mostly operate at), virtual registers are mutable, which
//! keeps loop transformations (unrolling in particular) simple and faithful.

pub mod analysis;

use std::collections::HashMap;
use std::fmt;

/// A virtual register index, unique within one [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(pub u32);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A basic-block index within one [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Value types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 64-bit signed integer.
    I64,
    /// 64-bit IEEE float.
    F64,
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// A virtual register.
    Reg(VReg),
    /// An integer constant (also used for global base addresses).
    ConstI(i64),
    /// A float constant.
    ConstF(f64),
}

impl Operand {
    /// The register, if the operand is one.
    pub fn as_reg(&self) -> Option<VReg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// The integer constant, if the operand is one.
    pub fn as_const_i(&self) -> Option<i64> {
        match self {
            Operand::ConstI(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{}", r),
            Operand::ConstI(v) => write!(f, "{}", v),
            Operand::ConstF(v) => write!(f, "{:?}f", v),
        }
    }
}

/// Integer binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division (faults on a zero divisor).
    Div,
    /// Remainder (faults on a zero divisor).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
}

impl BinOp {
    /// Whether `a op b == b op a`.
    pub fn commutative(&self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }

    /// Whether the operator can fault (divide by zero) and therefore must
    /// not be hoisted speculatively.
    pub fn can_fault(&self) -> bool {
        matches!(self, BinOp::Div | BinOp::Rem)
    }
}

/// Float binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FBinOp {
    /// Float addition.
    Add,
    /// Float subtraction.
    Sub,
    /// Float multiplication.
    Mul,
    /// Float division.
    Div,
}

/// Comparison predicates (used for both integer and float compares).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
}

impl CmpOp {
    /// The predicate with operands swapped (`a < b` ⇔ `b > a`).
    pub fn swapped(&self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }
}

/// A three-address instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = lhs <op> rhs` (integer).
    Bin {
        /// The operator.
        op: BinOp,
        /// Destination register.
        dst: VReg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = lhs <op> rhs` (float).
    FBin {
        /// The operator.
        op: FBinOp,
        /// Destination register.
        dst: VReg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = (lhs <op> rhs) as i64` (integer compare).
    Cmp {
        /// The predicate.
        op: CmpOp,
        /// Destination register.
        dst: VReg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = (lhs <op> rhs) as i64` (float compare).
    FCmp {
        /// The predicate.
        op: CmpOp,
        /// Destination register.
        dst: VReg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = src` (register or constant move; type from `dst`).
    Copy {
        /// Destination register.
        dst: VReg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = src as f64`.
    IntToFloat {
        /// Destination register.
        dst: VReg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = src as i64` (truncating).
    FloatToInt {
        /// Destination register.
        dst: VReg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = mem64[addr]`; `dst`'s type selects integer vs float load.
    Load {
        /// Destination register.
        dst: VReg,
        /// Byte-address operand.
        addr: Operand,
    },
    /// `mem64[addr] = value`.
    Store {
        /// Byte-address operand.
        addr: Operand,
        /// Value to store.
        value: Operand,
    },
    /// Software prefetch hint at `addr + offset` bytes.
    Prefetch {
        /// Byte-address operand.
        addr: Operand,
        /// Byte offset ahead of `addr`.
        offset: i64,
    },
    /// `dst = callee(args…)`.
    Call {
        /// Destination register, if the result is used.
        dst: Option<VReg>,
        /// Index of the called function in [`Module::funcs`].
        callee: usize,
        /// Argument operands, in ABI order.
        args: Vec<Operand>,
    },
}

impl Instr {
    /// The register the instruction writes, if any.
    pub fn def(&self) -> Option<VReg> {
        match self {
            Instr::Bin { dst, .. }
            | Instr::FBin { dst, .. }
            | Instr::Cmp { dst, .. }
            | Instr::FCmp { dst, .. }
            | Instr::Copy { dst, .. }
            | Instr::IntToFloat { dst, .. }
            | Instr::FloatToInt { dst, .. }
            | Instr::Load { dst, .. } => Some(*dst),
            Instr::Call { dst, .. } => *dst,
            Instr::Store { .. } | Instr::Prefetch { .. } => None,
        }
    }

    /// Operands the instruction reads.
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            Instr::Bin { lhs, rhs, .. }
            | Instr::FBin { lhs, rhs, .. }
            | Instr::Cmp { lhs, rhs, .. }
            | Instr::FCmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Instr::Copy { src, .. }
            | Instr::IntToFloat { src, .. }
            | Instr::FloatToInt { src, .. } => vec![*src],
            Instr::Load { addr, .. } => vec![*addr],
            Instr::Store { addr, value } => vec![*addr, *value],
            Instr::Prefetch { addr, .. } => vec![*addr],
            Instr::Call { args, .. } => args.clone(),
        }
    }

    /// Registers the instruction reads.
    pub fn uses(&self) -> Vec<VReg> {
        self.operands().iter().filter_map(Operand::as_reg).collect()
    }

    /// Rewrites the destination register.
    ///
    /// # Panics
    ///
    /// Panics if the instruction has no destination.
    pub fn set_def(&mut self, new_dst: VReg) {
        match self {
            Instr::Bin { dst, .. }
            | Instr::FBin { dst, .. }
            | Instr::Cmp { dst, .. }
            | Instr::FCmp { dst, .. }
            | Instr::Copy { dst, .. }
            | Instr::IntToFloat { dst, .. }
            | Instr::FloatToInt { dst, .. }
            | Instr::Load { dst, .. } => *dst = new_dst,
            Instr::Call { dst: Some(d), .. } => *d = new_dst,
            other => panic!("{:?} has no destination", other),
        }
    }

    /// Rewrites every read of register `from` to the operand `to`.
    pub fn replace_use(&mut self, from: VReg, to: Operand) {
        let rewrite = |o: &mut Operand| {
            if o.as_reg() == Some(from) {
                *o = to;
            }
        };
        match self {
            Instr::Bin { lhs, rhs, .. }
            | Instr::FBin { lhs, rhs, .. }
            | Instr::Cmp { lhs, rhs, .. }
            | Instr::FCmp { lhs, rhs, .. } => {
                rewrite(lhs);
                rewrite(rhs);
            }
            Instr::Copy { src, .. }
            | Instr::IntToFloat { src, .. }
            | Instr::FloatToInt { src, .. } => rewrite(src),
            Instr::Load { addr, .. } => rewrite(addr),
            Instr::Store { addr, value } => {
                rewrite(addr);
                rewrite(value);
            }
            Instr::Prefetch { addr, .. } => rewrite(addr),
            Instr::Call { args, .. } => args.iter_mut().for_each(rewrite),
        }
    }

    /// Whether the instruction has side effects or reads mutable state
    /// (memory, calls) and therefore cannot be freely removed, reordered
    /// across stores, or hoisted.
    pub fn is_pure(&self) -> bool {
        match self {
            Instr::Load { .. }
            | Instr::Store { .. }
            | Instr::Prefetch { .. }
            | Instr::Call { .. } => false,
            Instr::Bin { op, .. } => !op.can_fault(),
            _ => true,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Bin { op, dst, lhs, rhs } => write!(f, "{} = {:?} {}, {}", dst, op, lhs, rhs),
            Instr::FBin { op, dst, lhs, rhs } => {
                write!(f, "{} = f{:?} {}, {}", dst, op, lhs, rhs)
            }
            Instr::Cmp { op, dst, lhs, rhs } => {
                write!(f, "{} = cmp.{:?} {}, {}", dst, op, lhs, rhs)
            }
            Instr::FCmp { op, dst, lhs, rhs } => {
                write!(f, "{} = fcmp.{:?} {}, {}", dst, op, lhs, rhs)
            }
            Instr::Copy { dst, src } => write!(f, "{} = {}", dst, src),
            Instr::IntToFloat { dst, src } => write!(f, "{} = i2f {}", dst, src),
            Instr::FloatToInt { dst, src } => write!(f, "{} = f2i {}", dst, src),
            Instr::Load { dst, addr } => write!(f, "{} = load [{}]", dst, addr),
            Instr::Store { addr, value } => write!(f, "store [{}] = {}", addr, value),
            Instr::Prefetch { addr, offset } => write!(f, "prefetch [{} + {}]", addr, offset),
            Instr::Call { dst, callee, args } => {
                if let Some(d) = dst {
                    write!(f, "{} = ", d)?;
                }
                write!(f, "call @{}(", callee)?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", a)?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A basic-block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on `cond != 0`.
    Branch {
        /// The branch condition.
        cond: Operand,
        /// Successor when `cond != 0`.
        then_bb: BlockId,
        /// Successor when `cond == 0`.
        else_bb: BlockId,
    },
    /// Function return.
    Return(Operand),
}

impl Terminator {
    /// Successor blocks, in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(t) => vec![*t],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Return(_) => vec![],
        }
    }

    /// Rewrites successor `from` to `to`.
    pub fn retarget(&mut self, from: BlockId, to: BlockId) {
        match self {
            Terminator::Jump(t) => {
                if *t == from {
                    *t = to;
                }
            }
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                if *then_bb == from {
                    *then_bb = to;
                }
                if *else_bb == from {
                    *else_bb = to;
                }
            }
            Terminator::Return(_) => {}
        }
    }
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// The instructions, in order.
    pub instrs: Vec<Instr>,
    /// The terminator.
    pub term: Terminator,
}

/// A function: entry block is always `BlockId(0)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter registers, in ABI order.
    pub params: Vec<VReg>,
    /// The blocks; `blocks[0]` is the entry.
    pub blocks: Vec<Block>,
    /// Type of each virtual register, indexed by `VReg.0`.
    pub vreg_types: Vec<Ty>,
}

impl Function {
    /// Creates an empty function with an entry block that returns 0.
    pub fn new(name: impl Into<String>) -> Self {
        Function {
            name: name.into(),
            params: Vec::new(),
            blocks: vec![Block {
                instrs: Vec::new(),
                term: Terminator::Return(Operand::ConstI(0)),
            }],
            vreg_types: Vec::new(),
        }
    }

    /// Allocates a fresh virtual register of type `ty`.
    pub fn new_vreg(&mut self, ty: Ty) -> VReg {
        self.vreg_types.push(ty);
        VReg(self.vreg_types.len() as u32 - 1)
    }

    /// Type of a register.
    ///
    /// # Panics
    ///
    /// Panics if the register was not allocated by this function.
    pub fn ty(&self, r: VReg) -> Ty {
        self.vreg_types[r.0 as usize]
    }

    /// Type of an operand (constants carry their own type).
    pub fn operand_ty(&self, o: Operand) -> Ty {
        match o {
            Operand::Reg(r) => self.ty(r),
            Operand::ConstI(_) => Ty::I64,
            Operand::ConstF(_) => Ty::F64,
        }
    }

    /// Appends an empty block and returns its id.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block {
            instrs: Vec::new(),
            term: Terminator::Return(Operand::ConstI(0)),
        });
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Borrows a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Mutably borrows a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.0 as usize]
    }

    /// All block ids, in storage order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Total instruction count (the "size" inlining/unrolling heuristics
    /// measure).
    pub fn size(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len() + 1).sum()
    }

    /// Checks structural invariants: every referenced register allocated,
    /// every successor in range.
    ///
    /// # Panics
    ///
    /// Panics with a description on violation (used in debug builds/tests).
    pub fn assert_valid(&self) {
        for (bi, b) in self.blocks.iter().enumerate() {
            for i in &b.instrs {
                if let Some(d) = i.def() {
                    assert!(
                        (d.0 as usize) < self.vreg_types.len(),
                        "{}: bb{}: def of unallocated {}",
                        self.name,
                        bi,
                        d
                    );
                }
                for u in i.uses() {
                    assert!(
                        (u.0 as usize) < self.vreg_types.len(),
                        "{}: bb{}: use of unallocated {}",
                        self.name,
                        bi,
                        u
                    );
                }
            }
            for s in b.term.successors() {
                assert!(
                    (s.0 as usize) < self.blocks.len(),
                    "{}: bb{}: successor {} out of range",
                    self.name,
                    bi,
                    s
                );
            }
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", p)?;
        }
        writeln!(f, ") {{")?;
        for (bi, b) in self.blocks.iter().enumerate() {
            writeln!(f, "bb{}:", bi)?;
            for inst in &b.instrs {
                writeln!(f, "    {}", inst)?;
            }
            match &b.term {
                Terminator::Jump(t) => writeln!(f, "    jump {}", t)?,
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => writeln!(f, "    br {}, {}, {}", cond, then_bb, else_bb)?,
                Terminator::Return(v) => writeln!(f, "    ret {}", v)?,
            }
        }
        writeln!(f, "}}")
    }
}

/// A global array in the data segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Source-level name.
    pub name: String,
    /// Number of 8-byte elements.
    pub len: usize,
    /// Element type.
    pub ty: Ty,
    /// Assigned base byte address in the data segment.
    pub base: u64,
}

/// A compilation unit: functions plus global arrays.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// The functions; index is the `callee` id used by [`Instr::Call`].
    pub funcs: Vec<Function>,
    /// Global arrays with assigned data-segment addresses.
    pub globals: Vec<Global>,
}

impl Module {
    /// Index of the function named `name`.
    pub fn func_index(&self, name: &str) -> Option<usize> {
        self.funcs.iter().position(|f| f.name == name)
    }

    /// Base address of the global named `name`.
    pub fn global_base(&self, name: &str) -> Option<u64> {
        self.globals.iter().find(|g| g.name == name).map(|g| g.base)
    }

    /// Total IR size over all functions (the unit-growth baseline).
    pub fn size(&self) -> usize {
        self.funcs.iter().map(Function::size).sum()
    }

    /// Map from function name to index.
    pub fn func_map(&self) -> HashMap<&str, usize> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.as_str(), i))
            .collect()
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for g in &self.globals {
            writeln!(f, "global {}[{}] @ {:#x}", g.name, g.len, g.base)?;
        }
        for func in &self.funcs {
            writeln!(f, "{}", func)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_use_metadata() {
        let i = Instr::Bin {
            op: BinOp::Add,
            dst: VReg(3),
            lhs: Operand::Reg(VReg(1)),
            rhs: Operand::ConstI(4),
        };
        assert_eq!(i.def(), Some(VReg(3)));
        assert_eq!(i.uses(), vec![VReg(1)]);
        assert!(i.is_pure());
    }

    #[test]
    fn replace_use_rewrites_all_positions() {
        let mut i = Instr::Store {
            addr: Operand::Reg(VReg(1)),
            value: Operand::Reg(VReg(1)),
        };
        i.replace_use(VReg(1), Operand::ConstI(7));
        assert_eq!(
            i,
            Instr::Store {
                addr: Operand::ConstI(7),
                value: Operand::ConstI(7)
            }
        );
    }

    #[test]
    fn purity_classification() {
        assert!(!Instr::Load {
            dst: VReg(0),
            addr: Operand::ConstI(0)
        }
        .is_pure());
        assert!(!Instr::Bin {
            op: BinOp::Div,
            dst: VReg(0),
            lhs: Operand::ConstI(1),
            rhs: Operand::Reg(VReg(1))
        }
        .is_pure());
        assert!(Instr::Copy {
            dst: VReg(0),
            src: Operand::ConstI(1)
        }
        .is_pure());
    }

    #[test]
    fn terminator_successors_and_retarget() {
        let mut t = Terminator::Branch {
            cond: Operand::Reg(VReg(0)),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        t.retarget(BlockId(2), BlockId(5));
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(5)]);
    }

    #[test]
    fn function_vreg_and_block_allocation() {
        let mut f = Function::new("t");
        let a = f.new_vreg(Ty::I64);
        let b = f.new_vreg(Ty::F64);
        assert_ne!(a, b);
        assert_eq!(f.ty(a), Ty::I64);
        assert_eq!(f.ty(b), Ty::F64);
        let bb = f.new_block();
        assert_eq!(bb, BlockId(1));
        f.assert_valid();
    }

    #[test]
    fn cmp_swapped_is_involutive_on_ordering() {
        assert_eq!(CmpOp::Lt.swapped(), CmpOp::Gt);
        assert_eq!(CmpOp::Lt.swapped().swapped(), CmpOp::Lt);
        assert_eq!(CmpOp::Eq.swapped(), CmpOp::Eq);
    }

    #[test]
    fn display_renders_instructions() {
        let i = Instr::Load {
            dst: VReg(2),
            addr: Operand::Reg(VReg(1)),
        };
        assert_eq!(i.to_string(), "v2 = load [v1]");
    }

    #[test]
    #[should_panic(expected = "successor")]
    fn assert_valid_catches_bad_successor() {
        let mut f = Function::new("bad");
        f.blocks[0].term = Terminator::Jump(BlockId(9));
        f.assert_valid();
    }
}
