//! CFG analyses: predecessors, reverse postorder, dominators, natural loops
//! and liveness. Consumed by the optimization passes and register allocator.

use super::{BlockId, Function, VReg};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Predecessor lists for every block.
pub fn predecessors(f: &Function) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); f.blocks.len()];
    for id in f.block_ids() {
        for s in f.block(id).term.successors() {
            preds[s.0 as usize].push(id);
        }
    }
    preds
}

/// Reverse postorder over blocks reachable from the entry.
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let mut visited = vec![false; f.blocks.len()];
    let mut post = Vec::new();
    // Iterative DFS with an explicit stack of (block, next successor index).
    let mut stack = vec![(BlockId(0), 0usize)];
    visited[0] = true;
    while let Some(&mut (bb, ref mut next)) = stack.last_mut() {
        let succs = f.block(bb).term.successors();
        if *next < succs.len() {
            let s = succs[*next];
            *next += 1;
            if !visited[s.0 as usize] {
                visited[s.0 as usize] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(bb);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Immediate dominators computed with the Cooper–Harvey–Kennedy algorithm.
///
/// `idom[entry] == entry`; unreachable blocks have `None`.
pub fn dominators(f: &Function) -> Vec<Option<BlockId>> {
    let rpo = reverse_postorder(f);
    let preds = predecessors(f);
    let mut rpo_index = vec![usize::MAX; f.blocks.len()];
    for (i, b) in rpo.iter().enumerate() {
        rpo_index[b.0 as usize] = i;
    }
    let mut idom: Vec<Option<BlockId>> = vec![None; f.blocks.len()];
    idom[0] = Some(BlockId(0));

    let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
        while a != b {
            while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
                a = idom[a.0 as usize].expect("processed");
            }
            while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
                b = idom[b.0 as usize].expect("processed");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &p in &preds[b.0 as usize] {
                if idom[p.0 as usize].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, cur, p),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b.0 as usize] != Some(ni) {
                    idom[b.0 as usize] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom
}

/// Whether `a` dominates `b` under the given idom tree.
pub fn dominates(idom: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        match idom[cur.0 as usize] {
            Some(p) if p != cur => cur = p,
            _ => return false,
        }
    }
}

/// A natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// The loop header (target of the back edges).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub body: BTreeSet<BlockId>,
    /// Sources of back edges into the header.
    pub latches: Vec<BlockId>,
}

impl Loop {
    /// Whether `b` is inside the loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }

    /// Total instruction count of the loop body.
    pub fn size(&self, f: &Function) -> usize {
        self.body.iter().map(|b| f.block(*b).instrs.len() + 1).sum()
    }
}

/// Finds all natural loops (one per header; bodies of back edges into the
/// same header are merged), sorted innermost-first by body size.
pub fn natural_loops(f: &Function) -> Vec<Loop> {
    let idom = dominators(f);
    let preds = predecessors(f);
    let mut by_header: HashMap<BlockId, Loop> = HashMap::new();
    for n in f.block_ids() {
        // Skip unreachable blocks.
        if idom[n.0 as usize].is_none() && n != BlockId(0) {
            continue;
        }
        for h in f.block(n).term.successors() {
            if dominates(&idom, h, n) {
                // Back edge n -> h: collect body by backwards walk from n.
                let entry = by_header.entry(h).or_insert_with(|| Loop {
                    header: h,
                    body: BTreeSet::from([h]),
                    latches: Vec::new(),
                });
                entry.latches.push(n);
                let mut stack = Vec::new();
                if entry.body.insert(n) {
                    stack.push(n);
                }
                while let Some(b) = stack.pop() {
                    for &p in &preds[b.0 as usize] {
                        if entry.body.insert(p) {
                            stack.push(p);
                        }
                    }
                }
            }
        }
    }
    let mut loops: Vec<Loop> = by_header.into_values().collect();
    loops.sort_by_key(|l| (l.body.len(), l.header.0));
    loops
}

/// Per-block liveness: `live_in[b]` / `live_out[b]` sets of virtual registers.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live on entry to each block.
    pub live_in: Vec<HashSet<VReg>>,
    /// Registers live on exit from each block.
    pub live_out: Vec<HashSet<VReg>>,
}

/// Computes per-block liveness by backwards iteration to a fixed point.
pub fn liveness(f: &Function) -> Liveness {
    let n = f.blocks.len();
    // gen = upward-exposed uses; kill = defs.
    let mut gen = vec![HashSet::new(); n];
    let mut kill = vec![HashSet::new(); n];
    for id in f.block_ids() {
        let b = f.block(id);
        let (g, k) = (&mut gen[id.0 as usize], &mut kill[id.0 as usize]);
        for i in &b.instrs {
            for u in i.uses() {
                if !k.contains(&u) {
                    g.insert(u);
                }
            }
            if let Some(d) = i.def() {
                k.insert(d);
            }
        }
        if let super::Terminator::Branch { cond, .. } = &b.term {
            if let Some(r) = cond.as_reg() {
                if !k.contains(&r) {
                    g.insert(r);
                }
            }
        }
        if let super::Terminator::Return(v) = &b.term {
            if let Some(r) = v.as_reg() {
                if !k.contains(&r) {
                    g.insert(r);
                }
            }
        }
    }
    let mut live_in = vec![HashSet::new(); n];
    let mut live_out = vec![HashSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for idx in (0..n).rev() {
            let id = BlockId(idx as u32);
            let mut out: HashSet<VReg> = HashSet::new();
            for s in f.block(id).term.successors() {
                out.extend(live_in[s.0 as usize].iter().copied());
            }
            let mut inn: HashSet<VReg> = gen[idx].clone();
            for &v in &out {
                if !kill[idx].contains(&v) {
                    inn.insert(v);
                }
            }
            if out != live_out[idx] || inn != live_in[idx] {
                live_out[idx] = out;
                live_in[idx] = inn;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Instr, Operand, Terminator, Ty};

    /// Builds the classic diamond-with-loop CFG:
    /// bb0 -> bb1 (header) ; bb1 -> bb2 (body) | bb3 (exit) ; bb2 -> bb1.
    fn loop_fn() -> Function {
        let mut f = Function::new("t");
        let i = f.new_vreg(Ty::I64);
        let c = f.new_vreg(Ty::I64);
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.blocks[0].instrs.push(Instr::Copy {
            dst: i,
            src: Operand::ConstI(0),
        });
        f.blocks[0].term = Terminator::Jump(header);
        f.block_mut(header).instrs.push(Instr::Cmp {
            op: crate::ir::CmpOp::Lt,
            dst: c,
            lhs: Operand::Reg(i),
            rhs: Operand::ConstI(10),
        });
        f.block_mut(header).term = Terminator::Branch {
            cond: Operand::Reg(c),
            then_bb: body,
            else_bb: exit,
        };
        f.block_mut(body).instrs.push(Instr::Bin {
            op: BinOp::Add,
            dst: i,
            lhs: Operand::Reg(i),
            rhs: Operand::ConstI(1),
        });
        f.block_mut(body).term = Terminator::Jump(header);
        f.block_mut(exit).term = Terminator::Return(Operand::Reg(i));
        f
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = loop_fn();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn dominators_of_loop() {
        let f = loop_fn();
        let idom = dominators(&f);
        assert_eq!(idom[1], Some(BlockId(0))); // header dominated by entry
        assert_eq!(idom[2], Some(BlockId(1))); // body by header
        assert_eq!(idom[3], Some(BlockId(1))); // exit by header
        assert!(dominates(&idom, BlockId(0), BlockId(3)));
        assert!(!dominates(&idom, BlockId(2), BlockId(3)));
    }

    #[test]
    fn finds_the_natural_loop() {
        let f = loop_fn();
        let loops = natural_loops(&f);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latches, vec![BlockId(2)]);
        assert!(l.contains(BlockId(1)) && l.contains(BlockId(2)));
        assert!(!l.contains(BlockId(0)) && !l.contains(BlockId(3)));
    }

    #[test]
    fn liveness_keeps_loop_variable_live() {
        let f = loop_fn();
        let lv = liveness(&f);
        let i = VReg(0);
        // i is live into the header and the body, and out of the entry.
        assert!(lv.live_in[1].contains(&i));
        assert!(lv.live_in[2].contains(&i));
        assert!(lv.live_out[0].contains(&i));
        // The compare result is only live within the header.
        assert!(!lv.live_in[1].contains(&VReg(1)));
    }

    #[test]
    fn unreachable_block_excluded() {
        let mut f = loop_fn();
        let dead = f.new_block(); // never referenced
        let rpo = reverse_postorder(&f);
        assert!(!rpo.contains(&dead));
        let idom = dominators(&f);
        assert_eq!(idom[dead.0 as usize], None);
    }
}
