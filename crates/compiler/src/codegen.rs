//! Code generation: IR → `emod_isa::Program`.
//!
//! Applies the three backend flags of Table 1: `-fomit-frame-pointer`
//! (frees `r30` and skips frame-pointer maintenance), `-freorder-blocks`
//! (fall-through-maximizing block layout) and `-fschedule-insns2` (post-RA
//! list scheduling, see [`crate::schedule`]).

use crate::ir::{self, BlockId, CmpOp, Function, Module, Operand, Terminator, Ty, VReg};
use crate::regalloc::{self, Allocation, Loc};
use crate::{CompileError, OptConfig, Result};
use emod_isa::{abi, AluOp, BranchCond, FCmpOp, FReg, Inst, Program, ProgramBuilder, Reg};

/// Generates an executable program for the whole module.
///
/// The program starts at a tiny `_start` stub that calls `main` and halts;
/// `main`'s return value becomes the program exit value.
///
/// # Errors
///
/// Returns [`CompileError::Codegen`] if `main` is missing or a function
/// needs more than six arguments.
pub fn generate(module: &Module, config: &OptConfig) -> Result<Program> {
    let main = module
        .func_index("main")
        .ok_or_else(|| CompileError::Codegen("no `main` function".into()))?;

    let mut b = ProgramBuilder::new();
    b.call_to(func_label(main));
    b.push(Inst::Halt);

    for (fi, f) in module.funcs.iter().enumerate() {
        lower_function(&mut b, f, fi, config)?;
    }
    let program = b
        .build()
        .map_err(|e| CompileError::Codegen(e.to_string()))?;
    debug_assert!(program.validate().is_ok());
    Ok(program)
}

fn func_label(fi: usize) -> String {
    format!("f{}", fi)
}

fn block_label(fi: usize, b: BlockId) -> String {
    format!("f{}_b{}", fi, b.0)
}

fn epilogue_label(fi: usize) -> String {
    format!("f{}_epi", fi)
}

/// Chooses the emission order of blocks.
///
/// Without `-freorder-blocks`: creation order (which scatters inlined and
/// unrolled bodies at the end of the function, costing jumps and icache
/// locality). With it: greedy fall-through chaining from the entry,
/// preferring each block's likely successor.
pub fn block_layout(f: &Function, reorder: bool) -> Vec<BlockId> {
    let reachable: Vec<BlockId> = ir::analysis::reverse_postorder(f);
    if !reorder {
        // Creation order, restricted to reachable blocks.
        let mut order: Vec<BlockId> = f.block_ids().filter(|b| reachable.contains(b)).collect();
        order.sort_by_key(|b| b.0);
        return order;
    }
    let mut placed = vec![false; f.blocks.len()];
    let mut order = Vec::with_capacity(reachable.len());
    for &seed in &reachable {
        if placed[seed.0 as usize] {
            continue;
        }
        // Grow a chain following preferred successors.
        let mut cur = seed;
        loop {
            placed[cur.0 as usize] = true;
            order.push(cur);
            let next = match &f.block(cur).term {
                Terminator::Jump(t) => Some(*t),
                Terminator::Branch {
                    then_bb, else_bb, ..
                } => {
                    // Prefer the then-side (loop bodies and likely paths);
                    // fall back to the else-side.
                    if !placed[then_bb.0 as usize] {
                        Some(*then_bb)
                    } else if !placed[else_bb.0 as usize] {
                        Some(*else_bb)
                    } else {
                        None
                    }
                }
                Terminator::Return(_) => None,
            };
            match next {
                Some(nb) if !placed[nb.0 as usize] => cur = nb,
                _ => break,
            }
        }
    }
    order
}

/// Per-function lowering state.
struct FnCtx<'a> {
    f: &'a Function,
    alloc: Allocation,
    /// Frame-relative byte offset of each spill slot, from the addressing
    /// base register.
    slot_base: i64,
    /// Register used to address the frame (SP, or FP when maintained).
    frame_reg: Reg,
    /// Byte offsets (from SP) of saved ra / fp / callee-saved registers.
    save_offsets: SaveOffsets,
    body: Vec<Inst>,
}

#[derive(Debug, Default)]
struct SaveOffsets {
    ra: Option<i64>,
    fp: Option<i64>,
    int_callee: Vec<(u8, i64)>,
    fp_callee: Vec<(u8, i64)>,
}

fn lower_function(
    b: &mut ProgramBuilder,
    f: &Function,
    fi: usize,
    config: &OptConfig,
) -> Result<()> {
    if f.params.len() > abi::ARG_COUNT as usize {
        return Err(CompileError::Codegen(format!(
            "`{}` has more than {} parameters",
            f.name,
            abi::ARG_COUNT
        )));
    }
    let layout = block_layout(f, config.reorder_blocks);
    let alloc = regalloc::allocate(f, &layout, config.omit_frame_pointer);
    if emod_telemetry::enabled() {
        emod_telemetry::counter_add("compiler.regalloc.functions", 1);
        emod_telemetry::counter_add("compiler.regalloc.spill_slots", alloc.slots as u64);
        emod_telemetry::observe("compiler.spills_per_function", alloc.slots as f64);
    }

    // Frame layout (from SP after adjustment, going up):
    //   [ spill slots ][ saved fp callee ][ saved int callee ][ fp? ][ ra? ]
    let mut offset = alloc.slots as i64 * 8;
    let mut saves = SaveOffsets::default();
    for &r in &alloc.used_fp_callee {
        saves.fp_callee.push((r, offset));
        offset += 8;
    }
    for &r in &alloc.used_int_callee {
        saves.int_callee.push((r, offset));
        offset += 8;
    }
    if !config.omit_frame_pointer {
        saves.fp = Some(offset);
        offset += 8;
    }
    if alloc.has_calls {
        saves.ra = Some(offset);
        offset += 8;
    }
    let frame_size = (offset + 15) & !15;

    let keep_fp = !config.omit_frame_pointer;
    let mut ctx = FnCtx {
        f,
        alloc,
        // With a frame pointer, FP = SP_old = SP + frame_size, so slot i
        // sits at FP - frame_size + 8i; otherwise SP + 8i.
        slot_base: if keep_fp { -frame_size } else { 0 },
        frame_reg: if keep_fp { abi::FP } else { abi::SP },
        save_offsets: saves,
        body: Vec::new(),
    };

    // --- Prologue ---
    b.label(func_label(fi));
    let mut prologue: Vec<Inst> = Vec::new();
    if frame_size > 0 {
        prologue.push(Inst::AluImm {
            op: AluOp::Add,
            rd: abi::SP,
            rs: abi::SP,
            imm: -frame_size,
        });
    }
    if let Some(off) = ctx.save_offsets.ra {
        prologue.push(Inst::Store {
            rt: abi::RA,
            rs: abi::SP,
            offset: off,
        });
    }
    if let Some(off) = ctx.save_offsets.fp {
        prologue.push(Inst::Store {
            rt: abi::FP,
            rs: abi::SP,
            offset: off,
        });
        prologue.push(Inst::AluImm {
            op: AluOp::Add,
            rd: abi::FP,
            rs: abi::SP,
            imm: frame_size,
        });
    }
    for &(r, off) in &ctx.save_offsets.int_callee {
        prologue.push(Inst::Store {
            rt: Reg(r),
            rs: abi::SP,
            offset: off,
        });
    }
    for &(r, off) in &ctx.save_offsets.fp_callee {
        prologue.push(Inst::FStore {
            ft: FReg(r),
            rs: abi::SP,
            offset: off,
        });
    }
    for inst in prologue {
        b.push(inst);
    }
    // Parameter moves: arg registers into allocated locations.
    for (i, &p) in f.params.iter().enumerate() {
        let src_idx = abi::A0.0 + i as u8;
        match f.ty(p) {
            Ty::I64 => {
                let src = Reg(src_idx);
                match ctx.loc(p) {
                    Some(Loc::IntReg(r)) => b.push(mov_int(Reg(r), src)),
                    Some(Loc::Slot(s)) => b.push(Inst::Store {
                        rt: src,
                        rs: ctx.frame_reg,
                        offset: ctx.slot_off(s),
                    }),
                    Some(Loc::FpReg(_)) => unreachable!("int param in fp reg"),
                    None => {} // parameter never used
                }
            }
            Ty::F64 => {
                let src = FReg(src_idx);
                match ctx.loc(p) {
                    Some(Loc::FpReg(r)) => b.push(mov_fp(FReg(r), src)),
                    Some(Loc::Slot(s)) => b.push(Inst::FStore {
                        ft: src,
                        rs: ctx.frame_reg,
                        offset: ctx.slot_off(s),
                    }),
                    Some(Loc::IntReg(_)) => unreachable!("fp param in int reg"),
                    None => {}
                }
            }
        }
    }
    // Fall through to the first block in layout order (emit an explicit
    // jump if the entry block is not first — reorder keeps it first).
    if layout.first() != Some(&BlockId(0)) {
        b.jump_to(block_label(fi, BlockId(0)));
    }

    // --- Blocks ---
    for (pos, &bid) in layout.iter().enumerate() {
        let next = layout.get(pos + 1).copied();
        b.label(block_label(fi, bid));
        ctx.body.clear();
        for i in &f.block(bid).instrs {
            ctx.lower_instr(i)?;
        }
        let mut body = std::mem::take(&mut ctx.body);
        if config.schedule_insns2 {
            body = crate::schedule::schedule_block(&body);
        }
        emit_body(b, body, fi);
        // Terminator.
        match &f.block(bid).term {
            Terminator::Jump(t) => {
                if next != Some(*t) {
                    b.jump_to(block_label(fi, *t));
                }
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                ctx.body.clear();
                let c = ctx.read_int(*cond, 0)?;
                emit_body(b, std::mem::take(&mut ctx.body), fi);
                if next == Some(*then_bb) {
                    // Invert: branch to else when the condition is false.
                    b.branch_to(BranchCond::Eq, c, abi::ZERO, block_label(fi, *else_bb));
                } else {
                    b.branch_to(BranchCond::Ne, c, abi::ZERO, block_label(fi, *then_bb));
                    if next != Some(*else_bb) {
                        b.jump_to(block_label(fi, *else_bb));
                    }
                }
            }
            Terminator::Return(v) => {
                ctx.body.clear();
                match f.operand_ty(*v) {
                    Ty::I64 => {
                        let r = ctx.read_int(*v, 0)?;
                        ctx.body.push(mov_int(abi::RV, r));
                    }
                    Ty::F64 => {
                        let r = ctx.read_fp(*v, 0)?;
                        ctx.body.push(mov_fp(FReg(1), r));
                    }
                }
                emit_body(b, std::mem::take(&mut ctx.body), fi);
                if pos + 1 != layout.len() {
                    b.jump_to(epilogue_label(fi));
                }
            }
        }
    }

    // --- Epilogue ---
    b.label(epilogue_label(fi));
    for &(r, off) in &ctx.save_offsets.fp_callee {
        b.push(Inst::FLoad {
            fd: FReg(r),
            rs: abi::SP,
            offset: off,
        });
    }
    for &(r, off) in &ctx.save_offsets.int_callee {
        b.push(Inst::Load {
            rd: Reg(r),
            rs: abi::SP,
            offset: off,
        });
    }
    if let Some(off) = ctx.save_offsets.fp {
        b.push(Inst::Load {
            rd: abi::FP,
            rs: abi::SP,
            offset: off,
        });
    }
    if let Some(off) = ctx.save_offsets.ra {
        b.push(Inst::Load {
            rd: abi::RA,
            rs: abi::SP,
            offset: off,
        });
    }
    if frame_size > 0 {
        b.push(Inst::AluImm {
            op: AluOp::Add,
            rd: abi::SP,
            rs: abi::SP,
            imm: frame_size,
        });
    }
    b.push(Inst::JumpReg { rs: abi::RA });
    Ok(())
}

/// Emits a lowered body, turning call placeholders into label fixups.
fn emit_body(b: &mut ProgramBuilder, body: Vec<Inst>, _fi: usize) {
    for inst in body {
        match inst {
            Inst::Call { target } => b.call_to(func_label(target as usize)),
            other => b.push(other),
        }
    }
}

fn mov_int(rd: Reg, rs: Reg) -> Inst {
    Inst::Alu {
        op: AluOp::Add,
        rd,
        rs,
        rt: abi::ZERO,
    }
}

/// Float move via the `f0 = 0.0` convention (f0 is never allocated).
fn mov_fp(fd: FReg, fs: FReg) -> Inst {
    Inst::FAdd {
        fd,
        fs,
        ft: FReg(0),
    }
}

impl FnCtx<'_> {
    fn loc(&self, r: VReg) -> Option<Loc> {
        self.alloc.locs.get(&r).copied()
    }

    fn slot_off(&self, slot: u32) -> i64 {
        self.slot_base + slot as i64 * 8
    }

    fn int_scratch(&self, which: usize) -> Reg {
        if which == 0 {
            Reg(regalloc::INT_SCRATCH.0)
        } else {
            Reg(regalloc::INT_SCRATCH.1)
        }
    }

    fn fp_scratch(&self, which: usize) -> FReg {
        if which == 0 {
            FReg(regalloc::FP_SCRATCH.0)
        } else {
            FReg(regalloc::FP_SCRATCH.1)
        }
    }

    /// Materializes an integer operand into a register (emitting loads for
    /// spilled values and `li` for constants into scratch register `which`).
    fn read_int(&mut self, o: Operand, which: usize) -> Result<Reg> {
        match o {
            Operand::ConstI(0) => Ok(abi::ZERO),
            Operand::ConstI(v) => {
                let s = self.int_scratch(which);
                self.body.push(Inst::LoadImm { rd: s, imm: v });
                Ok(s)
            }
            Operand::ConstF(_) => Err(CompileError::Codegen(
                "float constant in integer context".into(),
            )),
            Operand::Reg(r) => match self.loc(r) {
                Some(Loc::IntReg(p)) => Ok(Reg(p)),
                Some(Loc::Slot(slot)) => {
                    let s = self.int_scratch(which);
                    self.body.push(Inst::Load {
                        rd: s,
                        rs: self.frame_reg,
                        offset: self.slot_off(slot),
                    });
                    Ok(s)
                }
                Some(Loc::FpReg(_)) | None => Err(CompileError::Codegen(format!(
                    "register {} has no integer location",
                    r
                ))),
            },
        }
    }

    /// Materializes a float operand into a register.
    fn read_fp(&mut self, o: Operand, which: usize) -> Result<FReg> {
        match o {
            Operand::ConstF(v) => {
                // f0 holds +0.0; -0.0 must be materialized (sign matters).
                if v == 0.0 && v.is_sign_positive() {
                    return Ok(FReg(0));
                }
                let s = self.fp_scratch(which);
                self.body.push(Inst::FLoadImm { fd: s, imm: v });
                Ok(s)
            }
            Operand::ConstI(_) => Err(CompileError::Codegen(
                "integer constant in float context".into(),
            )),
            Operand::Reg(r) => match self.loc(r) {
                Some(Loc::FpReg(p)) => Ok(FReg(p)),
                Some(Loc::Slot(slot)) => {
                    let s = self.fp_scratch(which);
                    self.body.push(Inst::FLoad {
                        fd: s,
                        rs: self.frame_reg,
                        offset: self.slot_off(slot),
                    });
                    Ok(s)
                }
                Some(Loc::IntReg(_)) | None => Err(CompileError::Codegen(format!(
                    "register {} has no float location",
                    r
                ))),
            },
        }
    }

    /// Destination register for an integer def, plus whether a spill store
    /// must follow.
    fn write_int(&mut self, r: VReg) -> (Reg, Option<Inst>) {
        match self.loc(r) {
            Some(Loc::IntReg(p)) => (Reg(p), None),
            Some(Loc::Slot(slot)) => {
                let s = self.int_scratch(0);
                (
                    s,
                    Some(Inst::Store {
                        rt: s,
                        rs: self.frame_reg,
                        offset: self.slot_off(slot),
                    }),
                )
            }
            // Unused destination (dead code at -O0): compute into scratch.
            _ => (self.int_scratch(0), None),
        }
    }

    fn write_fp(&mut self, r: VReg) -> (FReg, Option<Inst>) {
        match self.loc(r) {
            Some(Loc::FpReg(p)) => (FReg(p), None),
            Some(Loc::Slot(slot)) => {
                let s = self.fp_scratch(0);
                (
                    s,
                    Some(Inst::FStore {
                        ft: s,
                        rs: self.frame_reg,
                        offset: self.slot_off(slot),
                    }),
                )
            }
            _ => (self.fp_scratch(0), None),
        }
    }

    fn lower_instr(&mut self, i: &ir::Instr) -> Result<()> {
        use ir::BinOp;
        match i {
            ir::Instr::Bin { op, dst, lhs, rhs } => {
                let rs = self.read_int(*lhs, 0)?;
                let (rd, post) = match self.loc(*dst) {
                    Some(Loc::IntReg(p)) => (Reg(p), None),
                    _ => {
                        let w = self.write_int(*dst);
                        (w.0, w.1)
                    }
                };
                // Immediate forms for ALU-class ops.
                let alu_op = |op: &BinOp| match op {
                    BinOp::Add => Some(AluOp::Add),
                    BinOp::Sub => Some(AluOp::Sub),
                    BinOp::And => Some(AluOp::And),
                    BinOp::Or => Some(AluOp::Or),
                    BinOp::Xor => Some(AluOp::Xor),
                    BinOp::Shl => Some(AluOp::Shl),
                    BinOp::Shr => Some(AluOp::Shr),
                    _ => None,
                };
                match (alu_op(op), rhs) {
                    (Some(a), Operand::ConstI(v)) => {
                        self.body.push(Inst::AluImm {
                            op: a,
                            rd,
                            rs,
                            imm: *v,
                        });
                    }
                    (Some(a), _) => {
                        let rt = self.read_int(*rhs, 1)?;
                        self.body.push(Inst::Alu { op: a, rd, rs, rt });
                    }
                    (None, _) => {
                        let rt = self.read_int(*rhs, 1)?;
                        let inst = match op {
                            BinOp::Mul => Inst::Mul { rd, rs, rt },
                            BinOp::Div => Inst::Div { rd, rs, rt },
                            BinOp::Rem => Inst::Rem { rd, rs, rt },
                            _ => unreachable!("alu ops handled above"),
                        };
                        self.body.push(inst);
                    }
                }
                self.body.extend(post);
            }
            ir::Instr::FBin { op, dst, lhs, rhs } => {
                let fs = self.read_fp(*lhs, 0)?;
                let ft = self.read_fp(*rhs, 1)?;
                let (fd, post) = self.write_fp(*dst);
                let inst = match op {
                    ir::FBinOp::Add => Inst::FAdd { fd, fs, ft },
                    ir::FBinOp::Sub => Inst::FSub { fd, fs, ft },
                    ir::FBinOp::Mul => Inst::FMul { fd, fs, ft },
                    ir::FBinOp::Div => Inst::FDiv { fd, fs, ft },
                };
                self.body.push(inst);
                self.body.extend(post);
            }
            ir::Instr::Cmp { op, dst, lhs, rhs } => {
                let (l, r, op) = match *op {
                    // Only `<` and `==` exist in hardware; synthesize the
                    // rest by swapping and negating.
                    CmpOp::Gt => (*rhs, *lhs, CmpOp::Lt),
                    CmpOp::Le => (*rhs, *lhs, CmpOp::Ge), // a<=b == !(b<a)
                    other => (*lhs, *rhs, other),
                };
                let rs = self.read_int(l, 0)?;
                let rt = self.read_int(r, 1)?;
                let (rd, post) = self.write_int(*dst);
                match op {
                    CmpOp::Lt => self.body.push(Inst::Alu {
                        op: AluOp::Slt,
                        rd,
                        rs,
                        rt,
                    }),
                    CmpOp::Ge => {
                        self.body.push(Inst::Alu {
                            op: AluOp::Slt,
                            rd,
                            rs,
                            rt,
                        });
                        self.body.push(Inst::AluImm {
                            op: AluOp::Xor,
                            rd,
                            rs: rd,
                            imm: 1,
                        });
                    }
                    CmpOp::Eq => self.body.push(Inst::Alu {
                        op: AluOp::Seq,
                        rd,
                        rs,
                        rt,
                    }),
                    CmpOp::Ne => {
                        self.body.push(Inst::Alu {
                            op: AluOp::Seq,
                            rd,
                            rs,
                            rt,
                        });
                        self.body.push(Inst::AluImm {
                            op: AluOp::Xor,
                            rd,
                            rs: rd,
                            imm: 1,
                        });
                    }
                    CmpOp::Le | CmpOp::Gt => unreachable!("canonicalized"),
                }
                self.body.extend(post);
            }
            ir::Instr::FCmp { op, dst, lhs, rhs } => {
                let (l, r, op) = match *op {
                    CmpOp::Gt => (*rhs, *lhs, CmpOp::Lt),
                    CmpOp::Ge => (*rhs, *lhs, CmpOp::Le),
                    other => (*lhs, *rhs, other),
                };
                let fs = self.read_fp(l, 0)?;
                let ft = self.read_fp(r, 1)?;
                let (rd, post) = self.write_int(*dst);
                match op {
                    CmpOp::Lt => self.body.push(Inst::FCmp {
                        op: FCmpOp::Lt,
                        rd,
                        fs,
                        ft,
                    }),
                    CmpOp::Le => self.body.push(Inst::FCmp {
                        op: FCmpOp::Le,
                        rd,
                        fs,
                        ft,
                    }),
                    CmpOp::Eq => self.body.push(Inst::FCmp {
                        op: FCmpOp::Eq,
                        rd,
                        fs,
                        ft,
                    }),
                    CmpOp::Ne => {
                        self.body.push(Inst::FCmp {
                            op: FCmpOp::Eq,
                            rd,
                            fs,
                            ft,
                        });
                        self.body.push(Inst::AluImm {
                            op: AluOp::Xor,
                            rd,
                            rs: rd,
                            imm: 1,
                        });
                    }
                    CmpOp::Gt | CmpOp::Ge => unreachable!("canonicalized"),
                }
                self.body.extend(post);
            }
            ir::Instr::Copy { dst, src } => match self.f.ty(*dst) {
                Ty::I64 => {
                    let (rd, post) = self.write_int(*dst);
                    match src {
                        Operand::ConstI(v) => self.body.push(Inst::LoadImm { rd, imm: *v }),
                        _ => {
                            let rs = self.read_int(*src, 1)?;
                            if rs != rd || post.is_some() {
                                self.body.push(mov_int(rd, rs));
                            }
                        }
                    }
                    self.body.extend(post);
                }
                Ty::F64 => {
                    let (fd, post) = self.write_fp(*dst);
                    match src {
                        Operand::ConstF(v) => self.body.push(Inst::FLoadImm { fd, imm: *v }),
                        _ => {
                            let fs = self.read_fp(*src, 1)?;
                            if fs != fd || post.is_some() {
                                self.body.push(mov_fp(fd, fs));
                            }
                        }
                    }
                    self.body.extend(post);
                }
            },
            ir::Instr::IntToFloat { dst, src } => {
                let rs = self.read_int(*src, 0)?;
                let (fd, post) = self.write_fp(*dst);
                self.body.push(Inst::CvtIf { fd, rs });
                self.body.extend(post);
            }
            ir::Instr::FloatToInt { dst, src } => {
                let fs = self.read_fp(*src, 0)?;
                let (rd, post) = self.write_int(*dst);
                self.body.push(Inst::CvtFi { rd, fs });
                self.body.extend(post);
            }
            ir::Instr::Load { dst, addr } => {
                let (base, offset) = self.address(*addr)?;
                match self.f.ty(*dst) {
                    Ty::I64 => {
                        let (rd, post) = self.write_int(*dst);
                        self.body.push(Inst::Load {
                            rd,
                            rs: base,
                            offset,
                        });
                        self.body.extend(post);
                    }
                    Ty::F64 => {
                        let (fd, post) = self.write_fp(*dst);
                        self.body.push(Inst::FLoad {
                            fd,
                            rs: base,
                            offset,
                        });
                        self.body.extend(post);
                    }
                }
            }
            ir::Instr::Store { addr, value } => {
                let (base, offset) = self.address(*addr)?;
                match self.f.operand_ty(*value) {
                    Ty::I64 => {
                        let rt = self.read_int(*value, 1)?;
                        self.body.push(Inst::Store {
                            rt,
                            rs: base,
                            offset,
                        });
                    }
                    Ty::F64 => {
                        let ft = self.read_fp(*value, 1)?;
                        self.body.push(Inst::FStore {
                            ft,
                            rs: base,
                            offset,
                        });
                    }
                }
            }
            ir::Instr::Prefetch { addr, offset } => {
                let (base, base_off) = self.address(*addr)?;
                self.body.push(Inst::Prefetch {
                    rs: base,
                    offset: base_off + offset,
                });
            }
            ir::Instr::Call { dst, callee, args } => {
                if args.len() > abi::ARG_COUNT as usize {
                    return Err(CompileError::Codegen("too many call arguments".into()));
                }
                for (k, a) in args.iter().enumerate() {
                    let slot = abi::A0.0 + k as u8;
                    match self.f.operand_ty(*a) {
                        Ty::I64 => match a {
                            Operand::ConstI(v) => self.body.push(Inst::LoadImm {
                                rd: Reg(slot),
                                imm: *v,
                            }),
                            _ => {
                                let rs = self.read_int(*a, 0)?;
                                self.body.push(mov_int(Reg(slot), rs));
                            }
                        },
                        Ty::F64 => match a {
                            Operand::ConstF(v) => self.body.push(Inst::FLoadImm {
                                fd: FReg(slot),
                                imm: *v,
                            }),
                            _ => {
                                let fs = self.read_fp(*a, 0)?;
                                self.body.push(mov_fp(FReg(slot), fs));
                            }
                        },
                    }
                }
                // Placeholder: rewritten to a label fixup at emission.
                self.body.push(Inst::Call {
                    target: *callee as u32,
                });
                if let Some(d) = dst {
                    match self.f.ty(*d) {
                        Ty::I64 => {
                            let (rd, post) = self.write_int(*d);
                            if rd != abi::RV {
                                self.body.push(mov_int(rd, abi::RV));
                            }
                            self.body.extend(post);
                        }
                        Ty::F64 => {
                            let (fd, post) = self.write_fp(*d);
                            if fd != FReg(1) {
                                self.body.push(mov_fp(fd, FReg(1)));
                            }
                            self.body.extend(post);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Splits an address operand into (base register, constant offset).
    fn address(&mut self, addr: Operand) -> Result<(Reg, i64)> {
        match addr {
            Operand::ConstI(abs) => Ok((abi::ZERO, abs)),
            _ => Ok((self.read_int(addr, 0)?, 0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::run as run_src;
    use crate::OptConfig;

    #[test]
    fn backend_flags_preserve_semantics() {
        let src = r#"
            global data[64];
            fn mix(a, b) { return a * 31 + b; }
            fn main() {
                var h = 7;
                for (i = 0; i < 64; i = i + 1) { data[i] = i * i - i; }
                for (i = 0; i < 64; i = i + 1) { h = mix(h, data[i]); }
                if (h < 0) { h = -h; }
                return h % 100000;
            }
        "#;
        let base = run_src(src, &OptConfig::o0());
        for (omit, reorder, sched) in [
            (true, false, false),
            (false, true, false),
            (false, false, true),
            (true, true, true),
        ] {
            let mut cfg = OptConfig::o0();
            cfg.omit_frame_pointer = omit;
            cfg.reorder_blocks = reorder;
            cfg.schedule_insns2 = sched;
            assert_eq!(
                run_src(src, &cfg),
                base,
                "omit={} reorder={} sched={}",
                omit,
                reorder,
                sched
            );
        }
    }

    #[test]
    fn keeping_frame_pointer_costs_instructions() {
        let src = "fn leafy(a) { return a + 1; } fn main() { return leafy(4); }";
        let mut with_fp = OptConfig::o0();
        with_fp.omit_frame_pointer = false;
        let mut without_fp = OptConfig::o0();
        without_fp.omit_frame_pointer = true;
        let p1 = crate::compile(src, &with_fp).unwrap();
        let p2 = crate::compile(src, &without_fp).unwrap();
        assert!(
            p1.len() > p2.len(),
            "fp maintenance should add instructions: {} vs {}",
            p1.len(),
            p2.len()
        );
    }

    #[test]
    fn reorder_blocks_reduces_static_jumps_after_inlining() {
        let src = r#"
            fn helper(x) { if (x > 2) { return x * 2; } return x + 9; }
            fn main() {
                var s = 0;
                for (i = 0; i < 10; i = i + 1) { s = s + helper(i); }
                return s;
            }
        "#;
        let mut plain = OptConfig::o0();
        plain.inline_functions = true;
        let mut reordered = plain.clone();
        reordered.reorder_blocks = true;
        let count_jumps = |p: &Program| {
            p.insts()
                .iter()
                .filter(|i| matches!(i, Inst::Jump { .. }))
                .count()
        };
        let pj = count_jumps(&crate::compile(src, &plain).unwrap());
        let rj = count_jumps(&crate::compile(src, &reordered).unwrap());
        assert!(rj <= pj, "reorder increased jumps: {} -> {}", pj, rj);
        assert_eq!(run_src(src, &plain), run_src(src, &reordered),);
    }

    #[test]
    fn float_returns_and_spilled_floats() {
        let src = r#"
            fnf poly(x: float) { return x * x * 0.5 + x * 2.0 + 1.0; }
            fn main() {
                var acc = 0.0;
                for (i = 0; i < 10; i = i + 1) { acc = acc + poly(float(i)); }
                return int(acc * 10.0);
            }
        "#;
        let expect: f64 = (0..10)
            .map(|i| {
                let x = i as f64;
                x * x * 0.5 + x * 2.0 + 1.0
            })
            .sum();
        assert_eq!(run_src(src, &OptConfig::o0()), (expect * 10.0) as i64);
        assert_eq!(run_src(src, &OptConfig::o3()), (expect * 10.0) as i64);
    }

    #[test]
    fn deep_recursion_uses_stack_correctly() {
        let src = r#"
            fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
            fn main() { return fib(15); }
        "#;
        for cfg in [OptConfig::o0(), OptConfig::o2(), OptConfig::o3()] {
            assert_eq!(run_src(src, &cfg), 610);
        }
    }

    #[test]
    fn missing_main_is_an_error() {
        let err = crate::compile("fn helper() { return 1; }", &OptConfig::o2()).unwrap_err();
        assert!(matches!(err, CompileError::Codegen(_)));
    }

    #[test]
    fn too_many_params_rejected() {
        let err = crate::compile(
            "fn f(a,b,c,d,e,g,h) { return 0; } fn main() { return f(1,2,3,4,5,6,7); }",
            &OptConfig::o2(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("parameters"));
    }
}
