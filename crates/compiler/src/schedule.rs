//! Post-register-allocation list scheduling (`-fschedule-insns2`, Table 1
//! row 3): reorders machine instructions within a block to hide assumed
//! latencies.
//!
//! The scheduler uses the *compiler's* machine model — fixed latencies and a
//! fixed assumed issue width. Whether that model matches the simulated
//! microarchitecture (whose latencies and width are Table 2 parameters) is
//! one of the compiler/hardware interactions the paper's empirical models
//! capture.

use emod_isa::{Inst, InstKind};

/// The compiler's assumed operation latencies, in cycles.
///
/// These mirror the default Alpha-era machine description: loads are assumed
/// to hit in the L1 cache.
pub fn assumed_latency(kind: InstKind) -> u32 {
    match kind {
        InstKind::IntAlu => 1,
        InstKind::IntMul => 3,
        InstKind::IntDiv => 20,
        InstKind::FpAdd => 2,
        InstKind::FpMul => 4,
        InstKind::FpDiv => 12,
        InstKind::Load => 3,
        InstKind::Store => 1,
        InstKind::Prefetch => 1,
        InstKind::Branch | InstKind::Jump | InstKind::Call | InstKind::Ret | InstKind::Other => 1,
    }
}

/// The issue width the scheduler assumes (the paper compiles one compiler
/// per functional-unit configuration; we fix a dual-issue model).
pub const ASSUMED_ISSUE_WIDTH: usize = 2;

/// Schedules a straight-line region (no control-flow instructions inside).
///
/// Builds the dependence DAG — register RAW/WAR/WAW plus conservative memory
/// edges (stores order against all other memory operations; loads may
/// reorder among themselves) — and emits instructions by greatest critical
/// path height, simulating `ASSUMED_ISSUE_WIDTH` slots per cycle.
pub fn schedule_region(insts: &[Inst]) -> Vec<Inst> {
    let n = insts.len();
    if n <= 1 {
        return insts.to_vec();
    }
    // Dependence edges: succs[i] = (j, latency) meaning j must wait for i.
    let mut succs: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
    let mut preds_count = vec![0usize; n];
    let add_edge = |succs: &mut Vec<Vec<(usize, u32)>>,
                    preds_count: &mut Vec<usize>,
                    a: usize,
                    b: usize,
                    lat: u32| {
        if a != b && !succs[a].iter().any(|&(t, _)| t == b) {
            succs[a].push((b, lat));
            preds_count[b] += 1;
        }
    };

    for i in 0..n {
        let i_defs = insts[i].defs();
        let i_uses = insts[i].uses();
        let i_lat = assumed_latency(insts[i].kind());
        for j in i + 1..n {
            let j_defs = insts[j].defs();
            let j_uses = insts[j].uses();
            // RAW: j reads what i writes.
            if j_uses.iter().any(|u| i_defs.contains(u)) {
                add_edge(&mut succs, &mut preds_count, i, j, i_lat);
            }
            // WAR: j writes what i reads (same-cycle OK; latency 0 ~ 1).
            if j_defs.iter().any(|d| i_uses.contains(d)) {
                add_edge(&mut succs, &mut preds_count, i, j, 1);
            }
            // WAW.
            if j_defs.iter().any(|d| i_defs.contains(d)) {
                add_edge(&mut succs, &mut preds_count, i, j, 1);
            }
            // Memory ordering: a store is ordered against every other
            // memory access (no alias analysis post-RA).
            let i_mem = insts[i].is_mem();
            let j_mem = insts[j].is_mem();
            let i_store = matches!(insts[i].kind(), InstKind::Store);
            let j_store = matches!(insts[j].kind(), InstKind::Store);
            if i_mem && j_mem && (i_store || j_store) {
                add_edge(&mut succs, &mut preds_count, i, j, 1);
            }
        }
    }

    // Critical-path heights.
    let mut height = vec![0u32; n];
    for i in (0..n).rev() {
        let lat = assumed_latency(insts[i].kind());
        for &(j, _) in &succs[i] {
            height[i] = height[i].max(height[j] + lat);
        }
        height[i] = height[i].max(lat);
    }

    // List scheduling.
    let mut ready: Vec<usize> = (0..n).filter(|&i| preds_count[i] == 0).collect();
    let mut earliest = vec![0u32; n];
    let mut scheduled = Vec::with_capacity(n);
    let mut cycle = 0u32;
    while scheduled.len() < n {
        // Issue up to the assumed width this cycle, highest height first,
        // original order as tiebreak (stable under equal priorities).
        let mut issued = 0;
        loop {
            let pick = ready
                .iter()
                .copied()
                .filter(|&i| earliest[i] <= cycle)
                .max_by(|&a, &b| height[a].cmp(&height[b]).then(b.cmp(&a)));
            let Some(i) = pick else { break };
            if issued >= ASSUMED_ISSUE_WIDTH {
                break;
            }
            ready.retain(|&x| x != i);
            scheduled.push(i);
            issued += 1;
            for &(j, lat) in &succs[i] {
                preds_count[j] -= 1;
                earliest[j] = earliest[j].max(cycle + lat);
                if preds_count[j] == 0 {
                    ready.push(j);
                }
            }
        }
        cycle += 1;
        // Safety: if nothing is ready yet but instructions remain, advance
        // to the next earliest time.
        if scheduled.len() < n && ready.iter().all(|&i| earliest[i] > cycle) {
            if let Some(next) = ready.iter().map(|&i| earliest[i]).min() {
                cycle = cycle.max(next);
            }
        }
    }
    scheduled.into_iter().map(|i| insts[i]).collect()
}

/// Splits a block body at scheduling barriers (calls and other control
/// transfers) and schedules each straight-line region independently.
pub fn schedule_block(insts: &[Inst]) -> Vec<Inst> {
    let mut out = Vec::with_capacity(insts.len());
    let mut region = Vec::new();
    for &i in insts {
        if i.is_control() {
            out.extend(schedule_region(&region));
            region.clear();
            out.push(i);
        } else {
            region.push(i);
        }
    }
    out.extend(schedule_region(&region));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use emod_isa::{AluOp, Reg};

    fn li(rd: u8, imm: i64) -> Inst {
        Inst::LoadImm { rd: Reg(rd), imm }
    }

    fn add(rd: u8, rs: u8, rt: u8) -> Inst {
        Inst::Alu {
            op: AluOp::Add,
            rd: Reg(rd),
            rs: Reg(rs),
            rt: Reg(rt),
        }
    }

    fn load(rd: u8, rs: u8, offset: i64) -> Inst {
        Inst::Load {
            rd: Reg(rd),
            rs: Reg(rs),
            offset,
        }
    }

    fn store(rt: u8, rs: u8, offset: i64) -> Inst {
        Inst::Store {
            rt: Reg(rt),
            rs: Reg(rs),
            offset,
        }
    }

    /// Positions of each instruction in the output (by equality search).
    fn pos_of(out: &[Inst], inst: &Inst) -> usize {
        out.iter().position(|i| i == inst).unwrap()
    }

    #[test]
    fn preserves_raw_dependences() {
        let insts = vec![li(8, 1), add(9, 8, 8), add(10, 9, 9)];
        let out = schedule_region(&insts);
        assert!(pos_of(&out, &insts[0]) < pos_of(&out, &insts[1]));
        assert!(pos_of(&out, &insts[1]) < pos_of(&out, &insts[2]));
    }

    #[test]
    fn hoists_load_above_independent_alu() {
        // load (latency 3) feeding the final add should be scheduled before
        // the independent single-cycle adds.
        let insts = vec![
            li(8, 1),
            add(9, 8, 8),
            load(10, 29, 0), // independent of r8/r9 chain
            add(11, 10, 9),
        ];
        let out = schedule_region(&insts);
        assert!(
            pos_of(&out, &insts[2]) < pos_of(&out, &insts[1]),
            "load not hoisted: {:?}",
            out
        );
    }

    #[test]
    fn stores_never_cross_loads_or_stores() {
        let insts = vec![load(8, 29, 0), store(8, 29, 8), load(9, 29, 16)];
        let out = schedule_region(&insts);
        assert!(pos_of(&out, &insts[0]) < pos_of(&out, &insts[1]));
        assert!(pos_of(&out, &insts[1]) < pos_of(&out, &insts[2]));
    }

    #[test]
    fn independent_loads_may_reorder() {
        // No store between them: order is free; just verify both survive.
        let insts = vec![load(8, 29, 0), load(9, 29, 8)];
        let out = schedule_region(&insts);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn war_and_waw_respected() {
        let insts = vec![
            add(9, 8, 8),  // reads r8
            li(8, 5),      // WAR with #0
            li(8, 6),      // WAW with #1
            add(10, 8, 8), // RAW on #2
        ];
        let out = schedule_region(&insts);
        assert!(pos_of(&out, &insts[0]) < pos_of(&out, &insts[1]));
        assert!(pos_of(&out, &insts[1]) < pos_of(&out, &insts[2]));
        assert!(pos_of(&out, &insts[2]) < pos_of(&out, &insts[3]));
    }

    #[test]
    fn schedule_block_keeps_calls_in_place() {
        let insts = vec![li(8, 1), Inst::Call { target: 5 }, li(9, 2)];
        let out = schedule_block(&insts);
        assert_eq!(out[1], Inst::Call { target: 5 });
    }

    #[test]
    fn output_is_permutation() {
        let insts = vec![
            li(8, 1),
            li(9, 2),
            add(10, 8, 9),
            load(11, 29, 0),
            add(12, 11, 10),
            store(12, 29, 8),
        ];
        let out = schedule_region(&insts);
        assert_eq!(out.len(), insts.len());
        for i in &insts {
            assert!(out.contains(i));
        }
    }
}
