//! Deterministic input generators for the workloads.
//!
//! Inputs are produced from fixed seeds per (workload, input-set); `ref`
//! inputs are larger and differently distributed than `train`, which is
//! what makes the paper's Table 7 profile-transfer experiment meaningful.

use crate::{base_of, encode_f64s, encode_i64s, InputSet};
use emod_compiler::ir::Module;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

type Segments = Vec<(u64, Vec<u8>)>;

fn rng_for(name: &str, set: InputSet) -> StdRng {
    let mut seed = 0xE0D_u64;
    for b in name.bytes() {
        seed = seed.wrapping_mul(31).wrapping_add(b as u64);
    }
    if set == InputSet::Ref {
        seed = seed.wrapping_add(0x5eed_0000);
    }
    StdRng::seed_from_u64(seed)
}

fn params_segment(module: &Module, values: &[i64]) -> (u64, Vec<u8>) {
    (base_of(module, "params"), encode_i64s(values))
}

/// Compressible byte stream: runs and back-references like image data.
fn compressible_bytes(rng: &mut StdRng, len: usize) -> Vec<i64> {
    let mut out: Vec<i64> = Vec::with_capacity(len);
    while out.len() < len {
        if out.len() > 64 && rng.gen_bool(0.55) {
            // Copy a short run from earlier (creates LZ matches).
            let src = rng.gen_range(0..out.len() - 32);
            let run = rng.gen_range(4..24).min(len - out.len());
            for k in 0..run {
                let v = out[src + k];
                out.push(v);
            }
        } else {
            let v = rng.gen_range(0..256);
            let run = rng.gen_range(1..6).min(len - out.len());
            for _ in 0..run {
                out.push(v);
            }
        }
    }
    out
}

/// 164.gzip inputs.
pub fn gzip(module: &Module, set: InputSet) -> Segments {
    let mut rng = rng_for("gzip", set);
    let (n, reps) = match set {
        InputSet::Train => (8192i64, 2i64),
        InputSet::Ref => (30000, 3),
    };
    let data = compressible_bytes(&mut rng, n as usize);
    vec![
        params_segment(module, &[n, 0, reps]),
        (base_of(module, "input"), encode_i64s(&data)),
    ]
}

/// 175.vpr inputs.
pub fn vpr(module: &Module, set: InputSet) -> Segments {
    let mut rng = rng_for("vpr", set);
    let (ncells, nnets, moves) = match set {
        InputSet::Train => (2048i64, 4096i64, 10_000i64),
        InputSet::Ref => (4096, 8192, 40_000),
    };
    let cellx: Vec<i64> = (0..ncells).map(|_| rng.gen_range(0..256)).collect();
    let celly: Vec<i64> = (0..ncells).map(|_| rng.gen_range(0..256)).collect();
    let neta: Vec<i64> = (0..nnets).map(|_| rng.gen_range(0..ncells)).collect();
    let netb: Vec<i64> = (0..nnets).map(|_| rng.gen_range(0..ncells)).collect();
    vec![
        params_segment(module, &[ncells, nnets, moves]),
        (base_of(module, "cellx"), encode_i64s(&cellx)),
        (base_of(module, "celly"), encode_i64s(&celly)),
        (base_of(module, "neta"), encode_i64s(&neta)),
        (base_of(module, "netb"), encode_i64s(&netb)),
    ]
}

/// 177.mesa inputs.
pub fn mesa(module: &Module, set: InputSet) -> Segments {
    let mut rng = rng_for("mesa", set);
    let (ntris, size, reps) = match set {
        InputSet::Train => (64i64, 64i64, 2i64),
        InputSet::Ref => (128, 128, 2),
    };
    let mut tri = Vec::with_capacity((ntris * 8) as usize);
    for _ in 0..ntris {
        let cx = rng.gen_range(4.0..(size as f64 - 4.0));
        let cy = rng.gen_range(4.0..(size as f64 - 4.0));
        let extent = rng.gen_range(4.0..(size as f64 / 2.5));
        // Counter-clockwise triangle around (cx, cy) so the edge functions
        // are positive inside.
        tri.push(cx);
        tri.push(cy - extent);
        tri.push(cx - extent);
        tri.push(cy + extent * 0.8);
        tri.push(cx + extent);
        tri.push(cy + extent * 0.7);
        tri.push(rng.gen_range(0.0..100.0)); // z
        tri.push(rng.gen_range(0.0..1.0)); // shade
    }
    vec![
        params_segment(module, &[ntris, size, reps]),
        (base_of(module, "tri"), encode_f64s(&tri)),
    ]
}

/// 179.art inputs.
pub fn art(module: &Module, set: InputSet) -> Segments {
    let mut rng = rng_for("art", set);
    let (n1, n2, reps) = match set {
        InputSet::Train => (64i64, 256i64, 25i64),
        InputSet::Ref => (64, 1024, 25),
    };
    let f1: Vec<f64> = (0..64).map(|_| rng.gen_range(0.0..1.0)).collect();
    let weights: Vec<f64> = (0..(n2 * 64) as usize)
        .map(|_| rng.gen_range(0.0..1.0))
        .collect();
    vec![
        params_segment(module, &[n1, n2, reps]),
        (base_of(module, "f1"), encode_f64s(&f1)),
        (base_of(module, "weights"), encode_f64s(&weights)),
    ]
}

/// 181.mcf inputs: a single-cycle random permutation (Sattolo's algorithm)
/// so the pointer chase visits every node.
pub fn mcf(module: &Module, set: InputSet) -> Segments {
    let mut rng = rng_for("mcf", set);
    let (n, steps) = match set {
        InputSet::Train => (16384i64, 150_000i64),
        InputSet::Ref => (32768, 400_000),
    };
    let mut nxt: Vec<i64> = (0..n).collect();
    // Sattolo: single cycle.
    for i in (1..n as usize).rev() {
        let j = rng.gen_range(0..i);
        nxt.swap(i, j);
    }
    let cost: Vec<i64> = (0..n).map(|_| rng.gen_range(-100..100)).collect();
    vec![
        params_segment(module, &[n, 0, steps]),
        (base_of(module, "nxt"), encode_i64s(&nxt)),
        (base_of(module, "cost"), encode_i64s(&cost)),
    ]
}

/// 255.vortex inputs: a query stream with ~60% hits.
pub fn vortex(module: &Module, set: InputSet) -> Segments {
    let mut rng = rng_for("vortex", set);
    let (nobjs, nqueries, reps) = match set {
        InputSet::Train => (4096i64, 8192i64, 5i64),
        InputSet::Ref => (8192, 16384, 6),
    };
    let queries: Vec<i64> = (0..nqueries)
        .map(|_| {
            if rng.gen_bool(0.6) {
                let i = rng.gen_range(0..nobjs);
                (i * 7919 + 13) % 65536
            } else {
                rng.gen_range(0..65536)
            }
        })
        .collect();
    vec![
        params_segment(module, &[nobjs, nqueries, reps]),
        (base_of(module, "queries"), encode_i64s(&queries)),
    ]
}

/// 256.bzip2 inputs (buffer length must be a power of two for the program's
/// masking).
pub fn bzip2(module: &Module, set: InputSet) -> Segments {
    let mut rng = rng_for("bzip2", set);
    let (n, reps) = match set {
        InputSet::Train => (4096i64, 6i64),
        InputSet::Ref => (16384, 4),
    };
    assert!(n > 0 && (n & (n - 1)) == 0, "bzip2 buffer must be 2^k");
    let buf = compressible_bytes(&mut rng, n as usize);
    vec![
        params_segment(module, &[n, 0, reps]),
        (base_of(module, "buf"), encode_i64s(&buf)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn segments_fit_declared_globals() {
        for w in Workload::all() {
            let module = w.module();
            for set in [InputSet::Train, InputSet::Ref] {
                for (base, bytes) in w.input(set) {
                    let g = module
                        .globals
                        .iter()
                        .find(|g| g.base == base)
                        .unwrap_or_else(|| panic!("{}: no global at {:#x}", w.name(), base));
                    assert!(
                        bytes.len() <= g.len * 8,
                        "{}: segment for {} overflows ({} > {})",
                        w.name(),
                        g.name,
                        bytes.len(),
                        g.len * 8
                    );
                }
            }
        }
    }

    #[test]
    fn ref_inputs_are_larger_scale() {
        // The first param (size) or step count must grow from train to ref.
        for w in Workload::all() {
            let module = w.module();
            let pbase = base_of(module, "params");
            let get = |set: InputSet| -> Vec<i64> {
                let seg = w
                    .input(set)
                    .into_iter()
                    .find(|(b, _)| *b == pbase)
                    .expect("params segment");
                seg.1
                    .chunks(8)
                    .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
                    .collect()
            };
            let train = get(InputSet::Train);
            let reff = get(InputSet::Ref);
            assert!(
                reff.iter().sum::<i64>() > train.iter().sum::<i64>(),
                "{}: ref not larger",
                w.name()
            );
        }
    }
}
