//! Tinylang source text for the seven workloads.
//!
//! Every program reads its run parameters from `params[]`
//! (`params[0..3]` = size / secondary size / repetitions) and returns a
//! checksum so that architectural results validate optimization
//! correctness.

/// 164.gzip-graphic — LZ77 hash-chain match searching over a byte buffer.
/// Integer-dominated with data-dependent inner loops, hash tables and
/// chains, like gzip's deflate.
pub const GZIP: &str = r#"
global params[4];
global input[32768];
global hashhead[4096];
global hashnext[32768];

fn hash3(a, b, c) {
    return ((a * 33 + b) * 33 + c) & 4095;
}

fn main() {
    var n = params[0];
    var reps = params[2];
    var checksum = 1;
    for (r = 0; r < reps; r = r + 1) {
        for (h = 0; h < 4096; h = h + 1) { hashhead[h] = 0 - 1; }
        var i = 0;
        while (i < n - 2) {
            var h = hash3(input[i], input[i + 1], input[i + 2]);
            var best = 0;
            var cand = hashhead[h];
            var depth = 0;
            while ((cand >= 0) && (depth < 8)) {
                var len = 0;
                while ((len < 16) && (input[cand + len] == input[i + len])) {
                    len = len + 1;
                }
                if (len > best) { best = len; }
                cand = hashnext[cand];
                depth = depth + 1;
            }
            hashnext[i] = hashhead[h];
            hashhead[h] = i;
            if (best >= 3) {
                checksum = checksum + best * 2 + 256;
                i = i + best;
            } else {
                checksum = checksum + input[i];
                i = i + 1;
            }
        }
        checksum = checksum % 1000000007;
    }
    return checksum;
}
"#;

/// 175.vpr-route — simulated-annealing-style swap evaluation over a
/// placement grid: bounding-box cost of nets, pseudo-random move proposals,
/// helper calls that inlining can flatten.
pub const VPR: &str = r#"
global params[4];
global cellx[4096];
global celly[4096];
global neta[8192];
global netb[8192];

fn absdiff(a, b) {
    if (a > b) { return a - b; }
    return b - a;
}

fn netcost(k) {
    var a = neta[k];
    var b = netb[k];
    return absdiff(cellx[a], cellx[b]) + absdiff(celly[a], celly[b]);
}

fn main() {
    var ncells = params[0];
    var nnets = params[1];
    var moves = params[2];
    var seed = 12345;
    var total = 0;
    for (k = 0; k < nnets; k = k + 1) { total = total + netcost(k); }
    var accepted = 0;
    for (m = 0; m < moves; m = m + 1) {
        seed = (seed * 1103515245 + 12345) & 1048575;
        var c1 = seed % ncells;
        seed = (seed * 1103515245 + 12345) & 1048575;
        var c2 = seed % ncells;
        // Evaluate a handful of nets around the two cells before and after
        // swapping their positions.
        var probe = (m * 5) % nnets;
        var before = netcost(probe) + netcost((probe + 1) % nnets)
            + netcost((probe + 2) % nnets) + netcost((probe + 3) % nnets);
        var tx = cellx[c1]; var ty = celly[c1];
        cellx[c1] = cellx[c2]; celly[c1] = celly[c2];
        cellx[c2] = tx; celly[c2] = ty;
        var after = netcost(probe) + netcost((probe + 1) % nnets)
            + netcost((probe + 2) % nnets) + netcost((probe + 3) % nnets);
        var threshold = 4 - (m * 8) / (moves + 1);
        if (after > before + threshold) {
            // Reject: swap back.
            tx = cellx[c1]; ty = celly[c1];
            cellx[c1] = cellx[c2]; celly[c1] = celly[c2];
            cellx[c2] = tx; celly[c2] = ty;
        } else {
            accepted = accepted + 1;
            total = total + after - before;
        }
    }
    return (total * 131 + accepted) % 1000000007;
}
"#;

/// 177.mesa — software rasterization of triangles into a z-buffered
/// framebuffer: edge functions and per-pixel FP interpolation, like mesa's
/// span renderers.
pub const MESA: &str = r#"
global params[4];
globalf tri[2048];
globalf zbuf[16384];
global fb[16384];

fn main() {
    var ntris = params[0];
    var size = params[1];
    var reps = params[2];
    var painted = 0;
    for (r = 0; r < reps; r = r + 1) {
        for (p = 0; p < size * size; p = p + 1) { zbuf[p] = 1000000.0; }
        for (t = 0; t < ntris; t = t + 1) {
            var x0 = tri[t * 8 + 0]; var y0 = tri[t * 8 + 1];
            var x1 = tri[t * 8 + 2]; var y1 = tri[t * 8 + 3];
            var x2 = tri[t * 8 + 4]; var y2 = tri[t * 8 + 5];
            var z0 = tri[t * 8 + 6]; var shade = tri[t * 8 + 7];
            // Bounding box, clamped to the framebuffer.
            var minx = int(x0); var maxx = int(x0);
            if (int(x1) < minx) { minx = int(x1); }
            if (int(x2) < minx) { minx = int(x2); }
            if (int(x1) > maxx) { maxx = int(x1); }
            if (int(x2) > maxx) { maxx = int(x2); }
            var miny = int(y0); var maxy = int(y0);
            if (int(y1) < miny) { miny = int(y1); }
            if (int(y2) < miny) { miny = int(y2); }
            if (int(y1) > maxy) { maxy = int(y1); }
            if (int(y2) > maxy) { maxy = int(y2); }
            if (minx < 0) { minx = 0; }
            if (miny < 0) { miny = 0; }
            if (maxx >= size) { maxx = size - 1; }
            if (maxy >= size) { maxy = size - 1; }
            for (y = miny; y <= maxy; y = y + 1) {
                var fy = float(y);
                for (x = minx; x <= maxx; x = x + 1) {
                    var fx = float(x);
                    // Edge functions.
                    var e0 = (x1 - x0) * (fy - y0) - (y1 - y0) * (fx - x0);
                    var e1 = (x2 - x1) * (fy - y1) - (y2 - y1) * (fx - x1);
                    var e2 = (x0 - x2) * (fy - y2) - (y0 - y2) * (fx - x2);
                    var inside = 0;
                    if ((e0 >= 0.0) && ((e1 >= 0.0) && (e2 >= 0.0))) { inside = 1; }
                    if ((e0 <= 0.0) && ((e1 <= 0.0) && (e2 <= 0.0))) { inside = 1; }
                    if (inside) {
                        var z = z0 + e0 * 0.001 + e1 * 0.002;
                        var idx = y * size + x;
                        if (z < zbuf[idx]) {
                            zbuf[idx] = z;
                            fb[idx] = int(shade * 255.0) & 255;
                            painted = painted + 1;
                        }
                    }
                }
            }
        }
    }
    var check = painted;
    for (p = 0; p < size * size; p = p + 1) { check = (check * 3 + fb[p]) % 1000000007; }
    return check;
}
"#;

/// 179.art — adaptive-resonance-flavored neural network: streaming FP dot
/// products over an L2-sized weight matrix, winner-take-all search, weight
/// adaptation. FP and L2-bandwidth bound like art's F2 layer.
pub const ART: &str = r#"
global params[4];
globalf f1[64];
globalf weights[65536];
globalf f2[1024];

fn main() {
    var n1 = params[0];
    var n2 = params[1];
    var reps = params[2];
    var check = 0.0;
    var lastwin = 0;
    for (r = 0; r < reps; r = r + 1) {
        for (j = 0; j < n2; j = j + 1) {
            var sum = 0.0;
            var base = j * 64;
            for (i = 0; i < n1; i = i + 1) {
                sum = sum + weights[base + i] * f1[i];
            }
            f2[j] = sum * 0.9 + f2[j] * 0.1;
        }
        var bestj = 0;
        var bestv = f2[0];
        for (j = 1; j < n2; j = j + 1) {
            if (f2[j] > bestv) { bestv = f2[j]; bestj = j; }
        }
        // Adapt the winner's weights toward the input.
        var wbase = bestj * 64;
        for (i = 0; i < n1; i = i + 1) {
            weights[wbase + i] = weights[wbase + i] * 0.995 + f1[i] * 0.005;
        }
        // Perturb the input so successive presentations differ.
        f1[r % 64] = f1[r % 64] + 0.015625;
        check = check + bestv;
        lastwin = bestj;
    }
    return (int(check * 64.0) + lastwin * 7) % 1000000007;
}
"#;

/// 181.mcf — network-flow relaxation sweep: pointer chasing through a
/// random successor permutation with cost updates; dominated by
/// memory latency and L2 behaviour like mcf's node/arc walks.
pub const MCF: &str = r#"
global params[4];
global nxt[32768];
global cost[32768];
global flow[4096];

fn main() {
    var n = params[0];
    var steps = params[2];
    var cur = 0;
    var acc = 1;
    for (s = 0; s < steps; s = s + 1) {
        cur = nxt[cur];
        var slot = cur & 4095;
        var c = cost[cur] + flow[slot];
        if (c > 0) {
            flow[slot] = flow[slot] + 1;
            acc = acc + c;
        } else {
            flow[slot] = flow[slot] - 1;
            acc = acc - c;
        }
        // Occasional relaxation of an arc cost keeps values bounded.
        if ((s & 255) == 0) {
            cost[cur] = cost[cur] - flow[slot];
            acc = acc % 1000000007;
        }
    }
    return (acc + cur) % 1000000007;
}
"#;

/// 255.vortex-lendian1 — object-database lookups: hash-chained key lookup,
/// object field dispatch through small accessor functions, inserts and
/// updates. Call- and icache-intensive like vortex.
pub const VORTEX: &str = r#"
global params[4];
global queries[16384];
global htab[4096];
global hnext[8192];
global keys[8192];
global typ[8192];
global fld0[8192];
global fld1[8192];
global fld2[8192];

fn hashk(k) {
    return ((k * 2654435761) >> 8) & 4095;
}

fn lookup(k) {
    var idx = htab[hashk(k)];
    var depth = 0;
    while ((idx >= 0) && (depth < 32)) {
        if (keys[idx] == k) { return idx; }
        idx = hnext[idx];
        depth = depth + 1;
    }
    return 0 - 1;
}

fn field0(idx) { return fld0[idx]; }
fn field1(idx) { return fld1[idx]; }
fn field2(idx) { return fld2[idx]; }

fn getfield(idx, t) {
    if (t == 0) { return field0(idx); }
    if (t == 1) { return field1(idx) + field0(idx); }
    return field2(idx) - field1(idx);
}

fn insert(i, k) {
    var h = hashk(k);
    keys[i] = k;
    typ[i] = k % 3;
    fld0[i] = k * 3;
    fld1[i] = k >> 2;
    fld2[i] = k ^ 12345;
    hnext[i] = htab[h];
    htab[h] = i;
    return h;
}

fn main() {
    var nobjs = params[0];
    var nqueries = params[1];
    var reps = params[2];
    var check = 1;
    for (h = 0; h < 4096; h = h + 1) { htab[h] = 0 - 1; }
    for (i = 0; i < nobjs; i = i + 1) {
        var unused = insert(i, (i * 7919 + 13) % 65536);
    }
    for (r = 0; r < reps; r = r + 1) {
        for (q = 0; q < nqueries; q = q + 1) {
            var k = queries[q];
            var idx = lookup(k);
            if (idx >= 0) {
                check = check + getfield(idx, typ[idx]);
                fld1[idx] = fld1[idx] + 1;
            } else {
                check = check + 1;
            }
        }
        check = check % 1000000007;
    }
    return check;
}
"#;

/// 256.bzip2-graphic — block-sorting compression front end: byte-frequency
/// counting sort, permutation build, move-to-front encoding with a
/// positional search, run-length checksum. Integer and branch heavy.
pub const BZIP2: &str = r#"
global params[4];
global buf[32768];
global cnt[256];
global start[256];
global order[32768];
global mtf[256];

fn main() {
    var n = params[0];
    var reps = params[2];
    var check = 1;
    for (r = 0; r < reps; r = r + 1) {
        // Counting sort of buffer positions by byte value.
        for (b = 0; b < 256; b = b + 1) { cnt[b] = 0; }
        for (i = 0; i < n; i = i + 1) { cnt[buf[i]] = cnt[buf[i]] + 1; }
        var run = 0;
        for (b = 0; b < 256; b = b + 1) { start[b] = run; run = run + cnt[b]; }
        for (i = 0; i < n; i = i + 1) {
            var v = buf[i];
            order[start[v]] = i;
            start[v] = start[v] + 1;
        }
        // Move-to-front over the sorted-by-context sequence.
        for (b = 0; b < 256; b = b + 1) { mtf[b] = b; }
        for (i = 0; i < n; i = i + 1) {
            var sym = buf[order[i] & (n - 1)];
            // Find the symbol's position in the MTF table.
            var pos = 0;
            while (mtf[pos] != sym) { pos = pos + 1; }
            // Shift the prefix down and move the symbol to the front.
            for (k = pos; k > 0; k = k - 1) { mtf[k] = mtf[k - 1]; }
            mtf[0] = sym;
            check = check + pos;
            if (pos == 0) { check = check + 1; }
        }
        check = check % 1000000007;
        // Mutate the buffer slightly between repetitions.
        buf[r % n] = (buf[r % n] + 1) & 255;
    }
    return check;
}
"#;
