//! Synthetic stand-ins for the seven SPEC CPU2000 program/input pairs the
//! paper evaluates (§5–§6).
//!
//! SPEC CPU2000 is proprietary, so each workload here is a Tinylang program
//! whose dominant kernel exercises the same bottlenecks as its namesake:
//!
//! | Workload | Namesake | Character |
//! |---|---|---|
//! | `164.gzip-graphic` | gzip | LZ77 hash-chain matching: int ops, data-dependent branches, tables |
//! | `175.vpr-route` | vpr | Annealing-style swap evaluation: scattered int reads, small helper calls |
//! | `177.mesa` | mesa | Triangle rasterization: FP interpolation, z-buffer, mixed int/FP |
//! | `179.art` | art | Neural-network resonance: streaming FP dot products, L2-sized weights |
//! | `181.mcf` | mcf | Network relaxation: pointer chasing, memory-latency bound |
//! | `255.vortex-lendian1` | vortex | Object DB lookups: hash chains, many small functions, icache/call heavy |
//! | `256.bzip2-graphic` | bzip2 | Block-sort compression: counting sort + MTF, int + branchy |
//!
//! Each workload has deterministic, seeded `train` and `ref` inputs; inputs
//! are written into the program's global arrays as initial data segments, so
//! the same binary semantics hold at every optimization setting.
//!
//! # Examples
//!
//! ```
//! use emod_workloads::{InputSet, Workload};
//! use emod_compiler::OptConfig;
//! use emod_isa::Emulator;
//!
//! let w = Workload::by_name("179.art").unwrap();
//! let prog = w.program(&OptConfig::o2(), InputSet::Train).unwrap();
//! let checksum = Emulator::new(&prog).run(200_000_000).unwrap();
//! assert_eq!(checksum, w.reference_checksum(InputSet::Train));
//! ```

mod inputs;
mod sources;

use emod_compiler::ir::Module;
use emod_compiler::{front, CompileError, OptConfig};
use emod_isa::Program;
use std::sync::OnceLock;

/// Which input the program runs on: the paper builds models on `train` and
/// evaluates the profile-guided scenario on `ref` (Table 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputSet {
    /// Smaller model-building input.
    Train,
    /// Larger evaluation input.
    Ref,
}

impl InputSet {
    /// The conventional name ("train"/"ref").
    pub fn name(&self) -> &'static str {
        match self {
            InputSet::Train => "train",
            InputSet::Ref => "ref",
        }
    }
}

/// Generates the `(argument, data memory)` runs for one input set.
type InputGenFn = fn(&Module, InputSet) -> Vec<(u64, Vec<u8>)>;

/// A benchmark program: source, input generators, reference checksums.
pub struct Workload {
    name: &'static str,
    source: &'static str,
    gen: InputGenFn,
    module: OnceLock<Module>,
    checksums: OnceLock<[i64; 2]>,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .finish()
    }
}

macro_rules! workload {
    ($name:expr, $source:expr, $gen:path) => {
        Workload {
            name: $name,
            source: $source,
            gen: $gen,
            module: OnceLock::new(),
            checksums: OnceLock::new(),
        }
    };
}

static WORKLOADS: OnceLock<Vec<Workload>> = OnceLock::new();

impl Workload {
    /// All seven workloads, in the paper's Table 3 order.
    pub fn all() -> &'static [Workload] {
        WORKLOADS.get_or_init(|| {
            vec![
                workload!("164.gzip-graphic", sources::GZIP, inputs::gzip),
                workload!("175.vpr-route", sources::VPR, inputs::vpr),
                workload!("177.mesa", sources::MESA, inputs::mesa),
                workload!("179.art", sources::ART, inputs::art),
                workload!("181.mcf", sources::MCF, inputs::mcf),
                workload!("255.vortex-lendian1", sources::VORTEX, inputs::vortex),
                workload!("256.bzip2-graphic", sources::BZIP2, inputs::bzip2),
            ]
        })
    }

    /// Looks a workload up by (prefix of) its name.
    pub fn by_name(name: &str) -> Option<&'static Workload> {
        Workload::all()
            .iter()
            .find(|w| w.name == name || w.name.contains(name))
    }

    /// The workload's name, e.g. `"181.mcf"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The Tinylang source text.
    pub fn source(&self) -> &'static str {
        self.source
    }

    /// The lowered IR module (parsed once and cached). Global addresses are
    /// deterministic, so inputs are valid for every compiled variant.
    pub fn module(&self) -> &Module {
        self.module.get_or_init(|| {
            front::parse_and_lower(self.source)
                .unwrap_or_else(|e| panic!("workload {} does not lower: {}", self.name, e))
        })
    }

    /// The input data segments for `set`.
    pub fn input(&self, set: InputSet) -> Vec<(u64, Vec<u8>)> {
        (self.gen)(self.module(), set)
    }

    /// Compiles the workload under `config` with the `set` input attached.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] if compilation fails (it never should for
    /// the bundled sources — configurations are validated upstream).
    pub fn program(&self, config: &OptConfig, set: InputSet) -> Result<Program, CompileError> {
        let mut prog = emod_compiler::compile_module(self.module().clone(), config)?;
        for (base, bytes) in self.input(set) {
            prog.add_data(base, bytes);
        }
        Ok(prog)
    }

    /// The expected exit value (checksum), computed once at `-O0` and used
    /// to validate every other configuration.
    pub fn reference_checksum(&self, set: InputSet) -> i64 {
        let idx = match set {
            InputSet::Train => 0,
            InputSet::Ref => 1,
        };
        self.checksums.get_or_init(|| {
            let run = |set| {
                let prog = self
                    .program(&OptConfig::o0(), set)
                    .expect("bundled workload compiles");
                emod_isa::Emulator::new(&prog)
                    .run(2_000_000_000)
                    .unwrap_or_else(|e| panic!("workload {} faulted: {}", self.name, e))
            };
            [run(InputSet::Train), run(InputSet::Ref)]
        })[idx]
    }
}

/// Encodes a slice of i64 values as little-endian bytes.
pub(crate) fn encode_i64s(values: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encodes a slice of f64 values as little-endian bit patterns.
pub(crate) fn encode_f64s(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// Resolves a global's base address in a module.
///
/// # Panics
///
/// Panics if the global does not exist (a workload-source bug).
pub(crate) fn base_of(module: &Module, name: &str) -> u64 {
    module
        .global_base(name)
        .unwrap_or_else(|| panic!("global `{}` missing", name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use emod_isa::Emulator;

    #[test]
    fn seven_workloads_with_paper_names() {
        let names: Vec<&str> = Workload::all().iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 7);
        for expect in [
            "164.gzip-graphic",
            "175.vpr-route",
            "177.mesa",
            "179.art",
            "181.mcf",
            "255.vortex-lendian1",
            "256.bzip2-graphic",
        ] {
            assert!(names.contains(&expect), "missing {}", expect);
        }
    }

    #[test]
    fn by_name_finds_prefixes() {
        assert_eq!(Workload::by_name("181.mcf").unwrap().name(), "181.mcf");
        assert_eq!(Workload::by_name("mcf").unwrap().name(), "181.mcf");
        assert!(Workload::by_name("999.nope").is_none());
    }

    #[test]
    fn all_workloads_compile_and_run_at_o0_train() {
        for w in Workload::all() {
            let prog = w.program(&OptConfig::o0(), InputSet::Train).unwrap();
            let v = Emulator::new(&prog)
                .run(2_000_000_000)
                .unwrap_or_else(|e| panic!("{} faulted: {}", w.name(), e));
            assert_ne!(v, 0, "{} checksum should be nonzero", w.name());
        }
    }

    #[test]
    fn optimization_preserves_checksums() {
        for w in Workload::all() {
            let expect = w.reference_checksum(InputSet::Train);
            for cfg in [OptConfig::o2(), OptConfig::o3()] {
                let prog = w.program(&cfg, InputSet::Train).unwrap();
                let v = Emulator::new(&prog).run(2_000_000_000).unwrap();
                assert_eq!(v, expect, "{} diverged", w.name());
            }
        }
    }

    #[test]
    fn train_and_ref_differ() {
        for w in Workload::all() {
            assert_ne!(
                w.reference_checksum(InputSet::Train),
                w.reference_checksum(InputSet::Ref),
                "{}: inputs should produce different results",
                w.name()
            );
        }
    }

    #[test]
    fn workloads_are_big_enough_to_sample() {
        // Each workload should retire at least ~1M instructions on train so
        // SMARTS has material to sample.
        for w in Workload::all() {
            let prog = w.program(&OptConfig::o2(), InputSet::Train).unwrap();
            let mut emu = Emulator::new(&prog);
            emu.run(2_000_000_000).unwrap();
            assert!(
                emu.retired_count() > 500_000,
                "{} retired only {}",
                w.name(),
                emu.retired_count()
            );
        }
    }

    #[test]
    fn inputs_are_deterministic() {
        let w = Workload::by_name("mcf").unwrap();
        assert_eq!(w.input(InputSet::Train), w.input(InputSet::Train));
        assert_ne!(w.input(InputSet::Train), w.input(InputSet::Ref));
    }
}
