//! Pinned reference checksums: any semantic drift in the compiler, ISA,
//! input generators or workload sources shows up here immediately.
//!
//! If a change is *intentional* (e.g. retuned workload parameters), update
//! the constants from the test's failure output.

use emod_workloads::{InputSet, Workload};

/// (name, train checksum, ref checksum) — computed at -O0 and stable across
/// every optimization configuration by the equivalence tests.
const EXPECTED: &[(&str, i64, i64)] = &[
    ("164.gzip-graphic", 766583, 4199218),
    ("175.vpr-route", 89848272, 181154509),
    ("177.mesa", 131158109, 82151389),
    ("179.art", 31019, 29683),
    ("181.mcf", 8195044, 23433362),
    ("255.vortex-lendian1", 966169824, 934316315),
    ("256.bzip2-graphic", 145396, 189121),
];

#[test]
fn reference_checksums_are_pinned() {
    let mut failures = Vec::new();
    for (name, train, reff) in EXPECTED {
        let w = Workload::by_name(name).unwrap();
        let got_train = w.reference_checksum(InputSet::Train);
        let got_ref = w.reference_checksum(InputSet::Ref);
        if got_train != *train || got_ref != *reff {
            failures.push(format!(
                "(\"{}\", {}, {}),",
                name, got_train, got_ref
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "checksums drifted; if intentional, update EXPECTED to:\n{}",
        failures.join("\n")
    );
}
