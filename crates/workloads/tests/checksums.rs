//! Pinned reference checksums: any semantic drift in the compiler, ISA,
//! input generators or workload sources shows up here immediately.
//!
//! If a change is *intentional* (e.g. retuned workload parameters), update
//! the constants from the test's failure output.

use emod_workloads::{InputSet, Workload};

/// (name, train checksum, ref checksum) — computed at -O0 and stable across
/// every optimization configuration by the equivalence tests.
// Values pinned under the offline rand stand-in (crates/rand): workload
// input generators draw from its xoshiro256++ stream, so the constants
// changed (intentionally) when the workspace switched off upstream StdRng.
const EXPECTED: &[(&str, i64, i64)] = &[
    ("164.gzip-graphic", 756469, 4256302),
    ("175.vpr-route", 89874354, 181816850),
    ("177.mesa", 675760280, 427197464),
    ("179.art", 35817, 33788),
    ("181.mcf", 8249668, 23364483),
    ("255.vortex-lendian1", 967981564, 832072760),
    ("256.bzip2-graphic", 128543, 192533),
];

#[test]
fn reference_checksums_are_pinned() {
    let mut failures = Vec::new();
    for (name, train, reff) in EXPECTED {
        let w = Workload::by_name(name).unwrap();
        let got_train = w.reference_checksum(InputSet::Train);
        let got_ref = w.reference_checksum(InputSet::Ref);
        if got_train != *train || got_ref != *reff {
            failures.push(format!("(\"{}\", {}, {}),", name, got_train, got_ref));
        }
    }
    assert!(
        failures.is_empty(),
        "checksums drifted; if intentional, update EXPECTED to:\n{}",
        failures.join("\n")
    );
}
