//! Prints dynamic instruction counts and simulation timings per workload.
use emod_compiler::OptConfig;
use emod_uarch::{simulate_sampled, SampleConfig, UarchConfig};
use emod_workloads::{InputSet, Workload};
use std::time::Instant;

fn main() {
    for w in Workload::all() {
        for set in [InputSet::Train, InputSet::Ref] {
            let prog = w.program(&OptConfig::o2(), set).unwrap();
            let t0 = Instant::now();
            let res = simulate_sampled(
                &prog,
                &UarchConfig::typical(),
                &SampleConfig {
                    window: 1000,
                    interval: 20,
                    warmup: 2000,
                    fuel: u64::MAX,
                },
            )
            .unwrap();
            println!(
                "{:22} {:5} insts={:>9} cpi={:.3} cycles={:>10} err={:.4} wall={:?}",
                w.name(),
                set.name(),
                res.instructions,
                res.cpi,
                res.cycles,
                res.rel_error,
                t0.elapsed()
            );
        }
    }
}
