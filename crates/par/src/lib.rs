//! `emod-par`: a zero-dependency, deterministic work-stealing thread pool.
//!
//! The measurement campaigns, model fits and batch predictions in this
//! workspace are all *embarrassingly parallel over an indexed list of pure
//! tasks*: hundreds of D-optimal design points to simulate, dozens of
//! candidate hidden-layer sizes or hinge knots to score, a GA population to
//! evaluate, a batch of prediction points to shard. [`Pool`] parallelizes
//! exactly that shape while keeping a hard **determinism contract**:
//!
//! * Results are returned **by task index**, never by completion order.
//! * Each task sees only its own index and item; tasks that need randomness
//!   derive a per-task seed with [`task_seed`] instead of sharing a stream.
//! * A task panic is re-raised on the caller thread, and when several tasks
//!   panic the one with the **lowest index** wins — the same panic the
//!   sequential loop would have surfaced first.
//!
//! Under this contract `pool.map(items, f)` returns bit-identical results
//! for every worker count and every interleaving, so `EMOD_THREADS=1` and
//! `EMOD_THREADS=64` produce the same campaign responses, model artifacts
//! and predictions — only the wall time differs.
//!
//! # Scheduling
//!
//! Workers are **scoped threads** ([`std::thread::scope`]) over a **chunked
//! injector queue**: the task list is split into fixed-size chunks behind an
//! atomic cursor, and every idle worker *steals the next chunk* from the
//! shared injector until the queue drains. Because tasks never spawn
//! subtasks there is nothing to re-steal from sibling deques, so the
//! injector alone gives full work-stealing load balance (a worker stuck on
//! one slow simulation simply stops claiming chunks while the others drain
//! the rest) without any unsafe code or channel machinery.
//!
//! With one worker (or one task) the pool runs **inline** on the caller's
//! thread, reproducing today's sequential execution order exactly — no
//! threads are spawned at all.
//!
//! # Examples
//!
//! ```
//! use emod_par::Pool;
//!
//! let squares = Pool::new(4).map(&[1u64, 2, 3, 4, 5], |_i, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//!
//! // Bit-identical across worker counts: the determinism contract.
//! let seq = Pool::new(1).map(&[0.1f64, 0.2, 0.3], |i, &x| (x * i as f64).sin());
//! let par = Pool::new(8).map(&[0.1f64, 0.2, 0.3], |i, &x| (x * i as f64).sin());
//! assert!(seq.iter().zip(&par).all(|(a, b)| a.to_bits() == b.to_bits()));
//! ```

#![warn(missing_docs)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable selecting the worker count for every pool built
/// with [`Pool::from_env`] (measurement campaigns, model fits, GA fitness,
/// serve batch sharding). Unset or unparsable means "available
/// parallelism"; `1` forces the sequential inline path.
pub const THREADS_ENV: &str = "EMOD_THREADS";

/// The worker count [`Pool::from_env`] resolves to: `EMOD_THREADS` if it
/// parses to a positive integer, otherwise the machine's available
/// parallelism (and `1` if even that is unknown).
pub fn threads_from_env() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => available_parallelism(),
        },
        Err(_) => available_parallelism(),
    }
}

/// The machine's available parallelism (`1` when unknown).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Derives a decorrelated per-task RNG seed from a base seed and a task
/// index (splitmix64 finalizer). Tasks that need randomness must seed from
/// their *index*, never pull from a shared stream — sharing a stream would
/// make the draw order depend on the interleaving and break the
/// determinism contract.
///
/// # Examples
///
/// ```
/// let seeds: Vec<u64> = (0..4).map(|i| emod_par::task_seed(42, i)).collect();
/// assert_eq!(seeds.len(), 4);
/// assert!(seeds.windows(2).all(|w| w[0] != w[1]));
/// ```
pub fn task_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic work-stealing pool: a fixed worker count and the
/// [`Pool::map`]/[`Pool::map_with`] entry points. Creating a `Pool` is
/// free — workers are scoped to each call, not kept alive between calls —
/// so callers construct one per batch and the `EMOD_THREADS` knob takes
/// effect immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::from_env()
    }
}

impl Pool {
    /// A pool with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// A pool sized by `EMOD_THREADS` (default: available parallelism) —
    /// see [`threads_from_env`].
    pub fn from_env() -> Pool {
        Pool::new(threads_from_env())
    }

    /// The worker count this pool fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, in parallel, returning results in item order.
    ///
    /// `f` receives `(index, &item)` and must be a pure function of them
    /// (telemetry side effects excepted) for the determinism contract to
    /// hold. With one worker or at most one item the call runs inline on
    /// the caller's thread in index order.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the lowest-index panicking task after all
    /// workers have stopped.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_with(items, |_| (), |(), i, item| f(i, item))
    }

    /// [`Pool::map`] with per-worker state: `init` runs once on each worker
    /// thread (receiving the worker index) before it claims its first
    /// chunk, and the state is passed mutably to every task the worker
    /// runs. Use it for per-worker telemetry spans or scratch buffers;
    /// task *results* must not depend on it.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the lowest-index panicking task after all
    /// workers have stopped. A panic in `init` propagates as-is.
    pub fn map_with<T, R, S, I, F>(&self, items: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn(usize) -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n.max(1));
        if workers <= 1 {
            // Inline sequential path: exact legacy execution order, no
            // spawned threads, panics propagate from the failing task
            // directly.
            let mut state = init(0);
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| f(&mut state, i, item))
                .collect();
        }

        // Chunked injector: workers steal `chunk`-sized index ranges from a
        // shared atomic cursor until the queue drains. Small chunks keep
        // heterogeneous task times balanced; the clamp bounds cursor
        // contention for huge batches.
        let chunk = (n / (workers * 8)).clamp(1, 64);
        let injector = AtomicUsize::new(0);
        type TaskResult<R> = (usize, Result<R, Box<dyn std::any::Any + Send>>);
        let mut slots: Vec<Option<Result<R, Box<dyn std::any::Any + Send>>>> = Vec::new();
        slots.resize_with(n, || None);

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let injector = &injector;
                    let init = &init;
                    let f = &f;
                    scope.spawn(move || {
                        let mut out: Vec<TaskResult<R>> = Vec::new();
                        let mut state = init(w);
                        loop {
                            let start = injector.fetch_add(chunk, Ordering::Relaxed);
                            if start >= n {
                                break;
                            }
                            for (i, item) in items
                                .iter()
                                .enumerate()
                                .take((start + chunk).min(n))
                                .skip(start)
                            {
                                let r = catch_unwind(AssertUnwindSafe(|| f(&mut state, i, item)));
                                out.push((i, r));
                            }
                        }
                        out
                    })
                })
                .collect();
            for handle in handles {
                // Workers never unwind (tasks are caught), so join only
                // fails if a worker was killed externally.
                let results = handle.join().expect("pool worker died outside a task");
                for (i, r) in results {
                    slots[i] = Some(r);
                }
            }
        });

        let mut out = Vec::with_capacity(n);
        let mut first_panic: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
        for (i, slot) in slots.into_iter().enumerate() {
            match slot.expect("every task index was claimed exactly once") {
                Ok(r) => out.push(r),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some((i, payload));
                    }
                }
            }
        }
        if let Some((_, payload)) = first_panic {
            resume_unwind(payload);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 3, 8] {
            let out = Pool::new(threads).map(&items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn results_bit_identical_across_worker_counts() {
        let items: Vec<f64> = (0..100).map(|i| 0.01 * i as f64).collect();
        let work = |i: usize, x: &f64| (x.sin() * task_seed(7, i as u64) as f64).sqrt();
        let seq: Vec<u64> = Pool::new(1)
            .map(&items, work)
            .into_iter()
            .map(f64::to_bits)
            .collect();
        for threads in [2, 4, 16] {
            let par: Vec<u64> = Pool::new(threads)
                .map(&items, work)
                .into_iter()
                .map(f64::to_bits)
                .collect();
            assert_eq!(seq, par, "threads={}", threads);
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits = AtomicU64::new(0);
        let items: Vec<u32> = (0..1000).collect();
        let out = Pool::new(7).map(&items, |_, &x| {
            hits.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(Pool::new(8).map(&empty, |_, &x| x).is_empty());
        assert_eq!(Pool::new(8).map(&[9u8], |_, &x| x), vec![9]);
    }

    #[test]
    fn lowest_index_panic_wins() {
        for threads in [1, 4] {
            let items: Vec<usize> = (0..64).collect();
            let caught = catch_unwind(AssertUnwindSafe(|| {
                Pool::new(threads).map(&items, |i, _| {
                    if i == 13 || i == 50 {
                        panic!("task {} failed", i);
                    }
                    i
                })
            }))
            .expect_err("must panic");
            let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
            assert_eq!(msg, "task 13 failed", "threads={}", threads);
        }
    }

    #[test]
    fn map_with_initializes_once_per_worker() {
        let inits = AtomicU64::new(0);
        let items: Vec<u32> = (0..200).collect();
        let threads = 4;
        let out = Pool::new(threads).map_with(
            &items,
            |w| {
                inits.fetch_add(1, Ordering::Relaxed);
                w
            },
            |_, i, &x| {
                assert_eq!(i as u32, x);
                x
            },
        );
        assert_eq!(out.len(), 200);
        let n = inits.load(Ordering::Relaxed);
        assert!(
            (1..=threads as u64).contains(&n),
            "init ran {} times for {} workers",
            n,
            threads
        );
    }

    #[test]
    fn task_seeds_are_decorrelated() {
        let seeds: HashSet<u64> = (0..10_000).map(|i| task_seed(1234, i)).collect();
        assert_eq!(seeds.len(), 10_000, "seed collisions");
        // Different base seeds give different streams.
        assert_ne!(task_seed(1, 0), task_seed(2, 0));
    }

    #[test]
    fn pool_clamps_to_one_thread() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert!(threads_from_env() >= 1);
        assert!(available_parallelism() >= 1);
    }
}
