//! Model-guided design-space search (paper §6.3).
//!
//! Once an empirical model can predict performance "at virtually no
//! computation cost", the remaining problem is optimization over the
//! (combinatorial) space of flag and heuristic settings. The paper uses a
//! genetic algorithm; this crate implements it — [`GeneticSearch`] — along
//! with [`random_search`] and [`hill_climb`] baselines for ablation.
//!
//! The objective is supplied as a closure over *raw* design points, with a
//! fixed-parameter mask so microarchitectural parameters can be frozen while
//! the GA "explores the rest of the design space".
//!
//! # Examples
//!
//! ```
//! use emod_doe::{Parameter, ParameterSpace};
//! use emod_search::{GaConfig, GeneticSearch};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Minimize a simple separable objective over two flags and a threshold.
//! let space = ParameterSpace::new(vec![
//!     Parameter::flag("inline"),
//!     Parameter::flag("unroll"),
//!     Parameter::discrete("max-unroll-times", 4.0, 12.0, 9),
//! ]);
//! let mut rng = StdRng::seed_from_u64(42);
//! let best = GeneticSearch::new(&space, GaConfig::default())
//!     .run(|p| (p[0] - 1.0).abs() + p[1] + (p[2] - 8.0).abs(), &mut rng);
//! assert_eq!(best.point, vec![1.0, 0.0, 8.0]);
//! ```

#![warn(missing_docs)]

use emod_doe::{DesignPoint, ParameterSpace};
use emod_telemetry as telemetry;
use rand::Rng;

/// Result of a search: the best point found and its objective value.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The best raw design point.
    pub point: DesignPoint,
    /// Objective value at `point` (lower is better).
    pub value: f64,
    /// Number of objective evaluations performed.
    pub evaluations: usize,
}

/// Configuration for [`GeneticSearch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaConfig {
    /// Population size per generation.
    pub population: usize,
    /// Number of generations before reporting the best point found.
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-gene mutation probability (gene resampled from its levels).
    pub mutation_rate: f64,
    /// Number of elite individuals copied unchanged each generation.
    pub elitism: usize,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 40,
            generations: 30,
            tournament: 3,
            mutation_rate: 0.08,
            elitism: 2,
        }
    }
}

/// Generational genetic algorithm over a [`ParameterSpace`].
///
/// Follows the paper's description: "The GA starts with an initial, randomly
/// generated population of optimization flags and heuristic settings … uses
/// the empirical model to predict performance at all design points in the
/// population … eliminates 'unfit' design points … then uses the usual
/// crossover and mutation operators to create a new generation."
///
/// Parameters can be *frozen* to a fixed value ([`GeneticSearch::freeze`]) —
/// the paper freezes the 11 microarchitectural parameters and searches the
/// 14 compiler parameters.
#[derive(Debug, Clone)]
pub struct GeneticSearch {
    space: ParameterSpace,
    config: GaConfig,
    frozen: Vec<Option<f64>>,
}

impl GeneticSearch {
    /// Creates a search over `space`.
    pub fn new(space: &ParameterSpace, config: GaConfig) -> Self {
        GeneticSearch {
            frozen: vec![None; space.len()],
            space: space.clone(),
            config,
        }
    }

    /// Freezes parameter `name` at `value` for the whole search.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not in the space or `value` is not one of the
    /// parameter's levels.
    pub fn freeze(mut self, name: &str, value: f64) -> Self {
        let idx = self
            .space
            .index_of(name)
            .unwrap_or_else(|| panic!("unknown parameter {}", name));
        assert!(
            self.space.parameters()[idx].is_valid(value),
            "{} is not a level of {}",
            value,
            name
        );
        self.frozen[idx] = Some(value);
        self
    }

    fn clamp_frozen(&self, point: &mut DesignPoint) {
        for (v, f) in point.iter_mut().zip(&self.frozen) {
            if let Some(fv) = f {
                *v = *fv;
            }
        }
    }

    fn random_individual<R: Rng + ?Sized>(&self, rng: &mut R) -> DesignPoint {
        let mut p = self.space.random_point(rng);
        self.clamp_frozen(&mut p);
        p
    }

    /// Runs the GA, minimizing `objective`. Returns the best point seen at
    /// any time during the run (not merely the final generation).
    pub fn run<R, F>(&self, mut objective: F, rng: &mut R) -> SearchResult
    where
        R: Rng + ?Sized,
        F: FnMut(&[f64]) -> f64,
    {
        self.run_with_evaluator(
            &mut |population| population.iter().map(|p| objective(p)).collect(),
            rng,
        )
    }

    /// [`GeneticSearch::run`] with per-individual fitness evaluated in
    /// parallel across `EMOD_THREADS` workers. The objective must be a pure
    /// function of the point (hence `Fn + Sync`); under that contract the
    /// result is bit-identical to [`GeneticSearch::run`] at any worker
    /// count — fitness vectors come back in population order and all RNG
    /// draws stay on the caller thread.
    pub fn run_par<R, F>(&self, objective: F, rng: &mut R) -> SearchResult
    where
        R: Rng + ?Sized,
        F: Fn(&[f64]) -> f64 + Sync,
    {
        let pool = emod_par::Pool::from_env();
        self.run_with_evaluator(
            &mut |population| pool.map(population, |_i, p| objective(p)),
            rng,
        )
    }

    /// The GA loop, generic over how a generation's fitness vector is
    /// produced (sequentially or on a pool).
    fn run_with_evaluator<R: Rng + ?Sized>(
        &self,
        evaluate: &mut dyn FnMut(&[DesignPoint]) -> Vec<f64>,
        rng: &mut R,
    ) -> SearchResult {
        let _span = telemetry::span("search.ga");
        let cfg = self.config;
        let mut evaluations = 0usize;
        let mut population: Vec<DesignPoint> = (0..cfg.population.max(2))
            .map(|_| self.random_individual(rng))
            .collect();
        let mut best: Option<(DesignPoint, f64)> = None;

        for gen in 0..cfg.generations {
            let _gen_span = telemetry::span("generation");
            let fitness = evaluate(&population);
            evaluations += fitness.len();
            // Track the global best.
            for (p, &f) in population.iter().zip(&fitness) {
                if best.as_ref().is_none_or(|(_, bf)| f < *bf) {
                    best = Some((p.clone(), f));
                }
            }
            record_generation(gen, &fitness, best.as_ref().map(|(_, v)| *v));
            // Elitism: carry the best individuals over unchanged.
            let mut order: Vec<usize> = (0..population.len()).collect();
            order.sort_by(|&a, &b| fitness[a].total_cmp(&fitness[b]));
            let mut next: Vec<DesignPoint> = order
                .iter()
                .take(cfg.elitism.min(population.len()))
                .map(|&i| population[i].clone())
                .collect();
            // Fill the rest by tournament selection + uniform crossover +
            // per-gene mutation.
            while next.len() < population.len() {
                let a = self.tournament_pick(&population, &fitness, rng);
                let b = self.tournament_pick(&population, &fitness, rng);
                let mut child: DesignPoint = a
                    .iter()
                    .zip(b)
                    .map(|(&x, &y)| if rng.gen_bool(0.5) { x } else { y })
                    .collect();
                for (i, param) in self.space.parameters().iter().enumerate() {
                    if self.frozen[i].is_none() && rng.gen::<f64>() < cfg.mutation_rate {
                        let levels = param.levels();
                        child[i] = levels[rng.gen_range(0..levels.len())];
                    }
                }
                self.clamp_frozen(&mut child);
                next.push(child);
            }
            population = next;
        }
        // Score the final generation too.
        let fitness = evaluate(&population);
        evaluations += fitness.len();
        for (p, &f) in population.iter().zip(&fitness) {
            if best.as_ref().is_none_or(|(_, bf)| f < *bf) {
                best = Some((p.clone(), f));
            }
        }
        let (point, value) = best.expect("population is non-empty");
        SearchResult {
            point,
            value,
            evaluations,
        }
    }

    fn tournament_pick<'a, R: Rng + ?Sized>(
        &self,
        population: &'a [DesignPoint],
        fitness: &[f64],
        rng: &mut R,
    ) -> &'a DesignPoint {
        let mut best = rng.gen_range(0..population.len());
        for _ in 1..self.config.tournament.max(1) {
            let c = rng.gen_range(0..population.len());
            if fitness[c] < fitness[best] {
                best = c;
            }
        }
        &population[best]
    }
}

/// Records per-generation GA fitness statistics to the telemetry sink
/// (paper §6.3: the GA's convergence trajectory, i.e. how quickly the
/// predicted-best design point improves as generations pass).
fn record_generation(gen: usize, fitness: &[f64], global_best: Option<f64>) {
    if !telemetry::enabled() || fitness.is_empty() {
        return;
    }
    let gen_best = fitness.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = fitness.iter().sum::<f64>() / fitness.len() as f64;
    telemetry::counter_add("search.ga.generations", 1);
    telemetry::counter_add("search.ga.evaluations", fitness.len() as u64);
    telemetry::observe("search.ga.gen_best_fitness", gen_best);
    telemetry::observe("search.ga.gen_mean_fitness", mean);
    telemetry::event(
        "search",
        "ga_generation",
        &[
            ("generation", telemetry::Value::from(gen as u64)),
            ("population", telemetry::Value::from(fitness.len() as u64)),
            ("best", telemetry::Value::from(gen_best)),
            ("mean", telemetry::Value::from(mean)),
            (
                "global_best",
                telemetry::Value::from(global_best.unwrap_or(gen_best)),
            ),
        ],
    );
}

/// Runs the GA against a fitted surrogate model as the objective: the
/// model predicts the response at each *coded* candidate point and the GA
/// minimizes the prediction. Parameters named in `frozen` are pinned at the
/// given raw values (the paper freezes the microarchitecture and searches
/// the compiler half).
///
/// Predictions are clamped to at least one cycle — small models can
/// extrapolate below zero in far corners of the space, and the clamp keeps
/// the GA from chasing such artifacts.
///
/// # Panics
///
/// Panics if a frozen name is not in the space or its value is not one of
/// the parameter's levels (see [`GeneticSearch::freeze`]).
pub fn tune_surrogate<R: Rng + ?Sized>(
    space: &ParameterSpace,
    model: &(dyn emod_models::Regressor + Sync),
    frozen: &[(&str, f64)],
    config: GaConfig,
    rng: &mut R,
) -> SearchResult {
    let mut search = GeneticSearch::new(space, config);
    for &(name, value) in frozen {
        search = search.freeze(name, value);
    }
    // Surrogate predictions are pure, so fitness fans out across
    // `EMOD_THREADS` workers with a bit-identical result.
    search.run_par(|raw| model.predict(&space.encode(raw)).max(1.0), rng)
}

/// Pure random search baseline: evaluates `budget` random points.
pub fn random_search<R, F>(
    space: &ParameterSpace,
    budget: usize,
    mut objective: F,
    rng: &mut R,
) -> SearchResult
where
    R: Rng + ?Sized,
    F: FnMut(&[f64]) -> f64,
{
    assert!(budget > 0, "budget must be positive");
    let mut best: Option<(DesignPoint, f64)> = None;
    for _ in 0..budget {
        let p = space.random_point(rng);
        let f = objective(&p);
        if best.as_ref().is_none_or(|(_, bf)| f < *bf) {
            best = Some((p, f));
        }
    }
    let (point, value) = best.expect("budget > 0");
    SearchResult {
        point,
        value,
        evaluations: budget,
    }
}

/// First-improvement hill climbing baseline with random restarts.
///
/// From a random start, repeatedly moves to the best single-parameter level
/// change; restarts when stuck, until the evaluation `budget` is exhausted.
pub fn hill_climb<R, F>(
    space: &ParameterSpace,
    budget: usize,
    mut objective: F,
    rng: &mut R,
) -> SearchResult
where
    R: Rng + ?Sized,
    F: FnMut(&[f64]) -> f64,
{
    assert!(budget > 0, "budget must be positive");
    let mut evaluations = 0usize;
    let mut best: Option<(DesignPoint, f64)> = None;
    while evaluations < budget {
        let mut current = space.random_point(rng);
        let mut current_val = objective(&current);
        evaluations += 1;
        loop {
            let mut improved = false;
            'outer: for (i, param) in space.parameters().iter().enumerate() {
                for level in param.levels() {
                    if level == current[i] {
                        continue;
                    }
                    if evaluations >= budget {
                        break 'outer;
                    }
                    let mut cand = current.clone();
                    cand[i] = level;
                    let v = objective(&cand);
                    evaluations += 1;
                    if v < current_val {
                        current = cand;
                        current_val = v;
                        improved = true;
                    }
                }
            }
            if !improved || evaluations >= budget {
                break;
            }
        }
        if best.as_ref().is_none_or(|(_, bf)| current_val < *bf) {
            best = Some((current, current_val));
        }
    }
    let (point, value) = best.expect("at least one restart ran");
    SearchResult {
        point,
        value,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emod_doe::Parameter;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> ParameterSpace {
        ParameterSpace::new(vec![
            Parameter::flag("a"),
            Parameter::flag("b"),
            Parameter::discrete("c", 0.0, 10.0, 11),
            Parameter::log_discrete("d", 8.0, 128.0, 5),
        ])
    }

    /// Objective with a unique optimum at (1, 0, 7, 32).
    fn objective(p: &[f64]) -> f64 {
        (p[0] - 1.0).abs() + p[1] + (p[2] - 7.0).abs() + (p[3].log2() - 5.0).abs()
    }

    #[test]
    fn ga_finds_global_optimum() {
        let mut rng = StdRng::seed_from_u64(7);
        let res = GeneticSearch::new(&space(), GaConfig::default()).run(objective, &mut rng);
        assert_eq!(res.point, vec![1.0, 0.0, 7.0, 32.0]);
        assert_eq!(res.value, 0.0);
    }

    #[test]
    fn ga_result_points_are_valid() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(3);
        let res = GeneticSearch::new(&s, GaConfig::default()).run(objective, &mut rng);
        assert!(s.is_valid(&res.point));
    }

    #[test]
    fn freeze_pins_parameter() {
        let mut rng = StdRng::seed_from_u64(5);
        let res = GeneticSearch::new(&space(), GaConfig::default())
            .freeze("c", 2.0)
            .run(objective, &mut rng);
        assert_eq!(res.point[2], 2.0);
        // The rest still optimizes.
        assert_eq!(res.point[0], 1.0);
        assert_eq!(res.point[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown parameter")]
    fn freeze_unknown_panics() {
        let _ = GeneticSearch::new(&space(), GaConfig::default()).freeze("zzz", 1.0);
    }

    #[test]
    #[should_panic(expected = "not a level")]
    fn freeze_invalid_level_panics() {
        let _ = GeneticSearch::new(&space(), GaConfig::default()).freeze("c", 3.7);
    }

    #[test]
    fn ga_beats_random_search_on_budget() {
        // With an equal evaluation budget the GA should usually win (or tie)
        // on a rugged objective.
        let rugged = |p: &[f64]| objective(p) + if (p[2] as i64) % 2 == 0 { 0.7 } else { 0.0 };
        let mut ga_wins = 0;
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let ga = GeneticSearch::new(&space(), GaConfig::default()).run(rugged, &mut rng);
            let mut rng2 = StdRng::seed_from_u64(seed + 100);
            let rs = random_search(&space(), ga.evaluations, rugged, &mut rng2);
            if ga.value <= rs.value {
                ga_wins += 1;
            }
        }
        assert!(
            ga_wins >= 8,
            "GA won only {}/10 budget-matched runs",
            ga_wins
        );
    }

    #[test]
    fn random_search_respects_budget() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut calls = 0;
        let res = random_search(
            &space(),
            37,
            |p| {
                calls += 1;
                objective(p)
            },
            &mut rng,
        );
        assert_eq!(calls, 37);
        assert_eq!(res.evaluations, 37);
    }

    #[test]
    fn hill_climb_reaches_local_optimum_on_separable() {
        // A separable objective has no local optima for coordinate descent,
        // so hill climbing must find the global optimum given enough budget.
        let mut rng = StdRng::seed_from_u64(2);
        let res = hill_climb(&space(), 500, objective, &mut rng);
        assert_eq!(res.value, 0.0);
    }

    #[test]
    fn tune_surrogate_minimizes_model_and_respects_freeze() {
        // A hand-built "model" over coded points with a unique optimum at
        // raw (1, 0, 0, 8): coded (1, -1, -1, -1).
        struct Bowl;
        impl emod_models::Regressor for Bowl {
            fn predict(&self, x: &[f64]) -> f64 {
                100.0
                    + (x[0] - 1.0).powi(2)
                    + (x[1] + 1.0).powi(2)
                    + (x[2] + 1.0).powi(2)
                    + (x[3] + 1.0).powi(2)
            }
            fn parameter_count(&self) -> usize {
                4
            }
        }
        let s = space();
        let mut rng = StdRng::seed_from_u64(17);
        let res = tune_surrogate(&s, &Bowl, &[("c", 5.0)], GaConfig::default(), &mut rng);
        assert_eq!(res.point[0], 1.0);
        assert_eq!(res.point[1], 0.0);
        assert_eq!(res.point[2], 5.0, "frozen parameter must stay pinned");
        assert_eq!(res.point[3], 8.0);
        assert!(res.value >= 100.0);
    }

    #[test]
    fn elitism_makes_best_monotone() {
        // Track the best value after each generation by wrapping the
        // objective: the running minimum may only decrease.
        let mut seen_best = f64::INFINITY;
        let mut violations = 0;
        let mut rng = StdRng::seed_from_u64(11);
        let _ = GeneticSearch::new(&space(), GaConfig::default()).run(
            |p| {
                let v = objective(p);
                if v < seen_best {
                    seen_best = v;
                } else if seen_best == f64::INFINITY {
                    violations += 1;
                }
                v
            },
            &mut rng,
        );
        assert_eq!(violations, 0);
    }
}
