//! Radial basis function networks (paper §4.3).

use crate::{
    metrics, Attribution, Dataset, ModelError, RegressionTree, Regressor, Result, TreeConfig,
};
use emod_linalg::Matrix;

/// RBF kernel functions (paper Equation 8).
///
/// The paper found "models based on the multi-quadratic kernel to be the most
/// accurate"; its printed formula is the inverse multiquadric up to a typo
/// (the sign under the square root), so both variants are provided alongside
/// the Gaussian.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// `exp(-d² / 2r²)`.
    Gaussian,
    /// `sqrt(1 + d² / 2r²)` — grows with distance.
    #[default]
    Multiquadric,
    /// `1 / sqrt(1 + d² / 2r²)` — decays with distance.
    InverseMultiquadric,
}

impl Kernel {
    /// Evaluates the kernel for squared distance `d2` and radius `r`.
    pub fn eval(&self, d2: f64, r: f64) -> f64 {
        let z = d2 / (2.0 * r * r);
        match self {
            Kernel::Gaussian => (-z).exp(),
            Kernel::Multiquadric => (1.0 + z).sqrt(),
            Kernel::InverseMultiquadric => 1.0 / (1.0 + z).sqrt(),
        }
    }
}

/// Configuration for fitting an [`RbfNetwork`].
#[derive(Debug, Clone, PartialEq)]
pub struct RbfConfig {
    /// Kernel function for the hidden units.
    pub kernel: Kernel,
    /// Candidate hidden-layer sizes; the fit picks the BIC-best. Sizes are
    /// clamped to the training-set size.
    pub center_candidates: Vec<usize>,
    /// Multiplier applied to each tree region's half-extent to get the unit
    /// radius.
    pub radius_scale: f64,
    /// Minimum samples per tree leaf when selecting centers.
    pub min_leaf: usize,
    /// Include a degree-1 polynomial tail (`w0 + Σ aᵢxᵢ + Σ wⱼK(·)`).
    /// Standard for multiquadric interpolation and never hurts the least
    /// squares fit; BIC accounts for the extra coefficients.
    pub linear_tail: bool,
}

impl Default for RbfConfig {
    fn default() -> Self {
        RbfConfig {
            kernel: Kernel::default(),
            center_candidates: vec![4, 8, 12, 16, 24, 32, 48, 64],
            radius_scale: 2.0,
            min_leaf: 2,
            linear_tail: true,
        }
    }
}

/// One hidden unit: center, per-dimension inverse radii and trained weight.
///
/// Radii are anisotropic — one per dimension, derived from the regression
/// tree leaf's extent in that dimension (Orr's RBF-RT construction). A
/// dimension the tree never split has a leaf extent covering the whole
/// range, so its inverse radius is small and the kernel is effectively
/// insensitive to it: automatic relevance detection for the response's
/// active variables.
#[derive(Debug, Clone, PartialEq)]
struct RbfUnit {
    center: Vec<f64>,
    inv_radii: Vec<f64>,
    weight: f64,
}

impl RbfUnit {
    /// Radius-normalized squared distance Σ((xᵢ-cᵢ)/rᵢ)².
    fn norm_dist2(&self, x: &[f64]) -> f64 {
        self.center
            .iter()
            .zip(x)
            .zip(&self.inv_radii)
            .map(|((c, v), ir)| {
                let d = (v - c) * ir;
                d * d
            })
            .sum()
    }
}

fn norm_dist2(center: &[f64], inv_radii: &[f64], x: &[f64]) -> f64 {
    center
        .iter()
        .zip(x)
        .zip(inv_radii)
        .map(|((c, v), ir)| {
            let d = (v - c) * ir;
            d * d
        })
        .sum()
}

/// A three-layer RBF network `f(x) = w0 + Σ wᵢ K(‖x - cᵢ‖)` (paper Eq. 7).
///
/// Centers and radii come from the leaves of a [`RegressionTree`] grown on
/// the training data (the regression-tree method of Orr et al. the paper
/// uses); weights are the least-squares solution; the hidden-layer size is
/// chosen by the BIC criterion (paper Eq. 9) to avoid overfitting (§4.4).
///
/// # Examples
///
/// ```
/// use emod_models::{Dataset, Kernel, RbfConfig, RbfNetwork, Regressor};
///
/// let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![-1.0 + i as f64 / 15.0]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).sin()).collect();
/// let model = RbfNetwork::fit(&Dataset::new(xs, ys)?, RbfConfig::default())?;
/// assert!((model.predict(&[0.3]) - (0.9f64).sin()).abs() < 0.1);
/// # Ok::<(), emod_models::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RbfNetwork {
    kernel: Kernel,
    bias: f64,
    /// Degree-1 polynomial tail coefficients (empty when disabled).
    linear: Vec<f64>,
    units: Vec<RbfUnit>,
    dim: usize,
    training_sse: f64,
    training_bic: f64,
}

impl RbfNetwork {
    /// Fits the network, selecting the hidden-layer size by BIC.
    ///
    /// Candidate sizes are evaluated in parallel across `EMOD_THREADS`
    /// workers; each candidate is a pure function of the data and the size,
    /// and selection scans candidates in size order (first strictly-lower
    /// BIC wins), so the fitted network is bit-identical at any worker
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NumericalFailure`] if no candidate size admits a
    /// least-squares solution.
    pub fn fit(data: &Dataset, config: RbfConfig) -> Result<Self> {
        let mut sizes: Vec<usize> = config
            .center_candidates
            .iter()
            .map(|&c| c.clamp(1, data.len().saturating_sub(2).max(1)))
            .collect();
        sizes.sort_unstable();
        sizes.dedup();
        if sizes.is_empty() {
            return Err(ModelError::InvalidDataset(
                "no candidate hidden-layer sizes".into(),
            ));
        }
        let candidates = emod_par::Pool::from_env().map(&sizes, |_i, &size| {
            let tree = RegressionTree::fit(
                data,
                TreeConfig {
                    max_leaves: size,
                    min_leaf: config.min_leaf,
                },
            )?;
            let centers: Vec<(Vec<f64>, Vec<f64>)> = tree
                .leaves()
                .iter()
                .map(|leaf| {
                    // Floor each per-dimension radius at a quarter of the
                    // coded half-range: thinner leaves produce kernels too
                    // spiky to generalize from small designs.
                    let inv_radii: Vec<f64> = leaf
                        .half_extent
                        .iter()
                        .map(|e| 1.0 / (e.max(0.25) * config.radius_scale))
                        .collect();
                    (leaf.center.clone(), inv_radii)
                })
                .collect();
            Ok(Self::solve(data, &centers, config.kernel, config.linear_tail).ok())
        });
        let mut best: Option<RbfNetwork> = None;
        for candidate in candidates {
            // A tree-fit error aborts the whole fit (first in size order),
            // exactly as the sequential `?` did.
            let Some(net) = candidate? else { continue };
            let better = match &best {
                Some(b) => net.training_bic < b.training_bic,
                None => true,
            };
            if better {
                best = Some(net);
            }
        }
        best.ok_or_else(|| {
            ModelError::NumericalFailure("no RBF candidate size could be solved".into())
        })
    }

    /// Solves the output weights for fixed centers/radii.
    fn solve(
        data: &Dataset,
        centers: &[(Vec<f64>, Vec<f64>)],
        kernel: Kernel,
        linear_tail: bool,
    ) -> Result<Self> {
        let tail = if linear_tail { data.dim() } else { 0 };
        let mut x = Matrix::zeros(0, centers.len() + 1 + tail);
        for pt in data.points() {
            let mut row = Vec::with_capacity(centers.len() + 1 + tail);
            row.push(1.0);
            if linear_tail {
                row.extend_from_slice(pt);
            }
            for (c, ir) in centers {
                row.push(kernel.eval(norm_dist2(c, ir, pt), 1.0));
            }
            x.push_row(&row);
        }
        let w = x
            .solve_lstsq(data.responses())
            .map_err(|e| ModelError::NumericalFailure(e.to_string()))?;
        let pred = x
            .matvec(&w)
            .map_err(|e| ModelError::NumericalFailure(e.to_string()))?;
        let sse = metrics::sse(&pred, data.responses());
        // Parameters: one weight per unit + bias + (center, radius) choices.
        // Following the paper we count the trainable weights for BIC.
        let bic = metrics::bic(sse, data.len(), w.len());
        Ok(RbfNetwork {
            kernel,
            bias: w[0],
            linear: w[1..1 + tail].to_vec(),
            units: centers
                .iter()
                .zip(&w[1 + tail..])
                .map(|((c, ir), &weight)| RbfUnit {
                    center: c.clone(),
                    inv_radii: ir.clone(),
                    weight,
                })
                .collect(),
            dim: data.dim(),
            training_sse: sse,
            training_bic: bic,
        })
    }

    /// Number of hidden units.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Decomposes `predict(x)` into the bias, the linear-tail terms, and
    /// one [`Attribution`] per hidden unit (`wⱼ·K(dⱼ)`). Unit labels carry
    /// the radius-normalized distance from `x` to the unit's center, so the
    /// nearest centers (the units whose weights dominate locally) are
    /// directly readable from the decomposition.
    ///
    /// The component sum reconstructs the prediction to within floating-
    /// point reassociation error (≤ 1e-9 relative in practice).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the network dimension.
    pub fn explain(&self, x: &[f64]) -> Vec<Attribution> {
        assert_eq!(x.len(), self.dim, "point dimension mismatch");
        let mut parts = Vec::with_capacity(1 + self.linear.len() + self.units.len());
        parts.push(Attribution::new("bias", Vec::new(), self.bias));
        for (i, (a, v)) in self.linear.iter().zip(x).enumerate() {
            parts.push(Attribution::new(format!("x{}", i), vec![i], a * v));
        }
        for (j, u) in self.units.iter().enumerate() {
            let d2 = u.norm_dist2(x);
            parts.push(Attribution::new(
                format!("unit{}(d={:.3})", j, d2.sqrt()),
                Vec::new(),
                u.weight * self.kernel.eval(d2, 1.0),
            ));
        }
        parts
    }

    /// The kernel in use.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// SSE on the training data.
    pub fn training_sse(&self) -> f64 {
        self.training_sse
    }

    /// BIC on the training data (the model-selection criterion).
    pub fn training_bic(&self) -> f64 {
        self.training_bic
    }

    /// Serializes the fitted network into `w` (see [`crate::codec`]).
    pub fn encode(&self, w: &mut crate::codec::Writer) {
        w.put_u8(match self.kernel {
            Kernel::Gaussian => 0,
            Kernel::Multiquadric => 1,
            Kernel::InverseMultiquadric => 2,
        });
        w.put_u32(self.dim as u32);
        w.put_f64(self.bias);
        w.put_f64s(&self.linear);
        w.put_u32(self.units.len() as u32);
        for u in &self.units {
            w.put_f64s(&u.center);
            w.put_f64s(&u.inv_radii);
            w.put_f64(u.weight);
        }
        w.put_f64(self.training_sse);
        w.put_f64(self.training_bic);
    }

    /// Deserializes a network written by [`RbfNetwork::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`crate::codec::CodecError`] on truncated input, an unknown
    /// kernel tag, or unit vectors inconsistent with the dimension.
    pub fn decode(r: &mut crate::codec::Reader<'_>) -> crate::codec::CodecResult<Self> {
        use crate::codec::CodecError;
        let kernel = match r.get_u8()? {
            0 => Kernel::Gaussian,
            1 => Kernel::Multiquadric,
            2 => Kernel::InverseMultiquadric,
            t => return Err(CodecError::BadValue(format!("rbf kernel tag {}", t))),
        };
        let dim = r.get_u32()? as usize;
        if dim == 0 {
            return Err(CodecError::BadValue("rbf network dim 0".into()));
        }
        let bias = r.get_f64()?;
        let linear = r.get_f64s()?;
        if !linear.is_empty() && linear.len() != dim {
            return Err(CodecError::BadValue(format!(
                "rbf linear tail has {} coefficients for dim {}",
                linear.len(),
                dim
            )));
        }
        let n_units = r.get_len(8, "rbf units")?;
        let mut units = Vec::with_capacity(n_units);
        for _ in 0..n_units {
            let center = r.get_f64s()?;
            let inv_radii = r.get_f64s()?;
            let weight = r.get_f64()?;
            if center.len() != dim || inv_radii.len() != dim {
                return Err(CodecError::BadValue(format!(
                    "rbf unit vectors ({}, {}) do not match dim {}",
                    center.len(),
                    inv_radii.len(),
                    dim
                )));
            }
            units.push(RbfUnit {
                center,
                inv_radii,
                weight,
            });
        }
        let training_sse = r.get_f64()?;
        let training_bic = r.get_f64()?;
        Ok(RbfNetwork {
            kernel,
            bias,
            linear,
            units,
            dim,
            training_sse,
            training_bic,
        })
    }
}

impl Regressor for RbfNetwork {
    fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "point dimension mismatch");
        self.bias
            + self.linear.iter().zip(x).map(|(a, v)| a * v).sum::<f64>()
            + self
                .units
                .iter()
                .map(|u| u.weight * self.kernel.eval(u.norm_dist2(x), 1.0))
                .sum::<f64>()
    }

    fn parameter_count(&self) -> usize {
        1 + self.linear.len() + self.units.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave_data(n: usize) -> Dataset {
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![-1.0 + 2.0 * i as f64 / (n - 1) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| (4.0 * x[0]).sin() + 2.0).collect();
        Dataset::new(xs, ys).unwrap()
    }

    #[test]
    fn kernels_at_zero_distance() {
        assert_eq!(Kernel::Gaussian.eval(0.0, 1.0), 1.0);
        assert_eq!(Kernel::Multiquadric.eval(0.0, 1.0), 1.0);
        assert_eq!(Kernel::InverseMultiquadric.eval(0.0, 1.0), 1.0);
    }

    #[test]
    fn kernel_monotonicity() {
        for d2 in [0.5, 1.0, 4.0] {
            assert!(Kernel::Gaussian.eval(d2, 1.0) < 1.0);
            assert!(Kernel::Multiquadric.eval(d2, 1.0) > 1.0);
            assert!(Kernel::InverseMultiquadric.eval(d2, 1.0) < 1.0);
        }
    }

    #[test]
    fn fits_smooth_function() {
        let data = wave_data(60);
        let net = RbfNetwork::fit(&data, RbfConfig::default()).unwrap();
        let preds = net.predict_batch(data.points());
        let r2 = metrics::r_squared(&preds, data.responses());
        assert!(r2 > 0.98, "R² = {}", r2);
    }

    #[test]
    fn all_kernels_fit_reasonably() {
        let data = wave_data(60);
        for kernel in [
            Kernel::Gaussian,
            Kernel::Multiquadric,
            Kernel::InverseMultiquadric,
        ] {
            let net = RbfNetwork::fit(
                &data,
                RbfConfig {
                    kernel,
                    ..RbfConfig::default()
                },
            )
            .unwrap();
            let preds = net.predict_batch(data.points());
            let r2 = metrics::r_squared(&preds, data.responses());
            assert!(r2 > 0.9, "{:?}: R² = {}", kernel, r2);
        }
    }

    #[test]
    fn bic_controls_unit_count() {
        // With few samples the BIC-selected size must stay well below n.
        let data = wave_data(20);
        let net = RbfNetwork::fit(&data, RbfConfig::default()).unwrap();
        assert!(net.unit_count() < 20, "units = {}", net.unit_count());
        assert!(net.training_bic().is_finite());
    }

    #[test]
    fn handles_2d_interaction_surface() {
        let mut xs = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                xs.push(vec![-1.0 + i as f64 / 5.5, -1.0 + j as f64 / 5.5]);
            }
        }
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[1] + 0.5 * x[0]).collect();
        let data = Dataset::new(xs, ys).unwrap();
        let net = RbfNetwork::fit(&data, RbfConfig::default()).unwrap();
        let preds = net.predict_batch(data.points());
        assert!(metrics::r_squared(&preds, data.responses()) > 0.95);
    }

    #[test]
    fn rejects_empty_candidates() {
        let data = wave_data(10);
        let cfg = RbfConfig {
            center_candidates: vec![],
            ..RbfConfig::default()
        };
        assert!(RbfNetwork::fit(&data, cfg).is_err());
    }

    #[test]
    fn predict_batch_matches_predict() {
        let data = wave_data(25);
        let net = RbfNetwork::fit(&data, RbfConfig::default()).unwrap();
        let batch = net.predict_batch(data.points());
        for (pt, b) in data.points().iter().zip(batch) {
            assert_eq!(net.predict(pt), b);
        }
    }
}
