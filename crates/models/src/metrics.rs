//! Model-quality metrics: SSE, MAPE, R², BIC and GCV.
//!
//! The paper reports *average percentage error in prediction* (MAPE) on an
//! independent test design (Table 3), and guards against overfitting with the
//! Bayesian Information Criterion (Equation 9) and Generalized Cross
//! Validation (§4.4).

/// Sum of squared errors `Σ (ŷᵢ - yᵢ)²` (paper Equation 4).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sse(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a) * (p - a))
        .sum()
}

/// Mean squared error.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mse(predicted: &[f64], actual: &[f64]) -> f64 {
    assert!(!actual.is_empty(), "empty input");
    sse(predicted, actual) / actual.len() as f64
}

/// Mean absolute percentage error, in percent — the paper's "% error in
/// prediction". Samples with `actual == 0` are skipped.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mape(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    assert!(!actual.is_empty(), "empty input");
    let mut total = 0.0;
    let mut count = 0usize;
    for (p, a) in predicted.iter().zip(actual) {
        if *a != 0.0 {
            total += ((p - a) / a).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        100.0 * total / count as f64
    }
}

/// Coefficient of determination `R² = 1 - SSE / SST`.
///
/// Returns 1.0 when the actual responses are constant and perfectly
/// predicted, 0.0 when constant and mispredicted.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn r_squared(predicted: &[f64], actual: &[f64]) -> f64 {
    assert!(!actual.is_empty(), "empty input");
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let sst: f64 = actual.iter().map(|a| (a - mean) * (a - mean)).sum();
    let err = sse(predicted, actual);
    if sst == 0.0 {
        if err == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - err / sst
    }
}

/// Bayesian Information Criterion, paper Equation 9:
///
/// `BIC = (p + (ln(p) - 1) γ) / (p (p - γ)) * SSE`
///
/// where `p` is the number of training samples and `γ` the number of model
/// parameters. Lower is better. Returns `f64::INFINITY` when `γ >= p` (the
/// model has as many parameters as data — guaranteed overfit).
pub fn bic(sse_value: f64, samples: usize, params: usize) -> f64 {
    let p = samples as f64;
    let gamma = params as f64;
    if gamma >= p {
        return f64::INFINITY;
    }
    (p + (p.ln() - 1.0) * gamma) / (p * (p - gamma)) * sse_value
}

/// Generalized Cross Validation criterion used by MARS pruning:
///
/// `GCV = SSE / (n (1 - C(M)/n)²)` with effective parameter count
/// `C(M) = params + penalty * (params - 1) / 2` (Friedman's d ≈ 3 knot
/// penalty). Lower is better; `f64::INFINITY` when `C(M) >= n`.
pub fn gcv(sse_value: f64, samples: usize, params: usize, penalty: f64) -> f64 {
    let n = samples as f64;
    let m = params as f64;
    let c = m + penalty * (m - 1.0).max(0.0) / 2.0;
    let denom = 1.0 - c / n;
    if denom <= 0.0 {
        return f64::INFINITY;
    }
    sse_value / (n * denom * denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sse_basic() {
        assert_eq!(sse(&[1.0, 2.0], &[1.0, 4.0]), 4.0);
        assert_eq!(sse(&[], &[]), 0.0);
    }

    #[test]
    fn mse_basic() {
        assert_eq!(mse(&[1.0, 3.0], &[1.0, 1.0]), 2.0);
    }

    #[test]
    fn mape_percent() {
        // |(110-100)/100| = 10%, |(90-100)/100| = 10% -> mean 10%.
        assert!((mape(&[110.0, 90.0], &[100.0, 100.0]) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        assert_eq!(mape(&[5.0, 110.0], &[0.0, 100.0]), 10.0);
    }

    #[test]
    fn r2_perfect_and_mean() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(r_squared(&y, &y), 1.0);
        assert!((r_squared(&[2.0, 2.0, 2.0], &y) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn bic_penalizes_complexity() {
        // Same SSE, more parameters -> worse (larger) BIC.
        let a = bic(10.0, 100, 5);
        let b = bic(10.0, 100, 20);
        assert!(b > a);
        assert_eq!(bic(10.0, 10, 10), f64::INFINITY);
    }

    #[test]
    fn bic_matches_formula() {
        // p=100, gamma=5, SSE=10: (100 + (ln100 - 1)*5)/(100*95)*10.
        let p = 100.0f64;
        let expect = (p + (p.ln() - 1.0) * 5.0) / (p * 95.0) * 10.0;
        assert!((bic(10.0, 100, 5) - expect).abs() < 1e-15);
    }

    #[test]
    fn gcv_penalizes_complexity() {
        let a = gcv(10.0, 100, 5, 3.0);
        let b = gcv(10.0, 100, 30, 3.0);
        assert!(b > a);
        assert_eq!(gcv(10.0, 10, 20, 3.0), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn sse_length_mismatch_panics() {
        let _ = sse(&[1.0], &[1.0, 2.0]);
    }
}
