//! Training/test datasets of coded design points and measured responses.

use crate::{ModelError, Result};

/// A set of `(coded design point, response)` samples.
///
/// This is the paper's *training data set* (or, generated independently, its
/// *test data set*, §2.1). Points are coded onto `[-1, 1]` per coordinate.
///
/// # Examples
///
/// ```
/// use emod_models::Dataset;
///
/// let data = Dataset::new(vec![vec![0.0], vec![1.0]], vec![1.0, 2.0])?;
/// assert_eq!(data.len(), 2);
/// assert_eq!(data.dim(), 1);
/// # Ok::<(), emod_models::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
}

impl Dataset {
    /// Creates a dataset from points and responses.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidDataset`] when empty, when lengths differ,
    /// when point dimensions are ragged, or when any value is non-finite.
    pub fn new(xs: Vec<Vec<f64>>, ys: Vec<f64>) -> Result<Self> {
        if xs.is_empty() {
            return Err(ModelError::InvalidDataset("no samples".into()));
        }
        if xs.len() != ys.len() {
            return Err(ModelError::InvalidDataset(format!(
                "{} points but {} responses",
                xs.len(),
                ys.len()
            )));
        }
        let dim = xs[0].len();
        if dim == 0 {
            return Err(ModelError::InvalidDataset("zero-dimensional points".into()));
        }
        for (i, x) in xs.iter().enumerate() {
            if x.len() != dim {
                return Err(ModelError::InvalidDataset(format!(
                    "point {} has dimension {} (expected {})",
                    i,
                    x.len(),
                    dim
                )));
            }
            if x.iter().any(|v| !v.is_finite()) {
                return Err(ModelError::InvalidDataset(format!(
                    "point {} has a non-finite coordinate",
                    i
                )));
            }
        }
        if ys.iter().any(|v| !v.is_finite()) {
            return Err(ModelError::InvalidDataset("non-finite response".into()));
        }
        Ok(Dataset { xs, ys })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the dataset has no samples (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Dimension of each design point.
    pub fn dim(&self) -> usize {
        self.xs[0].len()
    }

    /// The design points.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.xs
    }

    /// The responses.
    pub fn responses(&self) -> &[f64] {
        &self.ys
    }

    /// The `i`-th sample.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn sample(&self, i: usize) -> (&[f64], f64) {
        (&self.xs[i], self.ys[i])
    }

    /// Mean of the responses.
    pub fn response_mean(&self) -> f64 {
        self.ys.iter().sum::<f64>() / self.ys.len() as f64
    }

    /// Restricts to the samples at `indices` (cloning).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            xs: indices.iter().map(|&i| self.xs[i].clone()).collect(),
            ys: indices.iter().map(|&i| self.ys[i]).collect(),
        }
    }

    /// Takes the first `n` samples (or all if fewer).
    pub fn take(&self, n: usize) -> Dataset {
        let n = n.min(self.len());
        Dataset {
            xs: self.xs[..n].to_vec(),
            ys: self.ys[..n].to_vec(),
        }
    }

    /// Distinct sorted values of coordinate `var` — candidate MARS knots.
    ///
    /// # Panics
    ///
    /// Panics if `var >= self.dim()`.
    pub fn distinct_values(&self, var: usize) -> Vec<f64> {
        assert!(var < self.dim(), "variable {} out of range", var);
        let mut vals: Vec<f64> = self.xs.iter().map(|x| x[var]).collect();
        vals.sort_by(f64::total_cmp);
        vals.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_shapes() {
        assert!(Dataset::new(vec![], vec![]).is_err());
        assert!(Dataset::new(vec![vec![1.0]], vec![]).is_err());
        assert!(Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0.0, 0.0]).is_err());
        assert!(Dataset::new(vec![vec![]], vec![0.0]).is_err());
        assert!(Dataset::new(vec![vec![f64::NAN]], vec![0.0]).is_err());
        assert!(Dataset::new(vec![vec![0.0]], vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn accessors() {
        let d = Dataset::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![10.0, 20.0]).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.sample(1), (&[3.0, 4.0][..], 20.0));
        assert_eq!(d.response_mean(), 15.0);
    }

    #[test]
    fn subset_and_take() {
        let d = Dataset::new(vec![vec![0.0], vec![1.0], vec![2.0]], vec![0.0, 1.0, 2.0]).unwrap();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.points(), &[vec![2.0], vec![0.0]]);
        assert_eq!(s.responses(), &[2.0, 0.0]);
        assert_eq!(d.take(2).len(), 2);
        assert_eq!(d.take(99).len(), 3);
    }

    #[test]
    fn distinct_values_sorted_deduped() {
        let d = Dataset::new(
            vec![vec![1.0], vec![-1.0], vec![1.0], vec![0.0]],
            vec![0.0; 4],
        )
        .unwrap();
        assert_eq!(d.distinct_values(0), vec![-1.0, 0.0, 1.0]);
    }
}
