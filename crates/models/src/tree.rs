//! CART-style regression trees.
//!
//! Used directly as a (piecewise-constant) regressor and, more importantly,
//! as the center/radius selector for [`crate::RbfNetwork`]: the tree
//! "recursively partitions the design space into regions with uniform
//! response", and each region contributes one RBF unit (paper §4.3,
//! following Orr et al.).

use crate::{Dataset, ModelError, Regressor, Result};

/// Configuration for growing a [`RegressionTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Maximum number of leaves (regions). Growth is best-first, so the
    /// highest-variance-reduction splits happen first.
    pub max_leaves: usize,
    /// Minimum number of samples per leaf.
    pub min_leaf: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_leaves: 16,
            min_leaf: 2,
        }
    }
}

/// A leaf region of a fitted tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeLeaf {
    /// Geometric center of the region's bounding box over the training
    /// samples it contains.
    pub center: Vec<f64>,
    /// Half-extent of the region per dimension (at least a small floor so
    /// degenerate boxes still give usable RBF radii).
    pub half_extent: Vec<f64>,
    /// Mean response of the samples in the region.
    pub mean: f64,
    /// Number of training samples in the region.
    pub count: usize,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        leaf_index: usize,
    },
    Split {
        var: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A binary regression tree fit by recursive variance-reduction splitting.
///
/// # Examples
///
/// ```
/// use emod_models::{Dataset, RegressionTree, Regressor, TreeConfig};
///
/// // Step function: y = 0 for x < 0, 10 for x >= 0.
/// let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![-1.0 + i as f64 / 10.0]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| if x[0] < 0.0 { 0.0 } else { 10.0 }).collect();
/// let tree = RegressionTree::fit(&Dataset::new(xs, ys)?, TreeConfig::default())?;
/// assert_eq!(tree.predict(&[-0.7]), 0.0);
/// assert_eq!(tree.predict(&[0.7]), 10.0);
/// # Ok::<(), emod_models::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    leaves: Vec<TreeLeaf>,
    root: usize,
    dim: usize,
}

struct Grower<'a> {
    data: &'a Dataset,
    config: TreeConfig,
    nodes: Vec<Node>,
    leaves: Vec<TreeLeaf>,
}

/// A candidate split of one pending region.
struct Candidate {
    node_slot: usize,
    samples: Vec<usize>,
    gain: f64,
    var: usize,
    threshold: f64,
}

impl<'a> Grower<'a> {
    /// Finds the best (gain, var, threshold) split of `samples`, if any.
    fn best_split(&self, samples: &[usize]) -> Option<(f64, usize, f64)> {
        let n = samples.len();
        if n < 2 * self.config.min_leaf {
            return None;
        }
        let ys: Vec<f64> = samples.iter().map(|&i| self.data.responses()[i]).collect();
        let total_sum: f64 = ys.iter().sum();
        let total_sq: f64 = ys.iter().map(|y| y * y).sum();
        let parent_sse = total_sq - total_sum * total_sum / n as f64;

        let mut best: Option<(f64, usize, f64)> = None;
        for var in 0..self.data.dim() {
            // Sort sample indices by this coordinate.
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                self.data.points()[samples[a]][var].total_cmp(&self.data.points()[samples[b]][var])
            });
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for split_at in 1..n {
                let idx = samples[order[split_at - 1]];
                let y = self.data.responses()[idx];
                left_sum += y;
                left_sq += y * y;
                let x_prev = self.data.points()[idx][var];
                let x_next = self.data.points()[samples[order[split_at]]][var];
                if x_next - x_prev < 1e-12 {
                    continue; // cannot split between equal coordinates
                }
                if split_at < self.config.min_leaf || n - split_at < self.config.min_leaf {
                    continue;
                }
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let left_sse = left_sq - left_sum * left_sum / split_at as f64;
                let right_sse = right_sq - right_sum * right_sum / (n - split_at) as f64;
                let gain = parent_sse - left_sse - right_sse;
                if gain > best.map_or(1e-12, |(g, _, _)| g) {
                    best = Some((gain, var, (x_prev + x_next) / 2.0));
                }
            }
        }
        best
    }

    fn make_leaf(&mut self, samples: &[usize]) -> usize {
        let dim = self.data.dim();
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        let mut sum = 0.0;
        for &i in samples {
            let (x, y) = self.data.sample(i);
            sum += y;
            for d in 0..dim {
                lo[d] = lo[d].min(x[d]);
                hi[d] = hi[d].max(x[d]);
            }
        }
        let center: Vec<f64> = lo.iter().zip(&hi).map(|(a, b)| (a + b) / 2.0).collect();
        let half_extent: Vec<f64> = lo
            .iter()
            .zip(&hi)
            .map(|(a, b)| ((b - a) / 2.0).max(1e-3))
            .collect();
        self.leaves.push(TreeLeaf {
            center,
            half_extent,
            mean: sum / samples.len() as f64,
            count: samples.len(),
        });
        self.leaves.len() - 1
    }
}

impl RegressionTree {
    /// Grows a tree on `data` (best-first, up to `config.max_leaves` leaves).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidDataset`] when `config.max_leaves == 0`
    /// or `config.min_leaf == 0`.
    pub fn fit(data: &Dataset, config: TreeConfig) -> Result<Self> {
        if config.max_leaves == 0 || config.min_leaf == 0 {
            return Err(ModelError::InvalidDataset(
                "max_leaves and min_leaf must be positive".into(),
            ));
        }
        let mut grower = Grower {
            data,
            config,
            nodes: Vec::new(),
            leaves: Vec::new(),
        };
        // Root starts as a pending region occupying node slot 0.
        grower.nodes.push(Node::Leaf { leaf_index: 0 }); // placeholder, patched below
        let all: Vec<usize> = (0..data.len()).collect();
        let mut pending: Vec<Candidate> = Vec::new();
        let mut leaf_regions: Vec<(usize, Vec<usize>)> = Vec::new(); // (node_slot, samples)

        match grower.best_split(&all) {
            Some((gain, var, threshold)) if grower.leaves.is_empty() => pending.push(Candidate {
                node_slot: 0,
                samples: all.clone(),
                gain,
                var,
                threshold,
            }),
            _ => leaf_regions.push((0, all.clone())),
        }

        let mut n_regions = 1usize;
        while n_regions < config.max_leaves && !pending.is_empty() {
            // Pop the candidate with the largest gain (best-first growth).
            let best_idx = pending
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.gain.total_cmp(&b.1.gain))
                .map(|(i, _)| i)
                .expect("pending is non-empty");
            let cand = pending.swap_remove(best_idx);
            let (mut left_samples, mut right_samples) = (Vec::new(), Vec::new());
            for &i in &cand.samples {
                if grower.data.points()[i][cand.var] <= cand.threshold {
                    left_samples.push(i);
                } else {
                    right_samples.push(i);
                }
            }
            let left_slot = grower.nodes.len();
            grower.nodes.push(Node::Leaf { leaf_index: 0 });
            let right_slot = grower.nodes.len();
            grower.nodes.push(Node::Leaf { leaf_index: 0 });
            grower.nodes[cand.node_slot] = Node::Split {
                var: cand.var,
                threshold: cand.threshold,
                left: left_slot,
                right: right_slot,
            };
            n_regions += 1;
            for (slot, samples) in [(left_slot, left_samples), (right_slot, right_samples)] {
                match grower.best_split(&samples) {
                    Some((gain, var, threshold)) => pending.push(Candidate {
                        node_slot: slot,
                        samples,
                        gain,
                        var,
                        threshold,
                    }),
                    None => leaf_regions.push((slot, samples)),
                }
            }
        }
        // Whatever is still pending becomes a leaf.
        for cand in pending {
            leaf_regions.push((cand.node_slot, cand.samples));
        }
        for (slot, samples) in leaf_regions {
            let leaf_index = grower.make_leaf(&samples);
            grower.nodes[slot] = Node::Leaf { leaf_index };
        }
        Ok(RegressionTree {
            nodes: grower.nodes,
            leaves: grower.leaves,
            root: 0,
            dim: data.dim(),
        })
    }

    /// The leaf regions (for RBF center/radius selection).
    pub fn leaves(&self) -> &[TreeLeaf] {
        &self.leaves
    }

    /// Number of leaf regions.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// The leaf containing `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimension.
    pub fn leaf_for(&self, x: &[f64]) -> &TreeLeaf {
        assert_eq!(x.len(), self.dim, "point dimension mismatch");
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Leaf { leaf_index } => return &self.leaves[*leaf_index],
                Node::Split {
                    var,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*var] <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

impl Regressor for RegressionTree {
    fn predict(&self, x: &[f64]) -> f64 {
        self.leaf_for(x).mean
    }

    fn parameter_count(&self) -> usize {
        // One mean per leaf plus one (var, threshold) pair per internal node.
        self.leaves.len() + (self.nodes.len() - self.leaves.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> Dataset {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![-1.0 + i as f64 / 20.0]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| {
                if x[0] < -0.25 {
                    1.0
                } else if x[0] < 0.5 {
                    5.0
                } else {
                    2.0
                }
            })
            .collect();
        Dataset::new(xs, ys).unwrap()
    }

    #[test]
    fn fits_piecewise_constant_exactly() {
        let tree = RegressionTree::fit(&step_data(), TreeConfig::default()).unwrap();
        assert_eq!(tree.predict(&[-0.8]), 1.0);
        assert_eq!(tree.predict(&[0.0]), 5.0);
        assert_eq!(tree.predict(&[0.9]), 2.0);
        assert!(tree.leaf_count() >= 3);
    }

    #[test]
    fn max_leaves_respected() {
        let cfg = TreeConfig {
            max_leaves: 2,
            min_leaf: 1,
        };
        let tree = RegressionTree::fit(&step_data(), cfg).unwrap();
        assert!(tree.leaf_count() <= 2);
    }

    #[test]
    fn constant_response_single_leaf() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let d = Dataset::new(xs, vec![7.0; 10]).unwrap();
        let tree = RegressionTree::fit(&d, TreeConfig::default()).unwrap();
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.predict(&[99.0]), 7.0);
    }

    #[test]
    fn min_leaf_respected() {
        let cfg = TreeConfig {
            max_leaves: 64,
            min_leaf: 5,
        };
        let tree = RegressionTree::fit(&step_data(), cfg).unwrap();
        for leaf in tree.leaves() {
            assert!(leaf.count >= 5, "leaf with {} samples", leaf.count);
        }
    }

    #[test]
    fn splits_on_relevant_dimension_in_2d() {
        // y depends on x1 only.
        let mut xs = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                xs.push(vec![i as f64, j as f64]);
            }
        }
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| if x[1] < 5.0 { 0.0 } else { 1.0 })
            .collect();
        let d = Dataset::new(xs, ys).unwrap();
        let tree = RegressionTree::fit(
            &d,
            TreeConfig {
                max_leaves: 2,
                min_leaf: 1,
            },
        )
        .unwrap();
        assert_eq!(tree.predict(&[0.0, 0.0]), 0.0);
        assert_eq!(tree.predict(&[0.0, 9.0]), 1.0);
        // Prediction must be invariant in x0.
        assert_eq!(tree.predict(&[9.0, 0.0]), 0.0);
    }

    #[test]
    fn leaf_geometry_covers_samples() {
        let tree = RegressionTree::fit(&step_data(), TreeConfig::default()).unwrap();
        for leaf in tree.leaves() {
            assert_eq!(leaf.center.len(), 1);
            assert!(leaf.half_extent[0] >= 1e-3);
            assert!(leaf.count > 0);
        }
    }

    #[test]
    fn rejects_zero_config() {
        let d = step_data();
        assert!(RegressionTree::fit(
            &d,
            TreeConfig {
                max_leaves: 0,
                min_leaf: 1
            }
        )
        .is_err());
    }

    #[test]
    fn parameter_count_counts_leaves_and_splits() {
        let tree = RegressionTree::fit(&step_data(), TreeConfig::default()).unwrap();
        assert!(tree.parameter_count() >= tree.leaf_count());
    }
}
