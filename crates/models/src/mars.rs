//! Multivariate Adaptive Regression Splines (paper §4.2, Friedman 1991).

use crate::{metrics, Attribution, Dataset, ModelError, Regressor, Result};
use emod_linalg::Matrix;

/// One hinge factor `max(0, x_v - t)` or `max(0, t - x_v)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hinge {
    /// Index of the predictor variable the hinge looks at.
    pub var: usize,
    /// Knot location (in coded units).
    pub knot: f64,
    /// `+1` for `max(0, x - t)`, `-1` for `max(0, t - x)`.
    pub direction: i8,
}

impl Hinge {
    /// Evaluates the hinge at a point.
    pub fn eval(&self, x: &[f64]) -> f64 {
        let d = if self.direction >= 0 {
            x[self.var] - self.knot
        } else {
            self.knot - x[self.var]
        };
        d.max(0.0)
    }
}

/// A MARS basis function: a product of at most `max_degree` hinges
/// (the constant function when `hinges` is empty).
#[derive(Debug, Clone, PartialEq)]
pub struct BasisFunction {
    hinges: Vec<Hinge>,
}

impl BasisFunction {
    /// The constant basis function `B0(x) = 1`.
    pub fn constant() -> Self {
        BasisFunction { hinges: Vec::new() }
    }

    /// Evaluates the product of hinge factors at `x`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.hinges.iter().map(|h| h.eval(x)).product()
    }

    /// Interaction degree (number of distinct variables involved).
    pub fn degree(&self) -> usize {
        self.variables().len()
    }

    /// The sorted set of distinct variables the function depends on.
    pub fn variables(&self) -> Vec<usize> {
        let mut vars: Vec<usize> = self.hinges.iter().map(|h| h.var).collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// Whether the function already involves variable `var`.
    pub fn involves(&self, var: usize) -> bool {
        self.hinges.iter().any(|h| h.var == var)
    }

    /// The hinge factors.
    pub fn hinges(&self) -> &[Hinge] {
        &self.hinges
    }

    fn extended(&self, hinge: Hinge) -> BasisFunction {
        let mut hinges = self.hinges.clone();
        hinges.push(hinge);
        BasisFunction { hinges }
    }
}

/// Configuration for the MARS forward/backward passes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarsConfig {
    /// Maximum number of basis functions added by the forward pass
    /// (including the constant).
    pub max_terms: usize,
    /// Maximum interaction degree of any basis function. The paper's linear
    /// models stop at two-factor interactions; MARS uses the same cap.
    pub max_degree: usize,
    /// Maximum number of candidate knots per (parent, variable) pair;
    /// knots are taken at evenly spaced order statistics of the data.
    pub max_knots: usize,
    /// GCV knot penalty (Friedman's `d`, conventionally ~3).
    pub gcv_penalty: f64,
}

impl Default for MarsConfig {
    fn default() -> Self {
        MarsConfig {
            max_terms: 21,
            max_degree: 2,
            max_knots: 16,
            gcv_penalty: 3.0,
        }
    }
}

/// A fitted MARS model: `f(x) = Σ w_m B_m(x)` (paper Equation 6).
///
/// Fit in two stages: a greedy *forward pass* that repeatedly adds the
/// reflected pair of hinge functions that most reduces training SSE, and a
/// *backward pruning pass* that removes terms while the GCV criterion
/// improves — the overfitting control the paper attributes to the `polspline`
/// package.
///
/// # Examples
///
/// ```
/// use emod_models::{Dataset, Mars, MarsConfig, Regressor};
///
/// // A hinge-shaped response: flat then rising, like the paper's Figure 3
/// // unroll-factor curve.
/// let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![-1.0 + i as f64 / 25.0]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| 2.0 + 3.0 * (x[0] - 0.2f64).max(0.0)).collect();
/// let model = Mars::fit(&Dataset::new(xs, ys)?, MarsConfig::default())?;
/// assert!((model.predict(&[-0.5]) - 2.0).abs() < 0.1);
/// assert!((model.predict(&[0.8]) - 3.8).abs() < 0.15);
/// # Ok::<(), emod_models::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Mars {
    basis: Vec<BasisFunction>,
    weights: Vec<f64>,
    dim: usize,
    training_gcv: f64,
    training_sse: f64,
}

impl Mars {
    /// Fits a MARS model to `data`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NumericalFailure`] if a least-squares solve
    /// fails irrecoverably.
    pub fn fit(data: &Dataset, config: MarsConfig) -> Result<Self> {
        let n = data.len();
        let mut basis = vec![BasisFunction::constant()];
        // Scale for "the fit is already (near-)perfect" early exit.
        let mean = data.response_mean();
        let sst: f64 = data
            .responses()
            .iter()
            .map(|y| (y - mean) * (y - mean))
            .sum::<f64>()
            .max(1e-12);
        let mut best_sse = sst;

        // Forward pass: always add the SSE-best reflected hinge pair, like
        // Friedman's algorithm — the backward pass is responsible for
        // removing unhelpful terms. Candidate pairs are scored in parallel
        // (each score is a pure least-squares solve), then the winner is
        // chosen by a sequential scan in enumeration order — the same
        // first-wins tie-breaking as the sequential loop, so the fitted
        // model is bit-identical at any `EMOD_THREADS`.
        let pool = emod_par::Pool::from_env();
        while basis.len() + 2 <= config.max_terms.max(1) && basis.len() + 2 < n {
            if best_sse < 1e-10 * sst {
                break; // interpolating already
            }
            let mut candidates: Vec<(usize, usize, f64)> = Vec::new(); // (parent, var, knot)
            for (parent_idx, parent) in basis.iter().enumerate() {
                if parent.degree() >= config.max_degree {
                    continue;
                }
                for var in 0..data.dim() {
                    if parent.involves(var) {
                        continue;
                    }
                    for knot in knot_candidates(data, var, config.max_knots) {
                        candidates.push((parent_idx, var, knot));
                    }
                }
            }
            let scores = pool.map(&candidates, |_i, &(parent_idx, var, knot)| {
                let parent = &basis[parent_idx];
                let plus = parent.extended(Hinge {
                    var,
                    knot,
                    direction: 1,
                });
                let minus = parent.extended(Hinge {
                    var,
                    knot,
                    direction: -1,
                });
                let mut trial = basis.clone();
                trial.push(plus);
                trial.push(minus);
                solve_weights(&trial, data).ok().map(|(_, sse)| sse)
            });
            let mut best_addition: Option<(usize, Hinge, f64)> = None; // (parent, hinge, sse)
            for (&(parent_idx, var, knot), score) in candidates.iter().zip(scores) {
                let Some(sse) = score else { continue };
                if best_addition.as_ref().is_none_or(|b| sse < b.2) {
                    best_addition = Some((
                        parent_idx,
                        Hinge {
                            var,
                            knot,
                            direction: 1,
                        },
                        sse,
                    ));
                }
            }
            match best_addition {
                Some((parent_idx, hinge, sse)) => {
                    let parent = basis[parent_idx].clone();
                    basis.push(parent.extended(hinge));
                    basis.push(parent.extended(Hinge {
                        direction: -1,
                        ..hinge
                    }));
                    best_sse = sse;
                }
                None => break,
            }
        }

        // Backward pass: prune terms while GCV improves, keeping the best
        // subset seen.
        let (mut weights, mut sse) = solve_weights(&basis, data)?;
        let mut best_model = (basis.clone(), weights.clone(), sse);
        let mut best_gcv = metrics::gcv(sse, n, basis.len(), config.gcv_penalty);
        while basis.len() > 1 {
            // Remove the non-constant term whose deletion yields the best
            // GCV. Deletion trials are solved in parallel; the scan below
            // keeps the sequential loop's lowest-index tie-breaking.
            let removals: Vec<usize> = (1..basis.len()).collect();
            let trials = pool.map(&removals, |_i, &remove| {
                let mut trial = basis.clone();
                trial.remove(remove);
                solve_weights(&trial, data).ok().map(|(w, s)| {
                    // Clamp numerically-zero SSE so GCV ties resolve toward
                    // the smaller model instead of chasing rounding noise.
                    let s = if s < 1e-10 * sst { 0.0 } else { s };
                    let g = metrics::gcv(s, n, trial.len(), config.gcv_penalty);
                    (g, w, s)
                })
            });
            let mut round_best: Option<(usize, f64, Vec<f64>, f64)> = None;
            for (&remove, trial) in removals.iter().zip(trials) {
                let Some((g, w, s)) = trial else { continue };
                if round_best.as_ref().is_none_or(|b| g < b.1) {
                    round_best = Some((remove, g, w, s));
                }
            }
            match round_best {
                Some((remove, g, w, s)) => {
                    basis.remove(remove);
                    weights = w;
                    sse = s;
                    // `<=` prefers the smaller model on GCV ties, so pure
                    // noise terms never survive pruning.
                    if g <= best_gcv {
                        best_gcv = g;
                        best_model = (basis.clone(), weights.clone(), sse);
                    }
                }
                None => break,
            }
        }

        let (basis, weights, sse) = best_model;
        Ok(Mars {
            dim: data.dim(),
            training_gcv: best_gcv,
            training_sse: sse,
            basis,
            weights,
        })
    }

    /// The basis functions (index 0 is the constant).
    pub fn basis(&self) -> &[BasisFunction] {
        &self.basis
    }

    /// The regression weights, aligned with [`Mars::basis`].
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// GCV of the selected model on the training data.
    pub fn training_gcv(&self) -> f64 {
        self.training_gcv
    }

    /// SSE of the selected model on the training data.
    pub fn training_sse(&self) -> f64 {
        self.training_sse
    }

    /// Decomposes `predict(x)` into one [`Attribution`] per basis function
    /// (`wₘ·Bₘ(x)`, paper Equation 6). The constant basis is labeled
    /// `"intercept"`; every other component is labeled with its hinge
    /// product, e.g. `"h(x1-0.2500)*h(0.5000-x2)"`.
    ///
    /// The components are the same products the predictor sums, in the same
    /// order, so their left-to-right sum reconstructs the prediction.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the model dimension.
    pub fn explain(&self, x: &[f64]) -> Vec<Attribution> {
        assert_eq!(x.len(), self.dim, "point dimension mismatch");
        self.basis
            .iter()
            .zip(&self.weights)
            .map(|(b, w)| {
                let term = if b.hinges.is_empty() {
                    "intercept".to_string()
                } else {
                    b.hinges
                        .iter()
                        .map(|h| {
                            if h.direction >= 0 {
                                format!("h(x{}-{:.4})", h.var, h.knot)
                            } else {
                                format!("h({:.4}-x{})", h.knot, h.var)
                            }
                        })
                        .collect::<Vec<_>>()
                        .join("*")
                };
                Attribution::new(term, b.variables(), w * b.eval(x))
            })
            .collect()
    }

    /// The variable sets the model found worth including — each entry is a
    /// sorted list of variable indices with the summed |weight| of basis
    /// functions over exactly that set. This is the "simplified form" the
    /// paper uses to rank effects and interactions (Table 4).
    pub fn effect_groups(&self) -> Vec<(Vec<usize>, f64)> {
        let mut groups: Vec<(Vec<usize>, f64)> = Vec::new();
        for (b, w) in self.basis.iter().zip(&self.weights) {
            if b.degree() == 0 {
                continue;
            }
            let vars = b.variables();
            match groups.iter_mut().find(|(v, _)| *v == vars) {
                Some((_, acc)) => *acc += w.abs(),
                None => groups.push((vars, w.abs())),
            }
        }
        groups.sort_by(|a, b| b.1.total_cmp(&a.1));
        groups
    }

    /// Serializes the fitted model into `w` (see [`crate::codec`]).
    pub fn encode(&self, w: &mut crate::codec::Writer) {
        w.put_u32(self.dim as u32);
        w.put_u32(self.basis.len() as u32);
        for b in &self.basis {
            w.put_u32(b.hinges.len() as u32);
            for h in &b.hinges {
                w.put_u32(h.var as u32);
                w.put_f64(h.knot);
                w.put_u8(h.direction as u8);
            }
        }
        w.put_f64s(&self.weights);
        w.put_f64(self.training_gcv);
        w.put_f64(self.training_sse);
    }

    /// Deserializes a model written by [`Mars::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`crate::codec::CodecError`] on truncated input, hinge
    /// variables outside the model dimension, or a weight count that does not
    /// match the basis.
    pub fn decode(r: &mut crate::codec::Reader<'_>) -> crate::codec::CodecResult<Self> {
        use crate::codec::CodecError;
        let dim = r.get_u32()? as usize;
        if dim == 0 {
            return Err(CodecError::BadValue("mars model dim 0".into()));
        }
        let n_basis = r.get_len(4, "mars basis")?;
        let mut basis = Vec::with_capacity(n_basis);
        for _ in 0..n_basis {
            let n_hinges = r.get_len(13, "mars hinges")?;
            let mut hinges = Vec::with_capacity(n_hinges);
            for _ in 0..n_hinges {
                let var = r.get_u32()? as usize;
                if var >= dim {
                    return Err(CodecError::BadValue(format!(
                        "hinge variable {} out of range for dim {}",
                        var, dim
                    )));
                }
                let knot = r.get_f64()?;
                let direction = r.get_u8()? as i8;
                if direction != 1 && direction != -1 {
                    return Err(CodecError::BadValue(format!(
                        "hinge direction {} (want ±1)",
                        direction
                    )));
                }
                hinges.push(Hinge {
                    var,
                    knot,
                    direction,
                });
            }
            basis.push(BasisFunction { hinges });
        }
        let weights = r.get_f64s()?;
        if weights.len() != basis.len() {
            return Err(CodecError::BadValue(format!(
                "mars model has {} basis functions but {} weights",
                basis.len(),
                weights.len()
            )));
        }
        let training_gcv = r.get_f64()?;
        let training_sse = r.get_f64()?;
        Ok(Mars {
            basis,
            weights,
            dim,
            training_gcv,
            training_sse,
        })
    }
}

impl Regressor for Mars {
    fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "point dimension mismatch");
        self.basis
            .iter()
            .zip(&self.weights)
            .map(|(b, w)| w * b.eval(x))
            .sum()
    }

    fn parameter_count(&self) -> usize {
        // A weight per basis function plus a knot per hinge.
        self.weights.len() + self.basis.iter().map(|b| b.hinges().len()).sum::<usize>()
    }
}

/// Candidate knots for `var`: up to `max_knots` evenly spaced order
/// statistics, excluding the extremes (a hinge at an extreme is degenerate).
fn knot_candidates(data: &Dataset, var: usize, max_knots: usize) -> Vec<f64> {
    let values = data.distinct_values(var);
    if values.len() <= 2 {
        // Binary variable: the midpoint makes the hinge behave linearly.
        return if values.len() == 2 {
            vec![(values[0] + values[1]) / 2.0]
        } else {
            Vec::new()
        };
    }
    let interior = &values[..values.len() - 1]; // knots below the max
    if interior.len() <= max_knots {
        return interior.to_vec();
    }
    (0..max_knots)
        .map(|i| {
            let idx = i * (interior.len() - 1) / (max_knots - 1);
            interior[idx]
        })
        .collect()
}

/// Least-squares weights for a basis set; returns `(weights, sse)`.
fn solve_weights(basis: &[BasisFunction], data: &Dataset) -> Result<(Vec<f64>, f64)> {
    let mut x = Matrix::zeros(0, basis.len());
    for pt in data.points() {
        let row: Vec<f64> = basis.iter().map(|b| b.eval(pt)).collect();
        x.push_row(&row);
    }
    let w = x
        .solve_lstsq(data.responses())
        .map_err(|e| ModelError::NumericalFailure(e.to_string()))?;
    let pred = x
        .matvec(&w)
        .map_err(|e| ModelError::NumericalFailure(e.to_string()))?;
    let sse = metrics::sse(&pred, data.responses());
    Ok((w, sse))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid1(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![-1.0 + 2.0 * i as f64 / (n - 1) as f64])
            .collect()
    }

    #[test]
    fn hinge_eval() {
        let h = Hinge {
            var: 0,
            knot: 0.5,
            direction: 1,
        };
        assert_eq!(h.eval(&[0.0]), 0.0);
        assert_eq!(h.eval(&[1.0]), 0.5);
        let m = Hinge { direction: -1, ..h };
        assert_eq!(m.eval(&[0.0]), 0.5);
        assert_eq!(m.eval(&[1.0]), 0.0);
    }

    #[test]
    fn basis_product_and_degree() {
        let b = BasisFunction::constant()
            .extended(Hinge {
                var: 0,
                knot: 0.0,
                direction: 1,
            })
            .extended(Hinge {
                var: 1,
                knot: 0.0,
                direction: -1,
            });
        assert_eq!(b.degree(), 2);
        assert_eq!(b.variables(), vec![0, 1]);
        assert_eq!(b.eval(&[0.5, -0.5]), 0.25);
        assert_eq!(b.eval(&[-0.5, -0.5]), 0.0);
    }

    #[test]
    fn fits_single_hinge_closely() {
        let xs = grid1(60);
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 1.0 + 2.0 * (0.3 - x[0]).max(0.0))
            .collect();
        let m = Mars::fit(
            &Dataset::new(xs.clone(), ys.clone()).unwrap(),
            MarsConfig::default(),
        )
        .unwrap();
        let preds = m.predict_batch(&xs);
        assert!(
            metrics::r_squared(&preds, &ys) > 0.99,
            "R² = {}",
            metrics::r_squared(&preds, &ys)
        );
    }

    #[test]
    fn captures_threshold_then_slowdown_shape() {
        // The paper's Figure 3 story: improves to a floor, then degrades.
        let xs = grid1(80);
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 5.0 - 2.0 * (x[0] + 1.0).min(1.2) + 3.0 * (x[0] - 0.5f64).max(0.0))
            .collect();
        let m = Mars::fit(
            &Dataset::new(xs.clone(), ys.clone()).unwrap(),
            MarsConfig::default(),
        )
        .unwrap();
        let preds = m.predict_batch(&xs);
        assert!(metrics::r_squared(&preds, &ys) > 0.97);
        // A pure linear fit is strictly worse.
        let lin = crate::LinearModel::fit(
            &Dataset::new(xs.clone(), ys.clone()).unwrap(),
            crate::LinearTerms::MainEffects,
        )
        .unwrap();
        assert!(metrics::sse(&lin.predict_batch(&xs), &ys) > 2.0 * metrics::sse(&preds, &ys));
    }

    #[test]
    fn discovers_interaction_group() {
        // y = x0 * x1 over a 2-level grid: MARS must use a degree-2 basis.
        let mut xs = Vec::new();
        for a in [-1.0f64, -0.5, 0.5, 1.0] {
            for b in [-1.0f64, -0.5, 0.5, 1.0] {
                xs.push(vec![a, b]);
            }
        }
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[1]).collect();
        let m = Mars::fit(
            &Dataset::new(xs.clone(), ys.clone()).unwrap(),
            MarsConfig::default(),
        )
        .unwrap();
        let preds = m.predict_batch(&xs);
        assert!(metrics::r_squared(&preds, &ys) > 0.9);
        let groups = m.effect_groups();
        assert!(
            groups.iter().any(|(vars, _)| vars == &vec![0, 1]),
            "no interaction group found: {:?}",
            groups
        );
    }

    #[test]
    fn pruning_removes_noise_terms() {
        // Constant response: after pruning only the intercept should remain.
        let xs = grid1(30);
        let ys = vec![4.0; 30];
        let m = Mars::fit(&Dataset::new(xs, ys).unwrap(), MarsConfig::default()).unwrap();
        assert_eq!(m.basis().len(), 1, "basis: {:?}", m.basis());
        assert!((m.predict(&[0.123]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn max_degree_one_excludes_interactions() {
        let mut xs = Vec::new();
        for a in [-1.0f64, 0.0, 1.0] {
            for b in [-1.0f64, 0.0, 1.0] {
                xs.push(vec![a, b]);
            }
        }
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[1]).collect();
        let cfg = MarsConfig {
            max_degree: 1,
            ..MarsConfig::default()
        };
        let m = Mars::fit(&Dataset::new(xs, ys).unwrap(), cfg).unwrap();
        for b in m.basis() {
            assert!(b.degree() <= 1);
        }
    }

    #[test]
    fn knot_candidates_respect_cap() {
        let xs = grid1(100);
        let d = Dataset::new(xs, vec![0.0; 100]).unwrap();
        let knots = knot_candidates(&d, 0, 8);
        assert!(knots.len() <= 8);
        // Binary variable gets its midpoint.
        let d2 = Dataset::new(vec![vec![-1.0], vec![1.0]], vec![0.0, 1.0]).unwrap();
        assert_eq!(knot_candidates(&d2, 0, 8), vec![0.0]);
    }
}
