//! Global parametric linear regression models (paper §4.1).

use crate::{metrics, Attribution, Dataset, ModelError, Regressor, Result};
use emod_linalg::Matrix;

/// Which terms a [`LinearModel`] includes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinearTerms {
    /// Intercept + one coefficient per predictor (paper's simplest form).
    MainEffects,
    /// Intercept + mains + all two-factor interactions (paper Equation 2) —
    /// the configuration evaluated in the paper.
    TwoFactor,
}

/// A least-squares linear regression model over coded predictors.
///
/// The partial regression coefficients "reflect the effect or significance of
/// the corresponding predictor variable on the response" (§4.1); with coded
/// `[-1, 1]` predictors each main coefficient is one-half the predicted
/// change from a variable's low to high value.
///
/// # Examples
///
/// ```
/// use emod_models::{Dataset, LinearModel, LinearTerms, Regressor};
///
/// // y = 3 + 2*x0 - x1 + x0*x1
/// let xs = vec![
///     vec![-1.0, -1.0], vec![-1.0, 1.0], vec![1.0, -1.0], vec![1.0, 1.0],
///     vec![0.0, 0.0],
/// ];
/// let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x[0] - x[1] + x[0] * x[1]).collect();
/// let data = Dataset::new(xs, ys)?;
/// let model = LinearModel::fit(&data, LinearTerms::TwoFactor)?;
/// assert!((model.predict(&[0.5, -0.5]) - (3.0 + 1.0 + 0.5 - 0.25)).abs() < 1e-9);
/// # Ok::<(), emod_models::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LinearModel {
    terms: LinearTerms,
    dim: usize,
    coefficients: Vec<f64>,
    training_sse: f64,
    training_samples: usize,
}

impl LinearModel {
    /// Fits the model by least squares (paper Equation 3).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NumericalFailure`] if the least-squares system
    /// cannot be solved even with ridge regularization.
    pub fn fit(data: &Dataset, terms: LinearTerms) -> Result<Self> {
        let dim = data.dim();
        let p = Self::term_count_for(dim, terms);
        let mut x = Matrix::zeros(0, p);
        for pt in data.points() {
            x.push_row(&Self::expand_point(pt, terms));
        }
        let coefficients = x
            .solve_lstsq(data.responses())
            .map_err(|e| ModelError::NumericalFailure(e.to_string()))?;
        let predicted = x
            .matvec(&coefficients)
            .map_err(|e| ModelError::NumericalFailure(e.to_string()))?;
        let training_sse = metrics::sse(&predicted, data.responses());
        Ok(LinearModel {
            terms,
            dim,
            coefficients,
            training_sse,
            training_samples: data.len(),
        })
    }

    fn term_count_for(dim: usize, terms: LinearTerms) -> usize {
        match terms {
            LinearTerms::MainEffects => 1 + dim,
            LinearTerms::TwoFactor => 1 + dim + dim * (dim - 1) / 2,
        }
    }

    fn expand_point(x: &[f64], terms: LinearTerms) -> Vec<f64> {
        let mut row = Vec::with_capacity(Self::term_count_for(x.len(), terms));
        row.push(1.0);
        row.extend_from_slice(x);
        if terms == LinearTerms::TwoFactor {
            for i in 0..x.len() {
                for j in i + 1..x.len() {
                    row.push(x[i] * x[j]);
                }
            }
        }
        row
    }

    /// The fitted coefficients: `[β0, β1..βk, (βij…)]`.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// The intercept `β0`.
    pub fn intercept(&self) -> f64 {
        self.coefficients[0]
    }

    /// Coefficient of main effect `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn main_effect(&self, var: usize) -> f64 {
        assert!(var < self.dim, "variable out of range");
        self.coefficients[1 + var]
    }

    /// Coefficient of the `(i, j)` interaction, if the model includes
    /// interactions.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or either index is out of range.
    pub fn interaction(&self, i: usize, j: usize) -> Option<f64> {
        assert!(i < self.dim && j < self.dim && i != j, "bad index pair");
        if self.terms == LinearTerms::MainEffects {
            return None;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        // Offset of pair (a, b) in the upper-triangle enumeration.
        let mut idx = 1 + self.dim;
        for r in 0..a {
            idx += self.dim - r - 1;
        }
        idx += b - a - 1;
        Some(self.coefficients[idx])
    }

    /// SSE on the training data.
    pub fn training_sse(&self) -> f64 {
        self.training_sse
    }

    /// BIC on the training data (paper Equation 9).
    pub fn bic(&self) -> f64 {
        metrics::bic(
            self.training_sse,
            self.training_samples,
            self.coefficients.len(),
        )
    }

    /// Term structure the model was fit with.
    pub fn terms(&self) -> LinearTerms {
        self.terms
    }

    /// Decomposes `predict(x)` into one [`Attribution`] per regression term.
    ///
    /// The components are exactly the products the predictor sums, in the
    /// same order, so their left-to-right sum is **bit-identical** to
    /// [`Regressor::predict`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the model dimension.
    pub fn explain(&self, x: &[f64]) -> Vec<Attribution> {
        assert_eq!(x.len(), self.dim, "point dimension mismatch");
        let expanded = Self::expand_point(x, self.terms);
        let mut parts = Vec::with_capacity(expanded.len());
        parts.push(Attribution::new(
            "intercept",
            Vec::new(),
            expanded[0] * self.coefficients[0],
        ));
        for i in 0..self.dim {
            parts.push(Attribution::new(
                format!("x{}", i),
                vec![i],
                expanded[1 + i] * self.coefficients[1 + i],
            ));
        }
        if self.terms == LinearTerms::TwoFactor {
            let mut idx = 1 + self.dim;
            for i in 0..self.dim {
                for j in i + 1..self.dim {
                    parts.push(Attribution::new(
                        format!("x{}*x{}", i, j),
                        vec![i, j],
                        expanded[idx] * self.coefficients[idx],
                    ));
                    idx += 1;
                }
            }
        }
        parts
    }

    /// Serializes the fitted model into `w` (see [`crate::codec`]).
    pub fn encode(&self, w: &mut crate::codec::Writer) {
        w.put_u8(match self.terms {
            LinearTerms::MainEffects => 0,
            LinearTerms::TwoFactor => 1,
        });
        w.put_u32(self.dim as u32);
        w.put_f64s(&self.coefficients);
        w.put_f64(self.training_sse);
        w.put_u64(self.training_samples as u64);
    }

    /// Deserializes a model written by [`LinearModel::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`crate::codec::CodecError`] on truncated input, an unknown
    /// term tag, or a coefficient count inconsistent with the dimension.
    pub fn decode(r: &mut crate::codec::Reader<'_>) -> crate::codec::CodecResult<Self> {
        use crate::codec::CodecError;
        let terms = match r.get_u8()? {
            0 => LinearTerms::MainEffects,
            1 => LinearTerms::TwoFactor,
            t => return Err(CodecError::BadValue(format!("linear terms tag {}", t))),
        };
        let dim = r.get_u32()? as usize;
        if dim == 0 {
            return Err(CodecError::BadValue("linear model dim 0".into()));
        }
        let coefficients = r.get_f64s()?;
        if coefficients.len() != Self::term_count_for(dim, terms) {
            return Err(CodecError::BadValue(format!(
                "linear model dim {} with {:?} needs {} coefficients, got {}",
                dim,
                terms,
                Self::term_count_for(dim, terms),
                coefficients.len()
            )));
        }
        let training_sse = r.get_f64()?;
        let training_samples = r.get_u64()? as usize;
        Ok(LinearModel {
            terms,
            dim,
            coefficients,
            training_sse,
            training_samples,
        })
    }
}

impl Regressor for LinearModel {
    fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "point dimension mismatch");
        Self::expand_point(x, self.terms)
            .iter()
            .zip(&self.coefficients)
            .map(|(a, b)| a * b)
            .sum()
    }

    fn parameter_count(&self) -> usize {
        self.coefficients.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid2() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in -2..=2 {
            for j in -2..=2 {
                pts.push(vec![i as f64 / 2.0, j as f64 / 2.0]);
            }
        }
        pts
    }

    #[test]
    fn recovers_exact_linear_function() {
        let xs = grid2();
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 - 3.0 * x[0] + 0.5 * x[1]).collect();
        let m = LinearModel::fit(&Dataset::new(xs, ys).unwrap(), LinearTerms::MainEffects).unwrap();
        assert!((m.intercept() - 5.0).abs() < 1e-10);
        assert!((m.main_effect(0) + 3.0).abs() < 1e-10);
        assert!((m.main_effect(1) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn recovers_interaction_coefficient() {
        let xs = grid2();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 + 2.0 * x[0] * x[1]).collect();
        let m = LinearModel::fit(&Dataset::new(xs, ys).unwrap(), LinearTerms::TwoFactor).unwrap();
        assert!((m.interaction(0, 1).unwrap() - 2.0).abs() < 1e-10);
        assert!((m.interaction(1, 0).unwrap() - 2.0).abs() < 1e-10);
        assert!(m.main_effect(0).abs() < 1e-10);
    }

    #[test]
    fn interaction_indexing_three_vars() {
        // y = x0*x2 only; checks the pair-offset arithmetic.
        let mut xs = Vec::new();
        for a in [-1.0, 1.0] {
            for b in [-1.0, 1.0] {
                for c in [-1.0, 1.0] {
                    xs.push(vec![a, b, c]);
                }
            }
        }
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[2]).collect();
        let m = LinearModel::fit(&Dataset::new(xs, ys).unwrap(), LinearTerms::TwoFactor).unwrap();
        assert!((m.interaction(0, 2).unwrap() - 1.0).abs() < 1e-10);
        assert!(m.interaction(0, 1).unwrap().abs() < 1e-10);
        assert!(m.interaction(1, 2).unwrap().abs() < 1e-10);
    }

    #[test]
    fn main_effects_model_has_no_interactions() {
        let xs = grid2();
        let ys = vec![1.0; xs.len()];
        let m = LinearModel::fit(&Dataset::new(xs, ys).unwrap(), LinearTerms::MainEffects).unwrap();
        assert_eq!(m.interaction(0, 1), None);
        assert_eq!(m.parameter_count(), 3);
    }

    #[test]
    fn cannot_fit_quadratic_exactly() {
        // The motivating example from the paper's Figure 3: a response with a
        // ridge (quadratic) cannot be captured by a linear model.
        let xs: Vec<Vec<f64>> = (0..21).map(|i| vec![-1.0 + i as f64 / 10.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[0]).collect();
        let m = LinearModel::fit(
            &Dataset::new(xs.clone(), ys.clone()).unwrap(),
            LinearTerms::MainEffects,
        )
        .unwrap();
        let preds = m.predict_batch(&xs);
        assert!(metrics::r_squared(&preds, &ys) < 0.1);
        assert!(m.training_sse() > 0.1);
    }

    #[test]
    fn bic_finite_for_reasonable_fit() {
        let xs = grid2();
        let ys: Vec<f64> = xs.iter().map(|x| x[0]).collect();
        let m = LinearModel::fit(&Dataset::new(xs, ys).unwrap(), LinearTerms::MainEffects).unwrap();
        assert!(m.bic().is_finite());
    }
}
