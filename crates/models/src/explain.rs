//! Per-prediction attribution: decomposing a prediction into labeled,
//! additive components.
//!
//! Each model family exposes an `explain` method returning a vector of
//! [`Attribution`] components whose values sum back to `predict(x)`:
//!
//! * [`crate::LinearModel::explain`] — one component per regression term
//!   (intercept, mains, two-factor interactions); the sum is *bit-exact*
//!   because the components are the very products the predictor adds.
//! * [`crate::Mars::explain`] — one component per basis function
//!   (`wₘ·Bₘ(x)`), labeled with its hinge product.
//! * [`crate::RbfNetwork::explain`] — the bias, the linear-tail terms, and
//!   one component per hidden unit (`wⱼ·K(dⱼ)`), labeled with the unit's
//!   radius-normalized distance to its center.
//!
//! # Examples
//!
//! ```
//! use emod_models::{Dataset, LinearModel, LinearTerms, Regressor};
//!
//! let xs = vec![vec![-1.0], vec![0.0], vec![1.0]];
//! let ys = vec![1.0, 3.0, 5.0]; // y = 3 + 2x
//! let model = LinearModel::fit(&Dataset::new(xs, ys)?, LinearTerms::MainEffects)?;
//! let parts = model.explain(&[0.5]);
//! let total: f64 = parts.iter().map(|a| a.value).sum();
//! assert_eq!(total.to_bits(), model.predict(&[0.5]).to_bits());
//! # Ok::<(), emod_models::ModelError>(())
//! ```

/// One additive component of a prediction decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// Human-readable term label, e.g. `"intercept"`, `"x3"`, `"x0*x2"`,
    /// `"h(x1-0.2500)"`, or `"unit4(d=0.812)"`.
    pub term: String,
    /// Sorted distinct predictor variables the component depends on (empty
    /// for constant terms and RBF units, which depend on all variables).
    pub variables: Vec<usize>,
    /// Additive contribution to the prediction at the queried point.
    pub value: f64,
}

impl Attribution {
    /// Builds a component; `variables` is sorted and deduplicated.
    pub fn new(term: impl Into<String>, mut variables: Vec<usize>, value: f64) -> Self {
        variables.sort_unstable();
        variables.dedup();
        Attribution {
            term: term.into(),
            variables,
            value,
        }
    }
}

/// Sums component values in order — the reconstruction consumers should
/// compare against `predict(x)`.
pub fn attribution_total(parts: &[Attribution]) -> f64 {
    parts.iter().map(|a| a.value).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_dedups_variables() {
        let a = Attribution::new("x1*x0", vec![1, 0, 1], 2.5);
        assert_eq!(a.variables, vec![0, 1]);
        assert_eq!(a.term, "x1*x0");
        assert_eq!(a.value, 2.5);
    }

    #[test]
    fn total_sums_in_order() {
        let parts = vec![
            Attribution::new("a", vec![], 1.0),
            Attribution::new("b", vec![], 2.0),
        ];
        assert_eq!(attribution_total(&parts), 3.0);
        assert_eq!(attribution_total(&[]), 0.0);
    }
}
