//! Zero-dependency binary codec for persisting fitted models.
//!
//! Every serialized quantity is little-endian; `f64` values round-trip
//! through [`f64::to_bits`]/[`f64::from_bits`] so loaded models predict
//! **bit-identically** to the in-memory originals. Variable-length fields
//! carry a `u32` length prefix that is sanity-checked against the remaining
//! input, so corrupted or truncated byte streams are rejected with a
//! [`CodecError`] instead of panicking or over-allocating.
//!
//! # Examples
//!
//! ```
//! use emod_models::codec::{Reader, Writer};
//!
//! let mut w = Writer::new();
//! w.put_f64(1.5);
//! w.put_str("hello");
//! let bytes = w.into_bytes();
//!
//! let mut r = Reader::new(&bytes);
//! assert_eq!(r.get_f64()?, 1.5);
//! assert_eq!(r.get_str()?, "hello");
//! r.finish()?;
//! # Ok::<(), emod_models::codec::CodecError>(())
//! ```

use crate::Dataset;
use std::error::Error;
use std::fmt;

/// Error produced while decoding a serialized model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the expected field.
    UnexpectedEof {
        /// What the decoder was trying to read.
        expected: &'static str,
        /// Bytes needed to read it.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A decoded value is structurally invalid (bad tag, inconsistent
    /// lengths, implausible length prefix, …).
    BadValue(String),
    /// Bytes left over after the final field — a framing error.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof {
                expected,
                needed,
                remaining,
            } => write!(
                f,
                "unexpected end of input reading {} (need {} bytes, have {})",
                expected, needed, remaining
            ),
            CodecError::BadValue(msg) => write!(f, "bad value: {}", msg),
            CodecError::TrailingBytes(n) => write!(f, "{} trailing bytes after final field", n),
        }
    }
}

impl Error for CodecError {}

/// Result alias for decoding.
pub type CodecResult<T> = std::result::Result<T, CodecError>;

/// Append-only little-endian byte writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern, little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a UTF-8 string with a `u32` length prefix.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends an `f64` slice with a `u32` length prefix.
    pub fn put_f64s(&mut self, vs: &[f64]) {
        self.put_u32(vs.len() as u32);
        for &v in vs {
            self.put_f64(v);
        }
    }
}

/// Checked little-endian byte reader over a borrowed slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless every byte was consumed.
    pub fn finish(&self) -> CodecResult<()> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(CodecError::TrailingBytes(n)),
        }
    }

    fn take(&mut self, n: usize, expected: &'static str) -> CodecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                expected,
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> CodecResult<u32> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> CodecResult<u64> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> CodecResult<f64> {
        let b = self.take(8, "f64")?;
        Ok(f64::from_bits(u64::from_le_bytes(b.try_into().unwrap())))
    }

    /// Reads a bool encoded as 0/1.
    pub fn get_bool(&mut self) -> CodecResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CodecError::BadValue(format!("bool byte {}", b))),
        }
    }

    /// Reads a length-prefixed count, checking the prefix is plausible for
    /// elements of `elem_size` bytes given the remaining input.
    pub fn get_len(&mut self, elem_size: usize, what: &'static str) -> CodecResult<usize> {
        let n = self.get_u32()? as usize;
        if n.saturating_mul(elem_size.max(1)) > self.remaining() {
            return Err(CodecError::BadValue(format!(
                "{} length {} exceeds remaining {} bytes",
                what,
                n,
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> CodecResult<String> {
        let n = self.get_len(1, "string")?;
        let b = self.take(n, "string bytes")?;
        String::from_utf8(b.to_vec())
            .map_err(|_| CodecError::BadValue("string is not UTF-8".into()))
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn get_f64s(&mut self) -> CodecResult<Vec<f64>> {
        let n = self.get_len(8, "f64 vector")?;
        (0..n).map(|_| self.get_f64()).collect()
    }
}

/// Serializes a dataset (points + responses) for artifact provenance.
pub fn encode_dataset(w: &mut Writer, data: &Dataset) {
    w.put_u32(data.len() as u32);
    w.put_u32(data.dim() as u32);
    for pt in data.points() {
        for &v in pt {
            w.put_f64(v);
        }
    }
    for &y in data.responses() {
        w.put_f64(y);
    }
}

/// Deserializes a dataset written by [`encode_dataset`].
pub fn decode_dataset(r: &mut Reader<'_>) -> CodecResult<Dataset> {
    let n = r.get_u32()? as usize;
    let dim = r.get_u32()? as usize;
    let total = n
        .checked_mul(dim)
        .and_then(|p| p.checked_add(n))
        .and_then(|t| t.checked_mul(8))
        .ok_or_else(|| CodecError::BadValue("dataset size overflows".into()))?;
    if total > r.remaining() {
        return Err(CodecError::BadValue(format!(
            "dataset of {} x {} points exceeds remaining {} bytes",
            n,
            dim,
            r.remaining()
        )));
    }
    let mut xs = Vec::with_capacity(n);
    for _ in 0..n {
        let mut row = Vec::with_capacity(dim);
        for _ in 0..dim {
            row.push(r.get_f64()?);
        }
        xs.push(row);
    }
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        ys.push(r.get_f64()?);
    }
    Dataset::new(xs, ys).map_err(|e| CodecError::BadValue(format!("decoded dataset: {}", e)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_bool(true);
        w.put_str("emod");
        w.put_f64s(&[1.0, 2.5, -3.25]);
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "emod");
        assert_eq!(r.get_f64s().unwrap(), vec![1.0, 2.5, -3.25]);
        r.finish().unwrap();
    }

    #[test]
    fn eof_reports_what_was_expected() {
        let mut r = Reader::new(&[1, 2]);
        let err = r.get_u32().unwrap_err();
        match err {
            CodecError::UnexpectedEof {
                expected,
                needed,
                remaining,
            } => {
                assert_eq!(expected, "u32");
                assert_eq!(needed, 4);
                assert_eq!(remaining, 2);
            }
            other => panic!("unexpected error {:?}", other),
        }
    }

    #[test]
    fn implausible_length_prefix_rejected() {
        // Claims 1 billion f64s with 4 bytes of payload.
        let mut w = Writer::new();
        w.put_u32(1_000_000_000);
        w.put_u32(0);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_f64s(), Err(CodecError::BadValue(_))));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        r.get_u8().unwrap();
        assert_eq!(r.finish(), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn bad_bool_rejected() {
        let mut r = Reader::new(&[9]);
        assert!(matches!(r.get_bool(), Err(CodecError::BadValue(_))));
    }

    #[test]
    fn non_utf8_string_rejected() {
        let mut w = Writer::new();
        w.put_u32(2);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_str(), Err(CodecError::BadValue(_))));
    }

    #[test]
    fn dataset_round_trips_bit_identically() {
        let xs = vec![vec![0.25, -1.0], vec![1.0, 0.5], vec![-0.125, 0.0]];
        let ys = vec![10.0, 2.5, -7.0];
        let data = Dataset::new(xs, ys).unwrap();
        let mut w = Writer::new();
        encode_dataset(&mut w, &data);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = decode_dataset(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.points(), data.points());
        assert_eq!(back.responses(), data.responses());
    }

    #[test]
    fn truncated_dataset_rejected() {
        let data = Dataset::new(vec![vec![1.0], vec![2.0]], vec![3.0, 4.0]).unwrap();
        let mut w = Writer::new();
        encode_dataset(&mut w, &data);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..bytes.len() - 5]);
        assert!(decode_dataset(&mut r).is_err());
    }
}
