//! Empirical regression models (paper §4).
//!
//! Three families of models relate a response (execution time) to coded
//! predictor variables, exactly as evaluated in the paper:
//!
//! * [`LinearModel`] — global parametric least-squares fit with main effects
//!   and optional two-factor interactions (§4.1),
//! * [`Mars`] — multivariate adaptive regression splines: recursive
//!   partitioning with hinge (q = 1 spline) basis functions, pruned by
//!   generalized cross validation (§4.2),
//! * [`RbfNetwork`] — radial basis function network whose centers and radii
//!   come from a [`RegressionTree`] over the training data, weights solved by
//!   least squares, model size selected by BIC (§4.3–§4.4).
//!
//! All models consume *coded* design points (each coordinate in `[-1, 1]`,
//! see `emod_doe::ParameterSpace::encode`) and implement [`Regressor`].
//!
//! # Examples
//!
//! ```
//! use emod_models::{Dataset, Regressor, RbfConfig, RbfNetwork};
//!
//! // y = x0² (nonlinear: a linear model cannot fit it, an RBF can).
//! let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![-1.0 + i as f64 / 20.0]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[0]).collect();
//! let data = Dataset::new(xs, ys)?;
//! let rbf = RbfNetwork::fit(&data, RbfConfig::default())?;
//! assert!((rbf.predict(&[0.5]) - 0.25).abs() < 0.15);
//! # Ok::<(), emod_models::ModelError>(())
//! ```

#![warn(missing_docs)]

pub mod codec;
mod dataset;
pub mod explain;
mod linear;
mod mars;
pub mod metrics;
mod rbf;
mod tree;

pub use codec::{CodecError, CodecResult, Reader, Writer};
pub use dataset::Dataset;
pub use explain::{attribution_total, Attribution};
pub use linear::{LinearModel, LinearTerms};
pub use mars::{BasisFunction, Hinge, Mars, MarsConfig};
pub use rbf::{Kernel, RbfConfig, RbfNetwork};
pub use tree::{RegressionTree, TreeConfig, TreeLeaf};

use std::error::Error;
use std::fmt;

/// A fitted regression model mapping coded design points to a response.
///
/// The `Regressor` trait is object safe so heterogeneous model collections
/// (e.g. the paper's three-way comparison) can be stored together.
pub trait Regressor {
    /// Predicts the response at a coded design point.
    fn predict(&self, x: &[f64]) -> f64;

    /// Predicts the response at each of a batch of points.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Number of free parameters, used by complexity-penalizing criteria.
    fn parameter_count(&self) -> usize;
}

/// Error produced when fitting a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The dataset is empty or has inconsistent dimensions.
    InvalidDataset(String),
    /// The numerical solve failed (singular system and no fallback).
    NumericalFailure(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidDataset(msg) => write!(f, "invalid dataset: {}", msg),
            ModelError::NumericalFailure(msg) => write!(f, "numerical failure: {}", msg),
        }
    }
}

impl Error for ModelError {}

/// Convenience alias for results from this crate.
pub type Result<T> = std::result::Result<T, ModelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_error_display() {
        assert!(ModelError::InvalidDataset("empty".into())
            .to_string()
            .contains("empty"));
        assert!(ModelError::NumericalFailure("qr".into())
            .to_string()
            .contains("qr"));
    }

    #[test]
    fn regressor_is_object_safe() {
        fn _takes(_: &dyn Regressor) {}
    }
}
