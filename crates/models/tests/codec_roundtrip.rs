//! Property tests: serialized models predict bit-identically after reload.
//!
//! Each property fits a model on a randomly generated dataset, encodes it
//! with the zero-dependency codec, decodes the bytes, and asserts the decoded
//! model's predictions match the original's **to the bit** on fresh random
//! query points. Mutated byte streams must be rejected with a `CodecError`,
//! never a panic.

use emod_models::codec::{Reader, Writer};
use emod_models::{
    Dataset, LinearModel, LinearTerms, Mars, MarsConfig, RbfConfig, RbfNetwork, Regressor,
};
use proptest::prelude::*;

/// Builds a smooth but nonlinear response over `dim` coded variables.
fn make_dataset(dim: usize, n: usize, raw: &[f64]) -> Dataset {
    let xs: Vec<Vec<f64>> = raw.chunks_exact(dim).take(n).map(|c| c.to_vec()).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| {
            let mut y = 5.0;
            for (i, v) in x.iter().enumerate() {
                y += (i as f64 + 1.0) * v + 0.5 * v * v;
            }
            y + x[0] * x[dim - 1]
        })
        .collect();
    Dataset::new(xs, ys).unwrap()
}

fn query_points(dim: usize, raw: &[f64]) -> Vec<Vec<f64>> {
    raw.chunks_exact(dim).map(|c| c.to_vec()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn linear_round_trip_bit_identical(
        dim in 2usize..5,
        train in proptest::collection::vec(-1.0f64..1.0, 4 * 30),
        query in proptest::collection::vec(-1.0f64..1.0, 4 * 10),
    ) {
        let data = make_dataset(dim, 30, &train);
        for terms in [LinearTerms::MainEffects, LinearTerms::TwoFactor] {
            let model = LinearModel::fit(&data, terms).unwrap();
            let mut w = Writer::new();
            model.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let back = LinearModel::decode(&mut r).unwrap();
            r.finish().unwrap();
            for q in query_points(dim, &query) {
                prop_assert_eq!(model.predict(&q).to_bits(), back.predict(&q).to_bits());
            }
        }
    }

    #[test]
    fn mars_round_trip_bit_identical(
        dim in 2usize..5,
        train in proptest::collection::vec(-1.0f64..1.0, 4 * 40),
        query in proptest::collection::vec(-1.0f64..1.0, 4 * 10),
    ) {
        let data = make_dataset(dim, 40, &train);
        let cfg = MarsConfig { max_terms: 11, max_degree: 2, max_knots: 5, gcv_penalty: 3.0 };
        let model = Mars::fit(&data, cfg).unwrap();
        let mut w = Writer::new();
        model.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = Mars::decode(&mut r).unwrap();
        r.finish().unwrap();
        for q in query_points(dim, &query) {
            prop_assert_eq!(model.predict(&q).to_bits(), back.predict(&q).to_bits());
        }
    }

    #[test]
    fn rbf_round_trip_bit_identical(
        dim in 2usize..5,
        train in proptest::collection::vec(-1.0f64..1.0, 4 * 40),
        query in proptest::collection::vec(-1.0f64..1.0, 4 * 10),
    ) {
        let data = make_dataset(dim, 40, &train);
        let cfg = RbfConfig { center_candidates: vec![4, 8], ..RbfConfig::default() };
        let model = RbfNetwork::fit(&data, cfg).unwrap();
        let mut w = Writer::new();
        model.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = RbfNetwork::decode(&mut r).unwrap();
        r.finish().unwrap();
        for q in query_points(dim, &query) {
            prop_assert_eq!(model.predict(&q).to_bits(), back.predict(&q).to_bits());
        }
    }

    #[test]
    fn truncated_model_bytes_rejected_not_panicking(
        train in proptest::collection::vec(-1.0f64..1.0, 3 * 30),
        cut in 1usize..24,
    ) {
        let data = make_dataset(3, 30, &train);
        let model = LinearModel::fit(&data, LinearTerms::TwoFactor).unwrap();
        let mut w = Writer::new();
        model.encode(&mut w);
        let bytes = w.into_bytes();
        let keep = bytes.len().saturating_sub(cut);
        let mut r = Reader::new(&bytes[..keep]);
        // Either the decode fails outright or the frame check catches the
        // missing tail; it must never succeed on a shortened stream.
        if LinearModel::decode(&mut r).is_ok() {
            prop_assert!(r.finish().is_err());
        }
    }
}

#[test]
fn bad_tags_rejected() {
    let mut w = Writer::new();
    w.put_u8(9); // no such LinearTerms tag
    w.put_u32(3);
    w.put_f64s(&[0.0; 4]);
    w.put_f64(0.0);
    w.put_u64(10);
    let bytes = w.into_bytes();
    assert!(LinearModel::decode(&mut Reader::new(&bytes)).is_err());

    let mut w = Writer::new();
    w.put_u8(7); // no such Kernel tag
    let bytes = w.into_bytes();
    assert!(RbfNetwork::decode(&mut Reader::new(&bytes)).is_err());
}

#[test]
fn inconsistent_structure_rejected() {
    // A MARS stream whose hinge variable exceeds the declared dimension.
    let mut w = Writer::new();
    w.put_u32(2); // dim
    w.put_u32(1); // one basis function
    w.put_u32(1); // one hinge
    w.put_u32(5); // var 5 out of range for dim 2
    w.put_f64(0.0);
    w.put_u8(1);
    w.put_f64s(&[1.0]);
    w.put_f64(0.0);
    w.put_f64(0.0);
    let bytes = w.into_bytes();
    assert!(Mars::decode(&mut Reader::new(&bytes)).is_err());
}
