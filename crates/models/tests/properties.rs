//! Property-based tests for the model families.

use emod_models::{
    metrics, Dataset, LinearModel, LinearTerms, Mars, MarsConfig, RbfConfig, RbfNetwork,
    RegressionTree, Regressor, TreeConfig,
};
use proptest::prelude::*;

/// Random dataset: n points in d dims with responses from a noisy linear
/// function (coefficients derived from the seed).
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (10usize..40, 1usize..4, 0u64..1000).prop_map(|(n, d, seed)| {
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0 // [-1, 1)
        };
        let coefs: Vec<f64> = (0..d).map(|_| next() * 3.0).collect();
        for _ in 0..n {
            let x: Vec<f64> = (0..d).map(|_| next()).collect();
            let y: f64 = 5.0 + x.iter().zip(&coefs).map(|(a, b)| a * b).sum::<f64>() + next() * 0.1;
            xs.push(x);
            ys.push(y);
        }
        Dataset::new(xs, ys).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn linear_fit_never_produces_nan(data in dataset_strategy()) {
        let m = LinearModel::fit(&data, LinearTerms::MainEffects).unwrap();
        for p in data.points() {
            prop_assert!(m.predict(p).is_finite());
        }
        prop_assert!(m.training_sse().is_finite());
    }

    #[test]
    fn linear_training_sse_not_worse_than_constant_model(data in dataset_strategy()) {
        let m = LinearModel::fit(&data, LinearTerms::MainEffects).unwrap();
        let mean = data.response_mean();
        let const_preds = vec![mean; data.len()];
        let const_sse = metrics::sse(&const_preds, data.responses());
        prop_assert!(m.training_sse() <= const_sse + 1e-6);
    }

    #[test]
    fn tree_predictions_within_response_range(data in dataset_strategy()) {
        let t = RegressionTree::fit(&data, TreeConfig::default()).unwrap();
        let lo = data.responses().iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.responses().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for p in data.points() {
            let y = t.predict(p);
            prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9, "{} outside [{}, {}]", y, lo, hi);
        }
    }

    #[test]
    fn rbf_fits_are_finite_and_sized_by_bic(data in dataset_strategy()) {
        let net = RbfNetwork::fit(&data, RbfConfig::default()).unwrap();
        prop_assert!(net.unit_count() < data.len());
        for p in data.points() {
            prop_assert!(net.predict(p).is_finite());
        }
    }

    #[test]
    fn mars_training_error_not_worse_than_intercept(data in dataset_strategy()) {
        let cfg = MarsConfig { max_terms: 7, max_degree: 2, max_knots: 3, gcv_penalty: 3.0 };
        let m = Mars::fit(&data, cfg).unwrap();
        let mean = data.response_mean();
        let const_sse = metrics::sse(&vec![mean; data.len()], data.responses());
        prop_assert!(m.training_sse() <= const_sse + 1e-6);
        for p in data.points() {
            prop_assert!(m.predict(p).is_finite());
        }
    }

    #[test]
    fn metrics_are_scale_consistent(data in dataset_strategy(), k in 1.0f64..100.0) {
        // MAPE is invariant under scaling both predictions and actuals.
        let preds: Vec<f64> = data.responses().iter().map(|y| y * 1.05).collect();
        let m1 = metrics::mape(&preds, data.responses());
        let scaled_preds: Vec<f64> = preds.iter().map(|p| p * k).collect();
        let scaled_actual: Vec<f64> = data.responses().iter().map(|y| y * k).collect();
        let m2 = metrics::mape(&scaled_preds, &scaled_actual);
        prop_assert!((m1 - m2).abs() < 1e-9);
    }
}
