//! Multi-connection open-loop driver.
//!
//! Each connection is one thread owning one [`emod_serve::Client`] with
//! retries disabled (a retry would hide queueing and double-count load).
//! Drivers warm their connection, synchronize on a barrier, agree on one
//! shared epoch, and then walk their slice of the schedule: sleep until a
//! request's *intended* send time, write it, and time the reply against the
//! intended instant. When the server (or this driver's own backlog) falls
//! behind, the next requests go out late — and their recorded latency
//! includes exactly that lateness. That is the coordinated-omission guard:
//! a closed-loop harness would silently stop sending while stalled and
//! report only the rosy in-service time.
//!
//! The server parks one worker thread per live connection, so keep
//! [`LoadConfig::connections`] at or below the server's `--workers` count;
//! beyond that, surplus drivers starve and their requests surface as
//! transport errors after [`LoadConfig::timeout_s`].

use crate::schedule::{CommandKind, LoadConfig, ScheduledRequest};
use emod_serve::{Client, Json, RetryPolicy};
use emod_telemetry as telemetry;
use std::sync::{Arc, Barrier, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

/// How one request ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// `"ok": true` reply.
    Ok,
    /// The admission gate shed the request (`"code": "overloaded"`).
    Overloaded,
    /// Any other error reply; carries the machine-readable code.
    Error(String),
    /// No parseable reply at all (refused, reset, torn mid-reply).
    Transport,
}

impl Outcome {
    /// Whether the request got a successful reply.
    pub fn is_ok(&self) -> bool {
        matches!(self, Outcome::Ok)
    }
}

/// One completed (or failed) request's measurements.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Position in the schedule (schedule order == sort key).
    pub index: usize,
    /// The command issued.
    pub kind: CommandKind,
    /// Intended send offset from the epoch, microseconds.
    pub intended_us: u64,
    /// Open-loop latency: completion minus *intended* send time. Includes
    /// any lateness accumulated by a backlogged driver — the
    /// coordinated-omission-safe number.
    pub latency_us: f64,
    /// Closed-loop service time: completion minus the *actual* send. What a
    /// coordinated-omission-blind harness would have reported.
    pub service_us: f64,
    /// How the request ended.
    pub outcome: Outcome,
}

/// Everything a finished run produced.
#[derive(Debug)]
pub struct LoadResult {
    /// All samples, in schedule order.
    pub samples: Vec<Sample>,
    /// Wall seconds from the shared epoch to the last driver finishing.
    pub wall_s: f64,
}

fn classify(reply: &Result<Json, String>) -> Outcome {
    match reply {
        Ok(resp) if resp.get("ok") == Some(&Json::Bool(true)) => Outcome::Ok,
        Ok(resp) => {
            let code = resp
                .get("code")
                .and_then(Json::as_str)
                .unwrap_or("error")
                .to_string();
            if code == "overloaded" {
                Outcome::Overloaded
            } else {
                Outcome::Error(code)
            }
        }
        Err(_) => Outcome::Transport,
    }
}

fn drive(
    addr: &str,
    timeout: Duration,
    entries: Vec<(usize, ScheduledRequest)>,
    barrier: &Barrier,
    epoch: &OnceLock<Instant>,
) -> Vec<Sample> {
    let mut client = Client::new(addr)
        .with_policy(RetryPolicy::none())
        .with_timeout(timeout);
    // Warm the TCP connection (and fault in the server's artifact cache)
    // before the clock starts, so connection setup is not billed to the
    // first scheduled request.
    let _ = client.request("{\"cmd\":\"health\"}");
    if barrier.wait().is_leader() {
        epoch.set(Instant::now()).expect("epoch set once");
    }
    barrier.wait();
    let start = *epoch.get().expect("epoch set by leader");
    let mut samples = Vec::with_capacity(entries.len());
    for (index, req) in entries {
        let target = start + Duration::from_micros(req.at_us);
        let now = Instant::now();
        if now < target {
            thread::sleep(target - now);
        }
        let sent = Instant::now();
        let reply = client.request(&req.line);
        let done = Instant::now();
        let outcome = classify(&reply);
        let latency_us = done.duration_since(target).as_secs_f64() * 1e6;
        let service_us = done.duration_since(sent).as_secs_f64() * 1e6;
        telemetry::counter_add("load.requests", 1);
        telemetry::observe("load.latency_us", latency_us);
        telemetry::observe(
            &format!("load.latency_us.{}", req.kind.as_str()),
            latency_us,
        );
        telemetry::observe("load.service_us", service_us);
        match &outcome {
            Outcome::Ok => {}
            Outcome::Overloaded => telemetry::counter_add("load.overloaded", 1),
            Outcome::Error(_) | Outcome::Transport => telemetry::counter_add("load.errors", 1),
        }
        samples.push(Sample {
            index,
            kind: req.kind,
            intended_us: req.at_us,
            latency_us,
            service_us,
            outcome,
        });
    }
    samples
}

/// Runs `schedule` against `cfg.addr` with one driver thread per
/// connection and returns every sample in schedule order.
pub fn run(cfg: &LoadConfig, schedule: &[ScheduledRequest]) -> LoadResult {
    let conns = cfg.connections.max(1);
    let mut per_conn: Vec<Vec<(usize, ScheduledRequest)>> = vec![Vec::new(); conns];
    for (i, req) in schedule.iter().enumerate() {
        per_conn[req.conn % conns].push((i, req.clone()));
    }
    let barrier = Arc::new(Barrier::new(conns));
    let epoch = Arc::new(OnceLock::new());
    let run_start = Instant::now();
    let mut handles = Vec::with_capacity(conns);
    let timeout = Duration::from_secs_f64(cfg.timeout_s.clamp(0.05, 600.0));
    for entries in per_conn {
        let addr = cfg.addr.clone();
        let barrier = Arc::clone(&barrier);
        let epoch = Arc::clone(&epoch);
        handles.push(
            thread::Builder::new()
                .name("emod-load-driver".to_string())
                .spawn(move || drive(&addr, timeout, entries, &barrier, &epoch))
                .expect("spawn load driver"),
        );
    }
    let mut samples = Vec::with_capacity(schedule.len());
    for h in handles {
        samples.extend(h.join().expect("load driver panicked"));
    }
    let wall_s = epoch
        .get()
        .map(|e| e.elapsed().as_secs_f64())
        .unwrap_or_else(|| run_start.elapsed().as_secs_f64());
    samples.sort_by_key(|s| s.index);
    LoadResult { samples, wall_s }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_covers_the_reply_space() {
        let ok = Json::parse("{\"ok\":true}").unwrap();
        assert_eq!(classify(&Ok(ok)), Outcome::Ok);
        let shed = Json::parse("{\"ok\":false,\"code\":\"overloaded\"}").unwrap();
        assert_eq!(classify(&Ok(shed)), Outcome::Overloaded);
        let sem = Json::parse("{\"ok\":false,\"code\":\"bad_request\"}").unwrap();
        assert_eq!(classify(&Ok(sem)), Outcome::Error("bad_request".into()));
        let legacy = Json::parse("{\"ok\":false}").unwrap();
        assert_eq!(classify(&Ok(legacy)), Outcome::Error("error".into()));
        assert_eq!(classify(&Err("refused".into())), Outcome::Transport);
    }
}
