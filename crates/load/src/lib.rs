//! `emod-load`: an open-loop load generator for the `emod-serve`
//! prediction server.
//!
//! Three pieces (DESIGN.md §14):
//!
//! * **[`schedule`]** — deterministic request schedules: fixed-rate or
//!   Poisson arrival processes seeded through the offline `rand` stand-in,
//!   a weighted per-command mix (`predict`/`predict_batch`/`explain`/
//!   `tune`), and an FNV digest over the whole timeline so two runs can
//!   prove they issued identical load.
//! * **[`runner`]** — multi-connection drivers over the existing TCP
//!   [`emod_serve::Client`] (retries disabled). Latency is measured from
//!   each request's *intended* send time, so a stalled server inflates the
//!   recorded tail instead of silently pausing the generator — the
//!   coordinated-omission guard. The closed-loop service time is recorded
//!   alongside for comparison.
//! * **[`report`]** — exact p50/p90/p99/p99.9 from the raw samples (the
//!   `emod-telemetry` histograms get the same series for scraping),
//!   throughput and error/overload rates, a summary JSON whose
//!   deterministic prefix is byte-identical across server thread counts,
//!   and one-line `BENCH_HISTORY.jsonl` records for `emod-trace bench`.
//!
//! The `emod-load` binary wires these to a CLI with `EMOD_LOAD_*`
//! environment defaults (docs/CONFIG.md).

#![warn(missing_docs)]

pub mod report;
pub mod runner;
pub mod schedule;

pub use report::{append_history, build_report, history_line, quantiles_ms, Quantiles, Tally};
pub use runner::{run, LoadResult, Outcome, Sample};
pub use schedule::{
    build_schedule, schedule_digest, Arrival, CommandKind, CommandMix, LoadConfig, ScheduledRequest,
};
