//! Load-run summaries: a deterministic section CI can compare bytewise
//! across server thread counts, a `"measured"` section holding everything
//! timing-dependent, and a one-line flattened record for
//! `BENCH_HISTORY.jsonl` trend tracking.

use crate::runner::{LoadResult, Outcome, Sample};
use crate::schedule::{CommandKind, LoadConfig, ScheduledRequest};
use emod_serve::Json;
use std::io::Write;
use std::path::Path;

/// History-record schema version written by this crate.
pub const HISTORY_SCHEMA: u64 = 2;

/// Nearest-rank quantile over an ascending-sorted slice (the same
/// convention as `emod-trace`'s span aggregation): `None` when empty.
pub fn sorted_quantile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    Some(sorted[rank - 1])
}

/// p50/p90/p99/p99.9 plus mean/max of a latency series, in milliseconds.
/// Exact (computed from every raw sample), unlike the log-bucketed
/// `emod-telemetry` histograms that track the same series for scraping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantiles {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile — the tail the open-loop harness exists to see.
    pub p999: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Worst sample.
    pub max: f64,
}

/// Computes [`Quantiles`] from microsecond samples, reported in ms.
pub fn quantiles_ms(us: &[f64]) -> Option<Quantiles> {
    if us.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = us.to_vec();
    sorted.sort_by(f64::total_cmp);
    let q = |p: f64| sorted_quantile(&sorted, p).expect("non-empty") / 1000.0;
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64 / 1000.0;
    Some(Quantiles {
        p50: q(0.50),
        p90: q(0.90),
        p99: q(0.99),
        p999: q(0.999),
        mean,
        max: sorted.last().copied().expect("non-empty") / 1000.0,
    })
}

fn quantiles_json(q: Option<Quantiles>) -> Json {
    match q {
        None => Json::Null,
        Some(q) => Json::obj(vec![
            ("p50", q.p50.into()),
            ("p90", q.p90.into()),
            ("p99", q.p99.into()),
            ("p999", q.p999.into()),
            ("mean", q.mean.into()),
            ("max", q.max.into()),
        ]),
    }
}

/// Outcome tallies over a run's samples.
#[derive(Debug, Default, Clone, Copy)]
pub struct Tally {
    /// `"ok": true` replies.
    pub ok: u64,
    /// Admission-gate sheds.
    pub overloaded: u64,
    /// Error replies plus transport failures.
    pub errors: u64,
}

impl Tally {
    /// Counts outcomes across `samples`.
    pub fn of(samples: &[Sample]) -> Tally {
        let mut t = Tally::default();
        for s in samples {
            match &s.outcome {
                Outcome::Ok => t.ok += 1,
                Outcome::Overloaded => t.overloaded += 1,
                Outcome::Error(_) | Outcome::Transport => t.errors += 1,
            }
        }
        t
    }
}

fn per_command_counts(schedule: &[ScheduledRequest]) -> Vec<(String, Json)> {
    CommandKind::ALL
        .iter()
        .filter_map(|kind| {
            let n = schedule.iter().filter(|r| r.kind == *kind).count();
            (n > 0).then(|| (kind.as_str().to_string(), Json::from(n)))
        })
        .collect()
}

/// Builds the full summary document. Every field before `"measured"` is a
/// pure function of the config and schedule — byte-identical across runs
/// and across any server `EMOD_THREADS` — while `"measured"` holds the
/// wall-clock observables (throughput, latency quantiles, outcome counts).
pub fn build_report(
    cfg: &LoadConfig,
    schedule: &[ScheduledRequest],
    digest: &str,
    result: &LoadResult,
) -> Json {
    let tally = Tally::of(&result.samples);
    let total = result.samples.len() as f64;
    let latency: Vec<f64> = result.samples.iter().map(|s| s.latency_us).collect();
    let service: Vec<f64> = result.samples.iter().map(|s| s.service_us).collect();
    let rate = |n: u64| if total > 0.0 { n as f64 / total } else { 0.0 };
    let measured = Json::obj(vec![
        ("wall_s", result.wall_s.into()),
        ("throughput_rps", (total / result.wall_s.max(1e-9)).into()),
        ("completed", result.samples.len().into()),
        ("ok", tally.ok.into()),
        ("overloaded", tally.overloaded.into()),
        ("errors", tally.errors.into()),
        ("error_rate", rate(tally.errors).into()),
        ("overload_rate", rate(tally.overloaded).into()),
        ("latency_ms", quantiles_json(quantiles_ms(&latency))),
        ("service_ms", quantiles_json(quantiles_ms(&service))),
    ]);
    Json::obj(vec![
        ("schema", HISTORY_SCHEMA.into()),
        ("bench", cfg.bench_label.as_str().into()),
        ("arrivals", cfg.arrival.as_str().into()),
        ("rate_rps", cfg.rate.into()),
        ("duration_s", cfg.duration_s.into()),
        ("connections", cfg.connections.into()),
        ("seed", cfg.seed.into()),
        ("mix", cfg.mix.spec().into()),
        ("workload", cfg.workload.as_str().into()),
        ("batch", cfg.batch.into()),
        ("requests", schedule.len().into()),
        ("per_command", Json::Obj(per_command_counts(schedule))),
        ("schedule_digest", digest.into()),
        ("measured", measured),
    ])
}

/// Flattens a report into the single-line record `emod-trace bench`
/// consumes: run identity plus the trend metrics (throughput, p50/p99/
/// p99.9, error/overload rates).
pub fn history_line(report: &Json) -> String {
    let m = report.get("measured");
    let num = |v: Option<&Json>| v.and_then(Json::as_f64).unwrap_or(0.0);
    let lat = |k: &str| num(m.and_then(|m| m.get("latency_ms")).and_then(|l| l.get(k)));
    Json::obj(vec![
        ("schema", HISTORY_SCHEMA.into()),
        (
            "bench",
            report
                .get("bench")
                .and_then(Json::as_str)
                .unwrap_or("load")
                .into(),
        ),
        (
            "arrivals",
            report
                .get("arrivals")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .into(),
        ),
        ("rate_rps", num(report.get("rate_rps")).into()),
        ("connections", num(report.get("connections")).into()),
        ("seed", num(report.get("seed")).into()),
        ("requests", num(report.get("requests")).into()),
        ("wall_s", num(m.and_then(|m| m.get("wall_s"))).into()),
        (
            "throughput_rps",
            num(m.and_then(|m| m.get("throughput_rps"))).into(),
        ),
        ("p50_ms", lat("p50").into()),
        ("p90_ms", lat("p90").into()),
        ("p99_ms", lat("p99").into()),
        ("p999_ms", lat("p999").into()),
        (
            "error_rate",
            num(m.and_then(|m| m.get("error_rate"))).into(),
        ),
        (
            "overload_rate",
            num(m.and_then(|m| m.get("overload_rate"))).into(),
        ),
    ])
    .to_string()
}

/// Appends `line` (one JSON object) to the history file at `path`,
/// creating it if needed.
///
/// # Errors
///
/// Propagates file I/O failures as a message.
pub fn append_history(path: &Path, line: &str) -> Result<(), String> {
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open {:?}: {}", path, e))?;
    writeln!(f, "{}", line).map_err(|e| format!("cannot append to {:?}: {}", path, e))
}

/// Pretty-prints a report with one top-level key per line (stable order,
/// diff-friendly) — the `--out` file format.
pub fn render_pretty(report: &Json) -> String {
    match report {
        Json::Obj(pairs) => {
            let body: Vec<String> = pairs
                .iter()
                .map(|(k, v)| format!("  {}: {}", Json::Str(k.clone()), v))
                .collect();
            format!("{{\n{}\n}}\n", body.join(",\n"))
        }
        other => format!("{}\n", other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{build_schedule, schedule_digest, Arrival, CommandMix};

    fn fake_result(schedule: &[ScheduledRequest]) -> LoadResult {
        let samples = schedule
            .iter()
            .enumerate()
            .map(|(i, r)| Sample {
                index: i,
                kind: r.kind,
                intended_us: r.at_us,
                latency_us: 1000.0 + i as f64,
                service_us: 500.0,
                outcome: if i % 10 == 9 {
                    Outcome::Overloaded
                } else {
                    Outcome::Ok
                },
            })
            .collect();
        LoadResult {
            samples,
            wall_s: 1.0,
        }
    }

    fn cfg() -> LoadConfig {
        LoadConfig {
            rate: 50.0,
            duration_s: 1.0,
            seed: 7,
            arrival: Arrival::Fixed,
            mix: CommandMix::parse("predict=3,explain=1").unwrap(),
            ..LoadConfig::default()
        }
    }

    #[test]
    fn quantiles_are_exact_nearest_rank() {
        let us: Vec<f64> = (1..=1000).map(|i| i as f64 * 1000.0).collect();
        let q = quantiles_ms(&us).unwrap();
        assert_eq!(q.p50, 500.0);
        assert_eq!(q.p90, 900.0);
        assert_eq!(q.p99, 990.0);
        assert_eq!(q.p999, 999.0);
        assert_eq!(q.max, 1000.0);
        assert!(quantiles_ms(&[]).is_none());
    }

    #[test]
    fn deterministic_section_is_stable_and_measured_is_separate() {
        let c = cfg();
        let s = build_schedule(&c);
        let digest = schedule_digest(&s);
        let a = build_report(&c, &s, &digest, &fake_result(&s));
        let b = build_report(&c, &s, &digest, &fake_result(&s));
        assert_eq!(a.to_string(), b.to_string());
        // "measured" must be the last top-level key so a CI filter can strip
        // it and compare the rest bytewise.
        match &a {
            Json::Obj(pairs) => assert_eq!(pairs.last().unwrap().0, "measured"),
            _ => panic!("report must be an object"),
        }
        assert!(a.get("schedule_digest").is_some());
        assert_eq!(a.get("bench").and_then(Json::as_str), Some("load"));
    }

    #[test]
    fn history_line_is_one_parseable_object_with_trend_metrics() {
        let c = cfg();
        let s = build_schedule(&c);
        let report = build_report(&c, &s, &schedule_digest(&s), &fake_result(&s));
        let line = history_line(&report);
        assert!(!line.contains('\n'));
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("bench").and_then(Json::as_str), Some("load"));
        for key in ["throughput_rps", "p99_ms", "p999_ms", "error_rate"] {
            assert!(v.get(key).and_then(Json::as_f64).is_some(), "{}", key);
        }
    }

    #[test]
    fn append_history_appends_lines() {
        let dir = std::env::temp_dir().join(format!("emod-load-hist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_HISTORY.jsonl");
        append_history(&path, "{\"a\":1}").unwrap();
        append_history(&path, "{\"a\":2}").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
