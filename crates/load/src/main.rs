//! `emod-load` — open-loop load generator CLI.
//!
//! ```text
//! emod-load [--addr HOST:PORT] [--rate RPS] [--duration S] [--conns N]
//!           [--seed N] [--arrivals fixed|poisson] [--mix SPEC]
//!           [--workload W] [--batch N] [--timeout S] [--out FILE]
//!           [--history FILE] [--print-schedule] [--max-error-rate X]
//!           [--bench-label NAME]
//! ```
//!
//! Every knob falls back to an `EMOD_LOAD_*` environment variable (see
//! docs/CONFIG.md), so CI jobs can pin a whole scenario in the
//! environment and still override per invocation. `--print-schedule`
//! emits the deterministic schedule (and its digest) without touching the
//! network — the determinism-smoke path. `--max-error-rate X` exits 1
//! when the measured error rate exceeds `X`. `--bench-label NAME` stamps
//! reports/history lines with a scenario-specific `"bench"` label so runs
//! like the CI canary-smoke load trend in their own series.

use emod_load::{
    append_history, build_report, build_schedule, history_line, run, schedule_digest, Arrival,
    CommandMix, LoadConfig,
};
use emod_serve::Json;
use std::path::PathBuf;

struct Args {
    cfg: LoadConfig,
    out: Option<PathBuf>,
    history: Option<PathBuf>,
    print_schedule: bool,
    max_error_rate: Option<f64>,
}

fn die(msg: &str) -> ! {
    eprintln!("emod-load: {}", msg);
    std::process::exit(2);
}

fn env_default(name: &str) -> Option<String> {
    std::env::var(name).ok().filter(|s| !s.trim().is_empty())
}

fn parse_f64(s: &str, name: &str) -> f64 {
    s.trim()
        .parse()
        .unwrap_or_else(|_| die(&format!("{} needs a number, got {:?}", name, s)))
}

fn parse_usize(s: &str, name: &str) -> usize {
    s.trim()
        .parse()
        .unwrap_or_else(|_| die(&format!("{} needs a positive integer, got {:?}", name, s)))
}

fn parse_u64(s: &str, name: &str) -> u64 {
    s.trim()
        .parse()
        .unwrap_or_else(|_| die(&format!("{} needs an integer, got {:?}", name, s)))
}

fn usage() -> ! {
    println!(
        "usage: emod-load [--addr HOST:PORT] [--rate RPS] [--duration S] [--conns N]\n\
         \x20                [--seed N] [--arrivals fixed|poisson] [--mix SPEC]\n\
         \x20                [--workload W] [--batch N] [--timeout S] [--out FILE]\n\
         \x20                [--history FILE] [--print-schedule] [--max-error-rate X]\n\
         \x20                [--bench-label NAME]\n\
         \n\
         Environment defaults: EMOD_LOAD_ADDR, EMOD_LOAD_RATE, EMOD_LOAD_DURATION_S,\n\
         EMOD_LOAD_CONNS, EMOD_LOAD_SEED, EMOD_LOAD_ARRIVALS, EMOD_LOAD_MIX."
    );
    std::process::exit(0);
}

fn parse_args() -> Args {
    let mut cfg = LoadConfig::default();
    if let Some(v) = env_default("EMOD_LOAD_ADDR") {
        cfg.addr = v;
    }
    if let Some(v) = env_default("EMOD_LOAD_RATE") {
        cfg.rate = parse_f64(&v, "EMOD_LOAD_RATE");
    }
    if let Some(v) = env_default("EMOD_LOAD_DURATION_S") {
        cfg.duration_s = parse_f64(&v, "EMOD_LOAD_DURATION_S");
    }
    if let Some(v) = env_default("EMOD_LOAD_CONNS") {
        cfg.connections = parse_usize(&v, "EMOD_LOAD_CONNS");
    }
    if let Some(v) = env_default("EMOD_LOAD_SEED") {
        cfg.seed = parse_u64(&v, "EMOD_LOAD_SEED");
    }
    if let Some(v) = env_default("EMOD_LOAD_ARRIVALS") {
        cfg.arrival = Arrival::parse(&v).unwrap_or_else(|e| die(&e));
    }
    if let Some(v) = env_default("EMOD_LOAD_MIX") {
        cfg.mix = CommandMix::parse(&v).unwrap_or_else(|e| die(&e));
    }
    let mut args = Args {
        cfg,
        out: None,
        history: None,
        print_schedule: false,
        max_error_rate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{} needs a value", name)))
        };
        match arg.as_str() {
            "--addr" => args.cfg.addr = value("--addr"),
            "--rate" => args.cfg.rate = parse_f64(&value("--rate"), "--rate"),
            "--duration" => args.cfg.duration_s = parse_f64(&value("--duration"), "--duration"),
            "--conns" => args.cfg.connections = parse_usize(&value("--conns"), "--conns"),
            "--seed" => args.cfg.seed = parse_u64(&value("--seed"), "--seed"),
            "--arrivals" => {
                args.cfg.arrival = Arrival::parse(&value("--arrivals")).unwrap_or_else(|e| die(&e))
            }
            "--mix" => {
                args.cfg.mix = CommandMix::parse(&value("--mix")).unwrap_or_else(|e| die(&e))
            }
            "--workload" => args.cfg.workload = value("--workload"),
            "--batch" => args.cfg.batch = parse_usize(&value("--batch"), "--batch"),
            "--timeout" => args.cfg.timeout_s = parse_f64(&value("--timeout"), "--timeout"),
            "--bench-label" => {
                let v = value("--bench-label");
                if v.trim().is_empty() {
                    die("--bench-label needs a non-empty name");
                }
                args.cfg.bench_label = v;
            }
            "--out" => args.out = Some(PathBuf::from(value("--out"))),
            "--history" => args.history = Some(PathBuf::from(value("--history"))),
            "--print-schedule" => args.print_schedule = true,
            "--max-error-rate" => {
                args.max_error_rate =
                    Some(parse_f64(&value("--max-error-rate"), "--max-error-rate"))
            }
            "--help" | "-h" => usage(),
            other => die(&format!("unknown argument {:?} (try --help)", other)),
        }
    }
    if args.cfg.rate <= 0.0 {
        die("--rate must be positive");
    }
    if args.cfg.duration_s <= 0.0 {
        die("--duration must be positive");
    }
    args.cfg.connections = args.cfg.connections.max(1);
    args
}

fn main() {
    let args = parse_args();
    emod_telemetry::init_from_env();
    let schedule = build_schedule(&args.cfg);
    let digest = schedule_digest(&schedule);
    if schedule.is_empty() {
        die("schedule is empty (rate * duration rounds to zero requests)");
    }
    if args.print_schedule {
        for r in &schedule {
            println!("{}\t{}\t{}", r.at_us, r.conn, r.line);
        }
        println!("# requests={} digest={}", schedule.len(), digest);
        return;
    }
    eprintln!(
        "emod-load: {} requests over {:.1}s ({} {} arrivals/s, {} connection(s), seed {}) -> {}",
        schedule.len(),
        args.cfg.duration_s,
        args.cfg.rate,
        args.cfg.arrival.as_str(),
        args.cfg.connections,
        args.cfg.seed,
        args.cfg.addr
    );
    let result = run(&args.cfg, &schedule);
    let report = build_report(&args.cfg, &schedule, &digest, &result);
    let measured = report.get("measured").expect("report has measured section");
    let lat = measured.get("latency_ms");
    let q = |k: &str| {
        lat.and_then(|l| l.get(k))
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN)
    };
    let num = |k: &str| measured.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
    eprintln!(
        "emod-load: {:.1} req/s  p50 {:.2}ms  p90 {:.2}ms  p99 {:.2}ms  p99.9 {:.2}ms  \
         errors {:.1}%  overload {:.1}%",
        num("throughput_rps"),
        q("p50"),
        q("p90"),
        q("p99"),
        q("p999"),
        num("error_rate") * 100.0,
        num("overload_rate") * 100.0,
    );
    if let Some(path) = &args.out {
        let text = emod_load::report::render_pretty(&report);
        std::fs::write(path, text)
            .unwrap_or_else(|e| die(&format!("cannot write {:?}: {}", path, e)));
        eprintln!("emod-load: wrote {}", path.display());
    } else {
        println!("{}", report);
    }
    if let Some(path) = &args.history {
        append_history(path, &history_line(&report)).unwrap_or_else(|e| die(&e));
        eprintln!("emod-load: appended to {}", path.display());
    }
    if let Some(cap) = args.max_error_rate {
        let rate = num("error_rate");
        if rate > cap {
            eprintln!(
                "emod-load: FAIL error rate {:.3} exceeds --max-error-rate {:.3}",
                rate, cap
            );
            std::process::exit(1);
        }
    }
}
