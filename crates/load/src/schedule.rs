//! Deterministic open-loop request schedules.
//!
//! A schedule is the full list of requests a load run will issue, computed
//! up front from the seed alone: for every request the *intended* send time
//! (an offset from the run's start), the connection that will carry it, and
//! the complete request line. Nothing about the schedule depends on wall
//! clock, `EMOD_THREADS`, or how fast the server answers — two runs with
//! the same [`LoadConfig`] produce byte-identical schedules, which is what
//! lets CI compare load summaries across server thread counts.
//!
//! Arrival processes: `fixed` spaces requests exactly `1/rate` apart;
//! `poisson` draws exponential inter-arrival gaps (inverse-transform
//! sampling on the offline `rand` stand-in), the standard open-system
//! model of independent clients.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How intended send times are spaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// Deterministic spacing: request `i` is sent at exactly `i / rate`.
    Fixed,
    /// Exponential inter-arrival gaps with mean `1 / rate` (a Poisson
    /// process), seeded and therefore reproducible.
    Poisson,
}

impl Arrival {
    /// Parses `"fixed"` / `"poisson"`.
    ///
    /// # Errors
    ///
    /// Returns a usage message for anything else.
    pub fn parse(s: &str) -> Result<Arrival, String> {
        match s {
            "fixed" => Ok(Arrival::Fixed),
            "poisson" => Ok(Arrival::Poisson),
            other => Err(format!(
                "unknown arrival process {:?} (fixed|poisson)",
                other
            )),
        }
    }

    /// The canonical spelling (`"fixed"` / `"poisson"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Arrival::Fixed => "fixed",
            Arrival::Poisson => "poisson",
        }
    }
}

/// The serving commands the generator can issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandKind {
    /// Single-point `predict` (includes quality scoring server-side).
    Predict,
    /// `predict_batch` over [`LoadConfig::batch`] points (throughput path).
    PredictBatch,
    /// `explain` — prediction plus term attributions.
    Explain,
    /// `tune` — a GA search per request; by far the heaviest command.
    Tune,
}

impl CommandKind {
    /// All kinds, in mix-spec order.
    pub const ALL: [CommandKind; 4] = [
        CommandKind::Predict,
        CommandKind::PredictBatch,
        CommandKind::Explain,
        CommandKind::Tune,
    ];

    /// The wire command name.
    pub fn as_str(&self) -> &'static str {
        match self {
            CommandKind::Predict => "predict",
            CommandKind::PredictBatch => "predict_batch",
            CommandKind::Explain => "explain",
            CommandKind::Tune => "tune",
        }
    }

    fn parse(s: &str) -> Option<CommandKind> {
        CommandKind::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

/// A weighted per-command mix, e.g. `predict=8,predict_batch=1,explain=1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandMix {
    weights: Vec<(CommandKind, u32)>,
}

impl Default for CommandMix {
    /// Pure single-point `predict` traffic.
    fn default() -> CommandMix {
        CommandMix {
            weights: vec![(CommandKind::Predict, 1)],
        }
    }
}

impl CommandMix {
    /// Parses a comma-separated `command=weight` spec. A bare command name
    /// means weight 1; zero weights drop the command from the mix.
    ///
    /// # Errors
    ///
    /// Unknown commands, malformed weights, and an all-zero mix.
    pub fn parse(spec: &str) -> Result<CommandMix, String> {
        let mut weights = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (name, weight) = match part.split_once('=') {
                Some((n, w)) => {
                    let w: u32 = w
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad weight in mix entry {:?}", part))?;
                    (n.trim(), w)
                }
                None => (part, 1),
            };
            let kind = CommandKind::parse(name).ok_or_else(|| {
                format!(
                    "unknown command {:?} in mix (predict|predict_batch|explain|tune)",
                    name
                )
            })?;
            if weight > 0 {
                weights.push((kind, weight));
            }
        }
        if weights.is_empty() {
            return Err("mix has no commands with non-zero weight".to_string());
        }
        Ok(CommandMix { weights })
    }

    /// The canonical spec string, in the order given.
    pub fn spec(&self) -> String {
        self.weights
            .iter()
            .map(|(k, w)| format!("{}={}", k.as_str(), w))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Draws one command, consuming one uniform draw from `rng`.
    fn draw(&self, rng: &mut StdRng) -> CommandKind {
        let total: u32 = self.weights.iter().map(|(_, w)| w).sum();
        let mut pick = rng.gen_range(0..total);
        for (kind, w) in &self.weights {
            if pick < *w {
                return *kind;
            }
            pick -= w;
        }
        self.weights.last().expect("non-empty mix").0
    }
}

/// Everything a load run needs; the schedule is a pure function of this.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Target arrival rate, requests per second.
    pub rate: f64,
    /// Length of the arrival window in seconds; requests intended past it
    /// are not generated.
    pub duration_s: f64,
    /// Concurrent client connections (each is one driver thread).
    pub connections: usize,
    /// Seed for the arrival process and per-request draws.
    pub seed: u64,
    /// Arrival process.
    pub arrival: Arrival,
    /// Per-command weights.
    pub mix: CommandMix,
    /// Workload selector substring sent with every request.
    pub workload: String,
    /// Points per `predict_batch` request.
    pub batch: usize,
    /// Per-request socket timeout, seconds. The server parks one worker per
    /// live connection, so a run with more connections than server workers
    /// starves some drivers — the timeout turns that into transport errors
    /// in the report instead of a wedged run. Not part of the schedule.
    pub timeout_s: f64,
    /// The `"bench"` label stamped on reports and history lines
    /// (`--bench-label`). Distinct labels keep scenario runs — e.g. the CI
    /// canary-smoke load — in their own `emod-trace bench` series instead
    /// of polluting the default `load` baseline. Not part of the schedule.
    pub bench_label: String,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: emod_serve::server::DEFAULT_ADDR.to_string(),
            rate: 100.0,
            duration_s: 2.0,
            connections: 2,
            seed: 1,
            arrival: Arrival::Poisson,
            mix: CommandMix::default(),
            workload: "gzip".to_string(),
            batch: 8,
            timeout_s: 30.0,
            bench_label: "load".to_string(),
        }
    }
}

/// One scheduled request: when it is *supposed* to leave, on which
/// connection, and the exact line that will be written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledRequest {
    /// Intended send time as microseconds after the run starts. Latency is
    /// measured from this instant, not from the actual send — the
    /// coordinated-omission guard (DESIGN.md §14).
    pub at_us: u64,
    /// Index of the connection/driver that carries this request.
    pub conn: usize,
    /// Which command the request issues.
    pub kind: CommandKind,
    /// The full request line (newline excluded).
    pub line: String,
}

/// Shorthand query points the generator cycles through; every one is a
/// valid `"<opt>@<platform>"` the server expands itself, so request lines
/// stay small and model-dimension-agnostic.
const POINT_PRESETS: [&str; 6] = [
    "o0@constrained",
    "o2@typical",
    "o3@aggressive",
    "o2@constrained",
    "o3@typical",
    "o0@aggressive",
];

const PLATFORMS: [&str; 3] = ["constrained", "typical", "aggressive"];

/// Hard cap on schedule length so an absurd `rate * duration` cannot eat
/// the heap; the builder truncates (and the caller can see it did from the
/// schedule length).
pub const MAX_SCHEDULED: usize = 1_000_000;

fn request_line(cfg: &LoadConfig, kind: CommandKind, rng: &mut StdRng) -> String {
    use emod_serve::Json;
    let preset = |rng: &mut StdRng| POINT_PRESETS[rng.gen_range(0..POINT_PRESETS.len())];
    let req = match kind {
        CommandKind::Predict => Json::obj(vec![
            ("cmd", "predict".into()),
            ("workload", cfg.workload.as_str().into()),
            ("point", preset(rng).into()),
        ]),
        CommandKind::PredictBatch => {
            let points: Vec<Json> = (0..cfg.batch.max(1)).map(|_| preset(rng).into()).collect();
            Json::obj(vec![
                ("cmd", "predict_batch".into()),
                ("workload", cfg.workload.as_str().into()),
                ("points", Json::Arr(points)),
            ])
        }
        CommandKind::Explain => Json::obj(vec![
            ("cmd", "explain".into()),
            ("workload", cfg.workload.as_str().into()),
            ("point", preset(rng).into()),
        ]),
        CommandKind::Tune => Json::obj(vec![
            ("cmd", "tune".into()),
            ("workload", cfg.workload.as_str().into()),
            (
                "platform",
                PLATFORMS[rng.gen_range(0..PLATFORMS.len())].into(),
            ),
            ("seed", Json::from(rng.gen_range(0u64..1024))),
        ]),
    };
    req.to_string()
}

/// Builds the full request schedule for `cfg` — a pure function of the
/// config (no clocks, no environment), sorted by intended send time, with
/// connections assigned round-robin so every driver sees the same timeline
/// regardless of how many worker threads the *server* runs.
pub fn build_schedule(cfg: &LoadConfig) -> Vec<ScheduledRequest> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut schedule = Vec::new();
    let rate = cfg.rate.max(1e-9);
    let conns = cfg.connections.max(1);
    let horizon_us = (cfg.duration_s.max(0.0) * 1e6) as u64;
    let mut t_us = 0.0f64;
    let mut i = 0usize;
    loop {
        let at_us = match cfg.arrival {
            Arrival::Fixed => (i as f64 / rate * 1e6) as u64,
            Arrival::Poisson => {
                if i > 0 {
                    // Inverse-transform sampling: gap = -ln(1-U)/rate. The
                    // stand-in's uniform draw is in [0,1), so 1-U is in
                    // (0,1] and the log is finite.
                    let u: f64 = rng.gen();
                    t_us += -(1.0 - u).ln() / rate * 1e6;
                }
                t_us as u64
            }
        };
        if at_us >= horizon_us || schedule.len() >= MAX_SCHEDULED {
            break;
        }
        let kind = cfg.mix.draw(&mut rng);
        let line = request_line(cfg, kind, &mut rng);
        schedule.push(ScheduledRequest {
            at_us,
            conn: i % conns,
            kind,
            line,
        });
        i += 1;
    }
    schedule
}

/// FNV-1a 64 digest of the full schedule (intended times, connection
/// assignment, request bytes), hex-encoded. Two runs agree on the digest
/// iff they will send the same requests at the same intended times — the
/// value CI compares across server thread counts.
pub fn schedule_digest(schedule: &[ScheduledRequest]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    };
    for r in schedule {
        eat(&r.at_us.to_le_bytes());
        eat(&(r.conn as u64).to_le_bytes());
        eat(r.line.as_bytes());
        eat(b"\n");
    }
    format!("fnv1a:{:016x}", hash)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LoadConfig {
        LoadConfig {
            rate: 500.0,
            duration_s: 1.0,
            connections: 3,
            seed: 42,
            arrival: Arrival::Poisson,
            mix: CommandMix::parse("predict=8,predict_batch=2,explain=1,tune=1").unwrap(),
            ..LoadConfig::default()
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = build_schedule(&cfg());
        let b = build_schedule(&cfg());
        assert_eq!(a, b);
        assert_eq!(schedule_digest(&a), schedule_digest(&b));
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seed_different_schedule() {
        let a = build_schedule(&cfg());
        let mut c = cfg();
        c.seed = 43;
        let b = build_schedule(&c);
        assert_ne!(schedule_digest(&a), schedule_digest(&b));
    }

    #[test]
    fn schedule_is_independent_of_thread_env() {
        // The determinism contract: EMOD_THREADS must not influence the
        // intended-send timeline. The builder never reads the environment,
        // but pin it with a test so a refactor cannot regress silently.
        std::env::set_var("EMOD_THREADS", "1");
        let a = build_schedule(&cfg());
        std::env::set_var("EMOD_THREADS", "8");
        let b = build_schedule(&cfg());
        std::env::remove_var("EMOD_THREADS");
        assert_eq!(a, b);
    }

    #[test]
    fn fixed_arrivals_are_evenly_spaced() {
        let mut c = cfg();
        c.arrival = Arrival::Fixed;
        c.rate = 1000.0;
        c.duration_s = 0.1;
        let s = build_schedule(&c);
        assert_eq!(s.len(), 100);
        for (i, r) in s.iter().enumerate() {
            assert_eq!(r.at_us, i as u64 * 1000);
            assert_eq!(r.conn, i % 3);
        }
    }

    #[test]
    fn poisson_arrivals_are_monotone_and_roughly_rate() {
        let s = build_schedule(&cfg());
        for w in s.windows(2) {
            assert!(w[0].at_us <= w[1].at_us);
        }
        // 500 req/s over 1 s: the count is Poisson(500), so ±40% is a
        // generous but non-vacuous band for a pinned seed.
        assert!(s.len() > 300 && s.len() < 700, "{} requests", s.len());
    }

    #[test]
    fn mix_parses_and_draws_every_command() {
        let s = build_schedule(&cfg());
        for kind in CommandKind::ALL {
            assert!(
                s.iter().any(|r| r.kind == kind),
                "{} never drawn",
                kind.as_str()
            );
        }
        assert!(CommandMix::parse("predict=0").is_err());
        assert!(CommandMix::parse("frobnicate=1").is_err());
        assert!(CommandMix::parse("predict=x").is_err());
        assert_eq!(CommandMix::parse("predict").unwrap().spec(), "predict=1");
    }

    #[test]
    fn request_lines_are_valid_json_with_the_right_cmd() {
        for r in build_schedule(&cfg()) {
            let v = emod_serve::Json::parse(&r.line).expect("schedule line parses");
            assert_eq!(
                v.get("cmd").and_then(emod_serve::Json::as_str),
                Some(r.kind.as_str())
            );
        }
    }
}
