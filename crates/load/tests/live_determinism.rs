//! The deterministic prefix of a load summary must be byte-identical
//! across repeated runs and across server worker counts — the property the
//! CI `load-smoke` job compares between `EMOD_THREADS=1` and `=8` servers.

use emod_load::{
    build_report, build_schedule, run, schedule_digest, Arrival, CommandMix, LoadConfig,
};
use emod_serve::registry::ModelRegistry;
use emod_serve::{Json, Server};
use std::sync::Arc;

/// The report with its `"measured"` (wall-clock) section removed.
fn deterministic_prefix(report: &Json) -> String {
    match report {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .filter(|(k, _)| k != "measured")
                .cloned()
                .collect(),
        )
        .to_string(),
        other => other.to_string(),
    }
}

fn run_against(workers: usize, cfg_template: &LoadConfig) -> (String, usize) {
    let dir =
        std::env::temp_dir().join(format!("emod-load-det-{}-{}", workers, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Arc::new(ModelRegistry::open(&dir).unwrap());
    let server = Server::bind(Arc::clone(&registry), "127.0.0.1:0", workers).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let shutdown = server.shutdown_handle();
    let handle = std::thread::spawn(move || server.run().unwrap());

    let cfg = LoadConfig {
        addr,
        ..cfg_template.clone()
    };
    let schedule = build_schedule(&cfg);
    let digest = schedule_digest(&schedule);
    let result = run(&cfg, &schedule);
    shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    let report = build_report(&cfg, &schedule, &digest, &result);
    assert_eq!(
        result.samples.len(),
        schedule.len(),
        "every request sampled"
    );
    (deterministic_prefix(&report), schedule.len())
}

#[test]
fn summary_prefix_is_identical_across_server_worker_counts() {
    let template = LoadConfig {
        rate: 200.0,
        duration_s: 0.5,
        connections: 2,
        seed: 11,
        arrival: Arrival::Poisson,
        mix: CommandMix::parse("predict=4,predict_batch=1").unwrap(),
        ..LoadConfig::default()
    };
    // Both pools can serve the template's 2 persistent connections (the
    // server parks one worker per connection); the point is that the pool
    // size leaves no trace in the deterministic summary prefix.
    let (prefix_small_pool, n1) = run_against(2, &template);
    let (prefix_large_pool, n8) = run_against(8, &template);
    assert_eq!(n1, n8);
    assert!(n1 > 50, "expected a non-trivial schedule, got {}", n1);
    assert_eq!(
        prefix_small_pool, prefix_large_pool,
        "deterministic summary prefix must not depend on server workers"
    );
}
