//! Coordinated-omission correctness against a fault-injected slow server.
//!
//! A `delay` fault at `serve.handle` makes every request take ~20 ms of
//! handler time. At 100 req/s on one connection the offered load exceeds
//! the ~50 req/s service capacity, so the driver falls behind its intended
//! timeline and a backlog builds. The open-loop latency (measured from the
//! *intended* send time) must see that backlog in its tail, while the
//! closed-loop service time (measured from the actual send) stays near the
//! injected delay — the exact gap coordinated omission hides.
//!
//! Lives in its own integration-test binary because the fault plan is
//! process-global.

use emod_load::{build_schedule, quantiles_ms, run, Arrival, CommandMix, LoadConfig};
use emod_serve::registry::ModelRegistry;
use emod_serve::Server;
use std::sync::Arc;

#[test]
fn open_loop_p99_exceeds_closed_loop_p99_under_saturation() {
    let dir = std::env::temp_dir().join(format!("emod-load-co-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Arc::new(ModelRegistry::open(&dir).unwrap());
    let server = Server::bind(Arc::clone(&registry), "127.0.0.1:0", 2).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let shutdown = server.shutdown_handle();
    let handle = std::thread::spawn(move || server.run().unwrap());

    // Install the slow-handler fault *after* bind so the server is up, and
    // before any load request reaches `serve.handle`.
    let plan = emod_faults::FaultPlan::parse("delay:serve.handle:20ms:always", 0).unwrap();
    emod_faults::install(plan);

    let cfg = LoadConfig {
        addr,
        rate: 100.0,
        duration_s: 1.0,
        connections: 1,
        seed: 7,
        arrival: Arrival::Fixed,
        mix: CommandMix::default(),
        ..LoadConfig::default()
    };
    let schedule = build_schedule(&cfg);
    assert_eq!(schedule.len(), 100);
    let result = run(&cfg, &schedule);
    emod_faults::clear();

    shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(result.samples.len(), 100);
    let open: Vec<f64> = result.samples.iter().map(|s| s.latency_us).collect();
    let closed: Vec<f64> = result.samples.iter().map(|s| s.service_us).collect();
    let open_q = quantiles_ms(&open).unwrap();
    let closed_q = quantiles_ms(&closed).unwrap();

    // The strict inequality the satellite demands: the open-loop tail must
    // be worse than the closed-loop tail of the very same run.
    assert!(
        open_q.p99 > closed_q.p99,
        "open-loop p99 {:.2}ms must exceed closed-loop p99 {:.2}ms",
        open_q.p99,
        closed_q.p99
    );
    // And not marginally: the last scheduled request is intended at ~1s but
    // cannot complete before ~2s of serialized 20ms handlers, so the
    // open-loop tail carries hundreds of ms of backlog the closed-loop
    // number never sees.
    assert!(
        open_q.p99 > 2.0 * closed_q.p99,
        "open-loop p99 {:.2}ms should dwarf closed-loop p99 {:.2}ms under saturation",
        open_q.p99,
        closed_q.p99
    );
    assert!(
        open_q.p99 > 100.0,
        "open-loop p99 {:.2}ms should show the queueing backlog",
        open_q.p99
    );
    // Every sample's open-loop latency is at least its service time by
    // construction (intended <= actual send).
    for s in &result.samples {
        assert!(
            s.latency_us >= s.service_us - 1.0,
            "open-loop latency {:.0}us below service {:.0}us",
            s.latency_us,
            s.service_us
        );
    }
}
