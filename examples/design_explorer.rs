//! Why designed experiments? D-optimal vs random vs Latin hypercube.
//!
//! The paper selects measurement points with D-optimal designs (§3) because
//! the determinant of the information matrix controls model confidence.
//! This example quantifies that on the real 25-parameter space: it compares
//! `log det(X'X)` and the test error of models trained on equal-size
//! designs of each kind.
//!
//! ```text
//! cargo run --release --example design_explorer
//! ```

use emod::core::vars::design_space;
use emod::doe::{lhs, DOptimal, ModelSpec};
use emod::models::{metrics, Dataset, LinearModel, LinearTerms, Regressor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A synthetic-but-structured response standing in for the simulator, so
/// the comparison runs instantly: a noisy linear+interaction surface.
fn response(coded: &[f64]) -> f64 {
    let mut y = 100.0;
    for (i, &v) in coded.iter().enumerate() {
        y += (i as f64 % 7.0 - 3.0) * v;
    }
    y += 4.0 * coded[1] * coded[16] - 3.0 * coded[0] * coded[14];
    // Deterministic pseudo-noise.
    let h: f64 = coded
        .iter()
        .enumerate()
        .map(|(i, v)| v * (i as f64 + 0.7))
        .sum();
    y + (h * 13.37).sin() * 0.5
}

fn main() {
    let space = design_space();
    let mut rng = StdRng::seed_from_u64(2026);
    let n = 60;
    let candidates = lhs(&space, 1200, &mut rng);
    let dopt = DOptimal::new(&space, ModelSpec::main_effects());

    let designs: Vec<(&str, Vec<Vec<f64>>)> = vec![
        (
            "random",
            (0..n).map(|_| space.random_point(&mut rng)).collect(),
        ),
        ("lhs", lhs(&space, n, &mut rng)),
        ("d-optimal", dopt.select(&candidates, n, &mut rng)),
    ];

    // Fixed evaluation sample.
    let eval: Vec<Vec<f64>> = (0..300).map(|_| space.random_point(&mut rng)).collect();
    let eval_coded: Vec<Vec<f64>> = eval.iter().map(|p| space.encode(p)).collect();
    let eval_y: Vec<f64> = eval_coded.iter().map(|c| response(c)).collect();

    println!(
        "{:<12} {:>14} {:>12}",
        "design", "log det(X'X)", "test MAPE %"
    );
    for (name, points) in designs {
        let ld = dopt.log_det(&points);
        let xs: Vec<Vec<f64>> = points.iter().map(|p| space.encode(p)).collect();
        let ys: Vec<f64> = xs.iter().map(|c| response(c)).collect();
        let model =
            LinearModel::fit(&Dataset::new(xs, ys).unwrap(), LinearTerms::MainEffects).unwrap();
        let preds = model.predict_batch(&eval_coded);
        println!(
            "{:<12} {:>14.2} {:>12.3}",
            name,
            ld,
            metrics::mape(&preds, &eval_y)
        );
    }
    println!("\nHigher log-determinant designs give better-conditioned fits —");
    println!("the reason the paper selects points D-optimally before paying");
    println!("for expensive cycle-accurate simulations.");
}
