//! Interpreting empirical models — the paper's §6.2 analysis.
//!
//! MARS models can be rewritten so each parameter and interaction carries a
//! coefficient estimating its influence over the whole design space. This
//! example prints the strongest effects for one program and highlights
//! compiler/microarchitecture interactions, the information a compiler
//! writer would use to improve heuristics.
//!
//! ```text
//! cargo run --release --example interaction_analysis
//! ```

use emod::core::builder::{BuildConfig, ModelBuilder};
use emod::core::interpret::effect_report;
use emod::core::model::ModelFamily;
use emod::core::vars::COMPILER_PARAMS;
use emod::workloads::{InputSet, Workload};

fn main() {
    let workload = Workload::by_name("181.mcf").unwrap();
    println!("fitting a MARS model for {}…", workload.name());
    let mut builder = ModelBuilder::new(workload, InputSet::Train, BuildConfig::quick(5));
    let built = builder.build(ModelFamily::Mars).expect("model fits");
    println!("test error {:.1}%\n", built.test_mape);

    let report = effect_report(&built);
    println!(
        "constant (center-of-space prediction): {:.2}M cycles\n",
        report.constant / 1e6
    );
    println!("strongest effects (coefficient = half the low→high change):");
    let floor = report.constant.abs() * 1e-4;
    for e in report.top(12) {
        if e.coefficient.abs() <= floor {
            continue; // pruned to zero by MARS
        }
        let class = match e.vars.as_slice() {
            [v] if *v < COMPILER_PARAMS => "compiler      ",
            [_] => "uarch         ",
            [a, b] if *a < COMPILER_PARAMS && *b >= COMPILER_PARAMS => "INTERACTION   ",
            [a, b] if *a >= COMPILER_PARAMS && *b < COMPILER_PARAMS => "INTERACTION   ",
            _ => "uarch x uarch ",
        };
        println!(
            "  [{}] {:<48} {:>9.3} Mcycles",
            class,
            e.term,
            e.coefficient / 1e6
        );
    }
    println!(
        "\nNegative compiler coefficients mean the optimization helps this\n\
         program; compiler × microarchitecture rows are the interactions\n\
         analytical heuristics tend to miss (paper Table 4)."
    );
}
