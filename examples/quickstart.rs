//! Quickstart: build an empirical model for one program, predict
//! performance at arbitrary configurations, and search for good flags.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use emod::core::builder::{BuildConfig, ModelBuilder};
use emod::core::model::ModelFamily;
use emod::core::{tune, vars};
use emod::models::Regressor;
use emod::uarch::UarchConfig;
use emod::workloads::{InputSet, Workload};

fn main() {
    // 1. Pick a program/input pair (the models are application-specific).
    let workload = Workload::by_name("181.mcf").expect("bundled workload");
    println!("modeling {} on its train input…", workload.name());

    // 2. Run the paper's Figure 1 loop at smoke-test scale: D-optimal
    //    design over the 25 predictors, SMARTS-sampled measurements, RBF fit.
    let mut builder = ModelBuilder::new(workload, InputSet::Train, BuildConfig::quick(42));
    let built = builder.build(ModelFamily::Rbf).expect("model fits");
    println!(
        "built an RBF model from {} measurements; test error = {:.1}%",
        built.train.len(),
        built.test_mape
    );

    // 3. Predict performance at an arbitrary configuration — no simulation.
    let point = vars::encode_point(&emod::compiler::OptConfig::o3(), &UarchConfig::typical());
    println!(
        "predicted cycles at -O3 on the typical machine: {:.2}M",
        built.model.predict(&built.space.encode(&point)) / 1e6
    );

    // 4. Model-based search: freeze the machine, let a GA pick the flags.
    let tuned = tune::search_flags(&built, &UarchConfig::typical(), 42);
    println!(
        "GA-prescribed settings (after {} model evaluations): {:?}",
        tuned.evaluations, tuned.config
    );

    // 5. Check the prescription against the simulator.
    let report = tune::evaluate_speedup(
        builder.measurer_mut(),
        &tuned,
        &emod::compiler::OptConfig::o2(),
        &UarchConfig::typical(),
    );
    println!(
        "measured: {} cycles at -O2, {} cycles tuned → {:+.1}% speedup (model predicted {:+.1}%)",
        report.baseline_cycles,
        report.tuned_cycles,
        report.actual_speedup_pct,
        report.predicted_speedup_pct
    );
}
