//! Platform-specific flag tuning — the paper's §6.3 deployment scenario.
//!
//! "It is conceivable that an empirical model (developed offline for all
//! platforms) can be packaged with a program's compilation system. When the
//! program is installed on a specific platform, the empirical model could be
//! parametrized with the platform's configuration and used to search for the
//! optimal optimization flags and heuristic settings."
//!
//! This example plays that story end to end for two programs on the three
//! reference machines of Table 5.
//!
//! ```text
//! cargo run --release --example flag_tuning
//! ```

use emod::compiler::OptConfig;
use emod::core::builder::{BuildConfig, ModelBuilder};
use emod::core::model::ModelFamily;
use emod::core::tune;
use emod::workloads::{InputSet, Workload};

fn main() {
    for name in ["256.bzip2-graphic", "179.art"] {
        let workload = Workload::by_name(name).unwrap();
        println!("=== {} ===", workload.name());
        // Offline: build the application's model once.
        let mut builder = ModelBuilder::new(workload, InputSet::Train, BuildConfig::quick(7));
        let built = builder.build(ModelFamily::Rbf).expect("model fits");
        println!("model ready (test error {:.1}%)", built.test_mape);

        // At install time: parametrize with the platform, search, compile.
        for (platform_name, platform) in tune::reference_configs() {
            let tuned = tune::search_flags(&built, &platform, 11);
            let report =
                tune::evaluate_speedup(builder.measurer_mut(), &tuned, &OptConfig::o2(), &platform);
            let flags: Vec<String> = tuned.config.to_design_values()[..9]
                .iter()
                .map(|v| format!("{}", *v as i64))
                .collect();
            println!(
                "  {:12} flags={} unroll×{} → {:+.1}% over -O2",
                platform_name,
                flags.join(""),
                tuned.config.max_unroll_times,
                report.actual_speedup_pct
            );
        }
    }
}
